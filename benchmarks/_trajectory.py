"""Perf-trajectory records: the committed ``BENCH_*.json`` files.

The perf benchmarks assert budgets (pass/fail), but a bit tells future
re-anchors nothing about *drift*.  Each perf module therefore also emits
a machine-readable record into ``benchmarks/BENCH_<name>.json`` — an
append-only history of the measured numbers, keyed by commit, so the
performance curve across PRs is visible with ``git log -p`` or a one-line
jq query.

Schema (version 1)::

    {
      "bench": "codec_batch",
      "schema": 1,
      "history": [
        {
          "recorded": "2026-08-07T12:00:00+00:00",
          "commit": "77add9f",
          "host": {"cores": 8, "python": "3.11.9", "platform": "Linux"},
          "metrics": {"encode_speedup_x": 6.31, ...}
        }
      ]
    }

Multiple tests in one module share one file: a record for the current
commit is merged into (not duplicated) by later calls, so running the
whole module produces a single entry with the union of the metrics.
History is capped at :data:`MAX_HISTORY` entries, oldest dropped first.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
SCHEMA = 1
MAX_HISTORY = 200


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_DIR,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() or "unknown" if out.returncode == 0 else "unknown"


def _host() -> dict:
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return {
        "cores": cores,
        "python": platform.python_version(),
        "platform": platform.system(),
    }


def _round(value):
    """Trim floats so records diff cleanly across runs."""
    if isinstance(value, float):
        return round(value, 4)
    return value


def record_trajectory(name: str, metrics: dict) -> pathlib.Path:
    """Merge ``metrics`` into the current commit's record of
    ``BENCH_<name>.json`` and return the file's path."""
    if not name.isidentifier():
        raise ValueError(f"bench name must be identifier-like: {name!r}")
    path = BENCH_DIR / f"BENCH_{name}.json"
    doc = {"bench": name, "schema": SCHEMA, "history": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            loaded = None
        if (
            isinstance(loaded, dict)
            and loaded.get("schema") == SCHEMA
            and isinstance(loaded.get("history"), list)
        ):
            doc = loaded

    commit = _current_commit()
    history = doc["history"]
    entry = None
    if history and history[-1].get("commit") == commit:
        entry = history[-1]
    if entry is None:
        entry = {
            "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "commit": commit,
            "host": _host(),
            "metrics": {},
        }
        history.append(entry)
    entry["metrics"].update(
        {key: _round(value) for key, value in metrics.items()}
    )
    del history[:-MAX_HISTORY]

    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    _verify_appended(path, commit, metrics)
    print(f"\n[trajectory] {path.name}: {json.dumps(entry['metrics'])}")
    sys.stdout.flush()
    return path


def _verify_appended(path: pathlib.Path, commit: str, metrics: dict) -> None:
    """Re-read ``path`` and assert the record actually landed.

    A perf test that 'recorded' its numbers into the void (unwritable
    checkout, a refactor that redirects BENCH_DIR, a silently-swallowed
    serialization error) would otherwise pass while the committed
    trajectory stays empty — exactly the regression this guards against:
    every ``record_trajectory`` call now proves its own append.
    """
    try:
        written = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AssertionError(
            f"trajectory record for {path.name} did not survive the write: "
            f"{exc}"
        ) from exc
    entries = [
        e for e in written.get("history", []) if e.get("commit") == commit
    ]
    if not entries:
        raise AssertionError(
            f"trajectory {path.name} has no entry for commit {commit!r} "
            f"after recording"
        )
    recorded = entries[-1].get("metrics", {})
    missing = [
        key for key, value in metrics.items()
        if key not in recorded or recorded[key] != _round(value)
    ]
    if missing:
        raise AssertionError(
            f"trajectory {path.name} entry for {commit!r} is missing "
            f"metrics {missing} after recording"
        )
