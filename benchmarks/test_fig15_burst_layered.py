"""Figure 15 — burst loss: layered FEC (7+1), (7+3) vs no FEC.

The paper's negative result: under temporally-correlated loss (mean burst
2 packets, Delta = 40 ms, T = 300 ms) layered FEC with a small TG performs
*worse* than plain retransmission — bursts take out the parities together
with the data they protect, and the always-sent parities are pure
overhead.
"""

import pytest

from repro.experiments.figures_mc import fig15

SIZES = [1, 10, 100, 1000, 10000]


def run_figure():
    return fig15(sizes=SIZES, replications=220, rng=15)


@pytest.mark.benchmark(group="fig15")
def test_fig15_burst_layered(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    nofec = result.get("no FEC")
    h1 = result.get("FEC layer (7+1)")
    h3 = result.get("FEC layer (7+3)")

    # the headline: layered FEC fails to beat no FEC under burst loss
    # (allow MC noise at the largest population where curves converge)
    for r in (1.0, 10.0, 100.0, 1000.0):
        assert h1.value_at(r) > nofec.value_at(r) - 0.05
    # more always-on redundancy makes it worse at small scale
    for r in (1.0, 10.0, 100.0):
        assert h3.value_at(r) > h1.value_at(r)
    # floors: (7+1) can never go below 8/7, (7+3) below 10/7
    assert min(h1.y) >= 8 / 7 - 1e-9
    assert min(h3.y) >= 10 / 7 - 1e-9
