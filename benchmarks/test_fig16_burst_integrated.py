"""Figure 16 — burst loss: integrated FEC 1 vs FEC 2 for k = 7, 20, 100.

Paper shape: with k = 7 both integrated schemes beat no-FEC only slightly
and FEC 2 (parities a round apart — implicit interleaving) beats FEC 1
(back-to-back parities).  Growing the group to k = 20 or 100 restores the
full integrated-FEC advantage and erases the FEC1/FEC2 difference: a large
TG already spans any burst, so interleaving becomes unnecessary.
"""

import pytest

from repro.experiments.figures_mc import fig16

SIZES = [1, 10, 100, 1000, 10000]


def run_figure():
    return fig16(sizes=SIZES, replications=220, rng=16)


@pytest.mark.benchmark(group="fig16")
def test_fig16_burst_integrated(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    nofec = result.get("no FEC")
    r_check = 1000.0

    # FEC 2 beats FEC 1 at k = 7 (interleaving helps small groups)
    fec1_k7 = result.get("integrated FEC 1, k=7").value_at(r_check)
    fec2_k7 = result.get("integrated FEC 2, k=7").value_at(r_check)
    assert fec2_k7 < fec1_k7

    # growing the group helps dramatically
    for scheme in (1, 2):
        k7 = result.get(f"integrated FEC {scheme}, k=7").value_at(r_check)
        k20 = result.get(f"integrated FEC {scheme}, k=20").value_at(r_check)
        k100 = result.get(f"integrated FEC {scheme}, k=100").value_at(r_check)
        assert k100 < k20 < k7

    # at k = 100 interleaving no longer matters (schemes within noise)
    fec1_k100 = result.get("integrated FEC 1, k=100").value_at(r_check)
    fec2_k100 = result.get("integrated FEC 2, k=100").value_at(r_check)
    assert abs(fec1_k100 - fec2_k100) < 0.08

    # all integrated configurations beat no FEC at scale
    for k in (7, 20, 100):
        assert (
            result.get(f"integrated FEC 2, k={k}").value_at(r_check)
            < nofec.value_at(r_check)
        )
