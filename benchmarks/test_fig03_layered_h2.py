"""Figure 3 — layered FEC with h = 2 for k = 7, 20, 100 vs no FEC (p=0.01).

Paper shape: all layered curves eventually beat no-FEC as R grows, but
k = 100 with only 2 parities is the worst layered configuration — the
parity budget must be matched to the TG size.
"""

import pytest

from repro.experiments.figures_analysis import fig03


@pytest.mark.benchmark(group="fig03")
def test_fig03_layered_h2(benchmark, record_figure):
    result = benchmark.pedantic(fig03, rounds=1, iterations=1)
    record_figure(result)

    r_large = 10**6
    nofec = result.get("no FEC").value_at(r_large)
    k7 = result.get("layered FEC, k = 7").value_at(r_large)
    k20 = result.get("layered FEC, k = 20").value_at(r_large)
    k100 = result.get("layered FEC, k = 100").value_at(r_large)

    # layered beats no-FEC at scale ...
    assert k7 < nofec and k20 < nofec
    # ... but an under-parameterised big group is the worst layered choice
    assert k100 > k7 and k100 > k20
    # at R = 1 the parity overhead makes every layered curve lose
    assert result.get("layered FEC, k = 7").value_at(1) > result.get(
        "no FEC"
    ).value_at(1)
