"""Figure 8 — integrated FEC vs loss probability p for R = 1000 receivers.

Paper shape: integrated FEC with a large TG is nearly insensitive to the
loss probability (k = 100 barely moves between p = 10^-3 and 10^-1) while
the no-FEC curve climbs steeply.
"""

import pytest

from repro.experiments.figures_analysis import fig08


@pytest.mark.benchmark(group="fig08")
def test_fig08_loss_sensitivity(benchmark, record_figure):
    result = benchmark.pedantic(fig08, rounds=1, iterations=1)
    record_figure(result)

    nofec = result.get("no FEC")
    k100 = result.get("integr. FEC, k = 100")
    k7 = result.get("integr. FEC, k = 7")

    nofec_spread = nofec.value_at(0.1) - nofec.value_at(0.001)
    k100_spread = k100.value_at(0.1) - k100.value_at(0.001)
    assert nofec_spread > 1.5
    assert k100_spread < 0.3  # "insensitive to the loss probability"

    # ordering holds at every p
    for p in nofec.x:
        assert (
            k100.value_at(p)
            < result.get("integr. FEC, k = 20").value_at(p)
            < k7.value_at(p)
            < nofec.value_at(p)
        )
