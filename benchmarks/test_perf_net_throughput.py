"""Transport throughput: wire-codec frame rate and loopback goodput.

Two budgets on the asyncio UDP transport (:mod:`repro.net`), plus a
``BENCH_net_throughput.json`` trajectory record of the raw numbers:

* **wire codec** — ``encode_frame``/``decode_frame`` on 1 KB data
  packets must each sustain >= 20k frames/s.  At the paper's 1 KB
  packets that is >= 20 MB/s of framing capacity, an order of magnitude
  above what the loopback path needs, so framing is provably not the
  transport's bottleneck.
* **loopback goodput** — a clean (no chaos) 1 MB transfer over real UDP
  sockets at the default pacing must complete at >= 1 MB/s end to end:
  encode, socket send, receive, CRC check, decode, reassembly.  Pacing
  stays on because it is what keeps the kernel's socket buffer from
  overflowing — an unpaced blast loses ~30% of the stream to the
  receive queue and the measurement becomes a NAK-timer benchmark.

Run with ``pytest benchmarks/test_perf_net_throughput.py``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from benchmarks._trajectory import record_trajectory
from repro.campaign.retry import RetryPolicy
from repro.net import NetConfig, NetServer, fetch
from repro.net.wire import decode_frame, encode_frame
from repro.protocols.packets import DataPacket, checksum_of

PACKET_SIZE = 1024  # the paper's 1 KB packets
MIN_FRAME_RATE = 20_000.0
MIN_GOODPUT = 1e6  # bytes/s over loopback, clean path
REPEATS = 3

#: 125 groups x k=8 x 1 KB = 1 MB, the acceptance scenario's 1000 data
#: packets at full packet size; default pacing, but a snappy NAK timer so
#: any stray kernel drop costs 0.1s instead of the deployment 0.25s
CONFIG = NetConfig(
    k=8,
    h=16,
    packet_size=PACKET_SIZE,
    seed=0,
    nak_retry=RetryPolicy(
        retries=8, base_delay=0.1, backoff=1.6, max_delay=1.0, jitter=0.25
    ),
)
N_GROUPS = 125


def _frame_rate(fn, n: int, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n / best


def test_wire_codec_frame_rate():
    payload = bytes(range(256)) * (PACKET_SIZE // 256)
    packets = [
        DataPacket(tg, tg % 8, payload, checksum=checksum_of(payload))
        for tg in range(512)
    ]
    frames = [encode_frame(packet, 1) for packet in packets]
    assert decode_frame(frames[0]).packet == packets[0]

    encode_rate = _frame_rate(
        lambda: [encode_frame(packet, 1) for packet in packets], len(packets)
    )
    decode_rate = _frame_rate(
        lambda: [decode_frame(frame) for frame in frames], len(frames)
    )
    print(
        f"\nwire codec @ {PACKET_SIZE} B: encode {encode_rate:,.0f}/s, "
        f"decode {decode_rate:,.0f}/s"
    )
    record_trajectory(
        "net_throughput",
        {
            "encode_frames_per_s": encode_rate,
            "decode_frames_per_s": decode_rate,
        },
    )
    assert encode_rate >= MIN_FRAME_RATE
    assert decode_rate >= MIN_FRAME_RATE


def _loopback_transfer_seconds() -> float:
    size = N_GROUPS * CONFIG.k * CONFIG.packet_size
    data = np.random.default_rng(0xBE).bytes(size)

    async def scenario() -> float:
        server = NetServer(data, CONFIG)
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        try:
            start = loop.time()
            result = await asyncio.wait_for(
                fetch(host, port, config=CONFIG, deadline=60.0), timeout=90.0
            )
            elapsed = loop.time() - start
        finally:
            await server.close()
        assert result.complete and result.data == data
        return elapsed

    return asyncio.run(scenario())


def test_loopback_goodput():
    best = min(_loopback_transfer_seconds() for _ in range(REPEATS))
    size = N_GROUPS * CONFIG.k * CONFIG.packet_size
    goodput = size / best
    print(
        f"\nloopback: {size / 1e6:.2f} MB in {best * 1e3:.0f}ms "
        f"-> {goodput / 1e6:.2f} MB/s"
    )
    record_trajectory(
        "net_throughput",
        {
            "goodput_mb_per_s": goodput / 1e6,
            "transfer_bytes": size,
            "transfer_seconds": best,
        },
    )
    assert goodput >= MIN_GOODPUT, (
        f"loopback goodput {goodput / 1e6:.2f} MB/s < "
        f"{MIN_GOODPUT / 1e6:.0f} MB/s"
    )
