"""Ablation A3 — Galois-field symbol width vs codec throughput.

Section 2.2 picks m = 8 ("sufficiently large for our purposes").  This
ablation measures what the choice costs/buys: GF(2^4) caps blocks at 15
packets and halves the rate (two symbols per byte doubles the symbol
count), while GF(2^16) permits blocks beyond 255 packets.  Historical
note: with the scalar exp/log loops GF(2^16) paid a substantial
throughput penalty; the batched nibble-sliced kernel works word-wide
without a dense multiplication table, so wide symbols now encode at
roughly GF(2^8) speed — the remaining trade-off is capacity vs memory.
"""

import pytest

from repro.experiments.ablations import abl_symbol_size
from repro.fec.rse import RSECodec
from repro.galois.field import GF65536


@pytest.mark.benchmark(group="ablation")
def test_symbol_width_tradeoff(benchmark, record_figure):
    result = benchmark.pedantic(abl_symbol_size, rounds=1, iterations=1)
    record_figure(result)

    rates = result.get("encode rate")
    limits = result.get("max block length n")

    # m=8 is at least as fast as m=4 (nibble packing doubles the symbol
    # count) and comparable to m=16 (the sliced kernel removed the old
    # exp/log penalty; double-width symbols halve the count per packet)
    assert rates.value_at(8.0) > 0.4 * rates.value_at(16.0)
    assert rates.value_at(8.0) > 0.5 * rates.value_at(4.0)

    # the capacity story: m=4 cannot even hold the paper's k=100 blocks
    assert limits.value_at(4.0) < 100
    assert limits.value_at(8.0) >= 255
    assert limits.value_at(16.0) > 10**4


@pytest.mark.benchmark(group="ablation")
def test_wide_field_enables_giant_groups(benchmark):
    """k=300 (impossible in GF(2^8)) round-trips in GF(2^16)."""
    import os

    def run():
        codec = RSECodec(300, 30, field=GF65536)
        rng_data = [os.urandom(64) for _ in range(300)]
        parities = codec.encode(rng_data)
        received = {i: rng_data[i] for i in range(30, 300)}
        received.update({300 + j: parities[j] for j in range(30)})
        return codec.decode(received) == rng_data

    assert benchmark.pedantic(run, rounds=1, iterations=1)
