"""Ablation A3 — Galois-field symbol width vs codec throughput.

Section 2.2 picks m = 8 ("sufficiently large for our purposes").  This
ablation measures what the choice costs/buys: GF(2^4) caps blocks at 15
packets for no speed gain, GF(2^16) permits blocks beyond 255 packets at
a substantial throughput penalty (no dense multiplication table).
"""

import pytest

from repro.experiments.ablations import abl_symbol_size
from repro.fec.rse import RSECodec
from repro.galois.field import GF65536


@pytest.mark.benchmark(group="ablation")
def test_symbol_width_tradeoff(benchmark, record_figure):
    result = benchmark.pedantic(abl_symbol_size, rounds=1, iterations=1)
    record_figure(result)

    rates = result.get("encode rate")
    limits = result.get("max block length n")

    # m=8 is at least as fast as m=4 (same table-driven path) and much
    # faster than m=16 (log/exp path, double-width symbols)
    assert rates.value_at(8.0) > 2 * rates.value_at(16.0)
    assert rates.value_at(8.0) > 0.5 * rates.value_at(4.0)

    # the capacity story: m=4 cannot even hold the paper's k=100 blocks
    assert limits.value_at(4.0) < 100
    assert limits.value_at(8.0) >= 255
    assert limits.value_at(16.0) > 10**4


@pytest.mark.benchmark(group="ablation")
def test_wide_field_enables_giant_groups(benchmark):
    """k=300 (impossible in GF(2^8)) round-trips in GF(2^16)."""
    import os

    def run():
        codec = RSECodec(300, 30, field=GF65536)
        rng_data = [os.urandom(64) for _ in range(300)]
        parities = codec.encode(rng_data)
        received = {i: rng_data[i] for i in range(30, 300)}
        received.update({300 + j: parities[j] for j in range(30)})
        return codec.decode(received) == rng_data

    assert benchmark.pedantic(run, rounds=1, iterations=1)
