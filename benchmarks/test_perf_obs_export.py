"""Exporter-path cost: rendering, zero-line flushes, scraper-attached runs.

Three budgets for the telemetry plane's export surfaces:

* **render throughput** — ``to_openmetrics`` over a realistically-sized
  registry (a few hundred instruments) must render fast enough that a
  per-second scrape is invisible; the lossless parse must invert it.
* **zero-line flushes** — a `TelemetryFlusher` whose registry did not
  change between flushes must write *nothing* and cost microseconds:
  the delta encoder is what makes an aggressive flush interval safe.
* **scraper-attached transfers** — the acceptance gate: a seeded
  transfer workload with a live pull endpoint being scraped **and** a
  per-run NDJSON flush must stay within 10% of the same workload with
  recording alone.

Run with ``pytest benchmarks/test_perf_obs_export.py``.
"""

from __future__ import annotations

import threading
import time
import urllib.request

from benchmarks._trajectory import record_trajectory
from repro import obs
from repro.obs.export import TelemetryFlusher, parse_openmetrics, to_openmetrics
from repro.obs.httpd import MetricsEndpoint
from repro.obs.metrics import MetricRegistry
from repro.protocols.harness import run_transfer
from repro.protocols.np_protocol import NPConfig
from repro.sim.loss import BernoulliLoss

#: same seeded workload as test_perf_obs_overhead, so the two budget
#: files anchor against comparable transfer times
PAYLOAD = bytes((i * 131) % 251 for i in range(90_000))
CONFIG = NPConfig(k=7, h=8, packet_size=512, packet_interval=0.002)
N_RECEIVERS, LOSS_P = 20, 0.02
REPEATS = 5

SCRAPER_BUDGET = 0.10
#: a realistic-but-aggressive scrape cadence (20 Hz); Prometheus defaults
#: to 1/15 Hz, so this over-stresses the endpoint by ~300x
SCRAPE_INTERVAL = 0.05

RENDER_FLOOR_PER_S = 50.0
NOOP_FLUSH_CEILING_US = 2000.0


def _one_transfer(seed: int = 0):
    report = run_transfer(
        "np", PAYLOAD, BernoulliLoss(N_RECEIVERS, LOSS_P), CONFIG, rng=seed
    )
    assert report.verified
    return report


def _best_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _loaded_registry(
    counters: int = 300, gauges: int = 60, histograms: int = 40
) -> MetricRegistry:
    """A registry the size of a busy campaign rollup."""
    registry = MetricRegistry()
    for i in range(counters):
        registry.counter(f"bench.counter_{i % 50}", shard=str(i)).inc(i * 7 + 1)
    for i in range(gauges):
        registry.gauge(f"bench.gauge_{i}").observe(float(i) * 1.5)
    for i in range(histograms):
        hist = registry.histogram(f"bench.hist_{i}")
        for sample in (0.001 * i, 0.1, 2.5):
            hist.observe(sample)
    return registry


class TestRenderThroughput:
    def test_openmetrics_render_and_parse_rates(self):
        snapshot = _loaded_registry().snapshot()
        text = to_openmetrics(snapshot)
        assert parse_openmetrics(text) == snapshot  # lossless before fast

        n = 30
        start = time.perf_counter()
        for _ in range(n):
            to_openmetrics(snapshot)
        render_per_s = n / (time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(n):
            parse_openmetrics(text)
        parse_per_s = n / (time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(n):
            to_openmetrics(snapshot, counters_only=True)
        counters_only_per_s = n / (time.perf_counter() - start)

        print(
            f"\nrender {render_per_s:.0f}/s  parse {parse_per_s:.0f}/s  "
            f"counters-only {counters_only_per_s:.0f}/s "
            f"({len(text)} bytes, {len(snapshot)} instruments)"
        )
        record_trajectory(
            "obs_export",
            {
                "render_per_s": render_per_s,
                "parse_per_s": parse_per_s,
                "counters_only_per_s": counters_only_per_s,
                "exposition_bytes": len(text),
            },
        )
        assert render_per_s >= RENDER_FLOOR_PER_S


class TestZeroLineFlush:
    def test_unchanged_registry_flushes_nothing_cheaply(self, tmp_path):
        registry = _loaded_registry()
        path = tmp_path / "telemetry.ndjson"
        flusher = TelemetryFlusher(path, interval=0.0, source=registry.snapshot)
        first = flusher.flush()
        assert first == len(registry.snapshot()._entries)
        size_after_first = path.stat().st_size

        n = 50
        start = time.perf_counter()
        for _ in range(n):
            assert flusher.maybe_flush(force=True) == 0
        noop_us = (time.perf_counter() - start) / n * 1e6
        flusher.close()

        print(f"\nno-op flush {noop_us:.1f}us over {first} instruments")
        record_trajectory(
            "obs_export",
            {"noop_flush_us": noop_us, "first_flush_lines": first},
        )
        # the delta encoder proved itself: no bytes written after flush 1
        # (close() adds nothing either — registry never changed)
        assert path.stat().st_size == size_after_first
        assert noop_us <= NOOP_FLUSH_CEILING_US


class TestScraperAttachedOverhead:
    def test_live_scrape_and_flush_within_budget(self, tmp_path):
        with obs.capture():
            _one_transfer()  # warm numpy kernels and caches
            baseline = _best_time(_one_transfer)

            flusher = TelemetryFlusher(
                tmp_path / "telemetry.ndjson", interval=0.0
            )
            endpoint = MetricsEndpoint()
            host, port = endpoint.start_in_thread()
            stop = threading.Event()
            scrapes = [0]

            def scrape_loop():
                url = f"http://{host}:{port}/metrics"
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(url, timeout=5.0) as r:
                            r.read()
                        scrapes[0] += 1
                    except OSError:
                        pass
                    stop.wait(SCRAPE_INTERVAL)

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()

            def exported_run():
                _one_transfer()
                flusher.flush()

            try:
                attached = _best_time(exported_run)
            finally:
                stop.set()
                scraper.join(timeout=10.0)
                endpoint.stop_in_thread()
                flusher.close()

        ratio = attached / baseline
        print(
            f"\nscraper-attached {attached * 1e3:.1f}ms vs recording-only "
            f"{baseline * 1e3:.1f}ms -> x{ratio:.3f} ({scrapes[0]} scrapes)"
        )
        record_trajectory(
            "obs_export",
            {
                "scraper_attached_ratio": ratio,
                "baseline_transfer_ms": baseline * 1e3,
                "attached_transfer_ms": attached * 1e3,
                "scrapes": scrapes[0],
            },
        )
        assert scrapes[0] > 0, "the scraper never landed a scrape"
        assert ratio <= 1.0 + SCRAPER_BUDGET
