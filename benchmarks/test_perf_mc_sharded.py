"""Sharded-MC performance: parallel speedup and bounded streaming memory.

Locks in the two performance claims of the sharded execution layer
(:mod:`repro.mc.sharded`):

* **speedup** — on a Figure-11-shaped workload (layered FEC over a deep
  shared-loss tree) ``jobs=4`` completes >= 3x faster than the inline
  path, *including* the cost of spawning the campaign workers.  Needs at
  least 4 usable cores, so the check skips on smaller hosts (CI runs it
  on 4-vCPU runners) — correctness of the fan-out is covered by the
  regular test suite everywhere.
* **memory** — the streaming accumulator keeps peak allocation flat as
  the replication count grows; a 16x longer run may not allocate more
  than a small constant factor over the short one.

Run with ``pytest benchmarks/test_perf_mc_sharded.py``.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from benchmarks._trajectory import record_trajectory
from repro.mc import run_sharded
from repro.sim.loss import BernoulliLoss, FullBinaryTreeLoss

#: Figure-11 shape: layered FEC (7+1) over shared loss on a deep tree.
DEPTH = 13  # 8192 receivers
PARAMS = {"k": 7, "h": 1}
REPLICATIONS = 8192
JOBS = 4
MIN_SPEEDUP = 3.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _timed_run(**kwargs) -> tuple[float, object]:
    model = FullBinaryTreeLoss(DEPTH, 0.01)
    start = time.perf_counter()
    result = run_sharded(
        "layered",
        model,
        params=PARAMS,
        replications=REPLICATIONS,
        rng=0xF1611,
        **kwargs,
    )
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="mc-sharded")
def test_jobs4_speedup_on_fig11_workload():
    cores = _usable_cores()
    if cores < JOBS:
        pytest.skip(
            f"needs >= {JOBS} usable cores for a meaningful speedup "
            f"measurement, host has {cores}"
        )
    # one chunk per worker: all four spawns happen concurrently, so the
    # measured time charges the fan-out its real startup cost exactly once
    chunk = REPLICATIONS // JOBS
    serial_time, serial = _timed_run(chunk_size=chunk)
    parallel_time, parallel = _timed_run(chunk_size=chunk, jobs=JOBS)

    # same seeds, same chunks -> the runs must agree bit for bit
    assert (parallel.mean, parallel.stderr, parallel.replications) == (
        serial.mean,
        serial.stderr,
        serial.replications,
    )
    speedup = serial_time / parallel_time
    record_trajectory(
        "mc_sharded",
        {
            "jobs4_speedup_x": speedup,
            "inline_seconds": serial_time,
            "jobs4_seconds": parallel_time,
        },
    )
    print(
        f"\nfig11 workload: inline {serial_time:.1f}s, "
        f"jobs={JOBS} {parallel_time:.1f}s -> {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"jobs={JOBS} speedup {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(inline {serial_time:.1f}s, parallel {parallel_time:.1f}s)"
    )


def _peak_bytes(replications: int) -> int:
    model = BernoulliLoss(64, 0.02)
    tracemalloc.start()
    tracemalloc.reset_peak()
    run_sharded(
        "layered",
        model,
        params=PARAMS,
        replications=replications,
        rng=3,
        chunk_size=64,
    )
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_streaming_memory_is_bounded_in_replications():
    """Peak memory must track the chunk size, not the replication count."""
    _peak_bytes(64)  # warm import/cache allocations out of the comparison
    small = _peak_bytes(256)
    large = _peak_bytes(256 * 16)
    print(
        f"\npeak: {small / 1e6:.2f} MB @ 256 reps, "
        f"{large / 1e6:.2f} MB @ {256 * 16} reps"
    )
    record_trajectory(
        "mc_sharded",
        {
            "peak_mb_256_reps": small / 1e6,
            "peak_mb_4096_reps": large / 1e6,
        },
    )
    # a materialising implementation would grow ~16x here; the streaming
    # path re-uses one chunk buffer + an O(1) accumulator.  Allow 2x for
    # allocator noise and numpy scratch.
    assert large <= 2 * small + 1_000_000, (
        f"peak grew from {small} to {large} bytes over a 16x longer run"
    )
