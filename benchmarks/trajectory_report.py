"""Summarize every committed ``BENCH_*.json`` perf trajectory in one table.

The perf benchmarks append their measured numbers to per-bench history
files (see ``benchmarks/_trajectory.py``).  This report is the cross-PR
readout: for each bench and metric it prints the latest value, the value
one entry back, and the relative drift between them, so a perf regression
shows up as a column of red-flag percentages instead of a diff spelunk.

Usage::

    python benchmarks/trajectory_report.py            # all benches
    python benchmarks/trajectory_report.py obs_export # one bench
    python benchmarks/trajectory_report.py --json     # machine-readable
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent


def load_trajectories(bench_dir: pathlib.Path = BENCH_DIR) -> dict[str, dict]:
    """``{bench name: parsed document}`` for every readable BENCH file."""
    docs: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and isinstance(doc.get("history"), list):
            docs[str(doc.get("bench", path.stem[len("BENCH_"):]))] = doc
    return docs


def _drift(latest, previous):
    """Relative change latest/previous - 1, or None when undefined."""
    if not isinstance(latest, (int, float)) or isinstance(latest, bool):
        return None
    if not isinstance(previous, (int, float)) or isinstance(previous, bool):
        return None
    if previous == 0:
        return None
    return latest / previous - 1.0


def summarize(docs: dict[str, dict]) -> list[dict]:
    """Flat rows: one per (bench, metric) with latest/previous/drift."""
    rows: list[dict] = []
    for bench, doc in sorted(docs.items()):
        history = [
            entry
            for entry in doc["history"]
            if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict)
        ]
        if not history:
            continue
        latest = history[-1]
        previous = history[-2] if len(history) > 1 else None
        for metric, value in sorted(latest["metrics"].items()):
            prior = (
                previous["metrics"].get(metric)
                if previous is not None
                else None
            )
            rows.append(
                {
                    "bench": bench,
                    "metric": metric,
                    "latest": value,
                    "previous": prior,
                    "drift": _drift(value, prior),
                    "commit": latest.get("commit", "?"),
                    "entries": len(history),
                }
            )
    return rows


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(rows: list[dict]) -> str:
    if not rows:
        return "no BENCH_*.json trajectories found"
    header = ("bench", "metric", "latest", "previous", "drift", "commit", "n")
    table = [header]
    for row in rows:
        drift = row["drift"]
        table.append(
            (
                row["bench"],
                row["metric"],
                _fmt(row["latest"]),
                _fmt(row["previous"]),
                "-" if drift is None else f"{drift:+.1%}",
                row["commit"],
                str(row["entries"]),
            )
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            .rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory_report.py",
        description="Summarize committed BENCH_*.json perf trajectories.",
    )
    parser.add_argument(
        "bench",
        nargs="*",
        help="restrict to these bench names (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the summary rows as JSON instead of a table",
    )
    args = parser.parse_args(argv)

    docs = load_trajectories()
    if args.bench:
        unknown = sorted(set(args.bench) - set(docs))
        if unknown:
            print(
                f"error: no trajectory for {', '.join(unknown)} "
                f"(have: {', '.join(sorted(docs)) or 'none'})",
                file=sys.stderr,
            )
            return 2
        docs = {name: docs[name] for name in args.bench}
    rows = summarize(docs)
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
