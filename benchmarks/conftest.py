"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark module regenerates one paper figure (scaled to benchmark-
friendly sizes), asserts its qualitative shape and archives the series
under ``benchmarks/output/`` for inspection:

* ``<figure>.txt`` — the rendered table;
* ``<figure>.csv`` — long-format data.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# allow `from benchmarks._shapes import ...` style helpers if ever needed,
# and make sure the repo root is importable when pytest is run from inside
# the benchmarks directory
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_figure(output_dir):
    """Persist a FigureResult and echo its table to the terminal."""

    def _record(result):
        (output_dir / f"{result.figure_id}.txt").write_text(
            result.render_table() + "\n"
        )
        (output_dir / f"{result.figure_id}.csv").write_text(result.to_csv())
        print()
        print(result.render_table())
        return result

    return _record
