"""Figure 12 — integrated FEC (k=7) under independent vs FBT shared loss.

Paper shape: shared loss lowers every curve; integrated FEC keeps a clear
win over no-FEC on the tree, but the margin is smaller than under
independent loss ("the benefits ... while remaining substantial, are not
as great when losses are shared").
"""

import pytest

from repro.experiments.figures_mc import fig12

DEPTHS = [0, 2, 4, 6, 8, 10, 12]


def run_figure():
    return fig12(depths=DEPTHS, replications=100, rng=2025)


@pytest.mark.benchmark(group="fig12")
def test_fig12_shared_loss_integrated(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    nofec_indep = result.get("non-FEC indep. loss")
    nofec_fbt = result.get("non-FEC FBT loss")
    integ_indep = result.get("integrated FEC indep. loss")
    integ_fbt = result.get("integrated FEC FBT loss")

    for r in (256.0, 4096.0):
        # shared loss cheaper than independent, for both schemes
        assert nofec_fbt.value_at(r) <= nofec_indep.value_at(r) + 0.05
        assert integ_fbt.value_at(r) <= integ_indep.value_at(r) + 0.05
        # integrated FEC still clearly wins on the tree
        assert integ_fbt.value_at(r) < nofec_fbt.value_at(r)

    # but the improvement is smaller when losses are shared
    gain_indep = nofec_indep.value_at(4096.0) - integ_indep.value_at(4096.0)
    gain_fbt = nofec_fbt.value_at(4096.0) - integ_fbt.value_at(4096.0)
    assert gain_fbt < gain_indep
