"""Figure 6 — integrated FEC, k = 7, finite parity budgets n = 8, 9, 10, inf.

Paper shape: 3 parity packets (n = 10) suffice to sit on the idealised
lower bound for receiver populations up to 10^5-2*10^5; one parity (n = 8)
is visibly insufficient long before that.
"""

import pytest

from repro.experiments.figures_analysis import fig06


@pytest.mark.benchmark(group="fig06")
def test_fig06_finite_parities(benchmark, record_figure):
    result = benchmark.pedantic(fig06, rounds=1, iterations=1)
    record_figure(result)

    bound = result.get("(7,inf)")
    # n=10 hugs the bound into the 10^5 range ("up to 100,000-200,000") ...
    for r in (1000, 10**4):
        assert result.get("(7,10)").value_at(r) - bound.value_at(r) < 0.06
    assert result.get("(7,10)").value_at(10**5) - bound.value_at(10**5) < 0.1
    # ... n=8 does not
    assert result.get("(7,8)").value_at(10**5) - bound.value_at(10**5) > 0.5
    # budgets are ordered: more parities never hurt
    for r in (100, 10**4, 10**6):
        n8 = result.get("(7,8)").value_at(r)
        n9 = result.get("(7,9)").value_at(r)
        n10 = result.get("(7,10)").value_at(r)
        assert n8 >= n9 >= n10 >= bound.value_at(r) - 1e-9
    # every finite budget still beats no FEC at scale
    assert result.get("(7,8)").value_at(10**6) < result.get("non-FEC").value_at(10**6)
