"""Figure 7 — idealised integrated FEC vs R for k = 7, 20, 100 (p = 0.01).

Paper shape: growing the transmission group drives E[M] toward 1 even for
a million receivers (k=100 stays below ~1.1), with diminishing returns.
"""

import pytest

from repro.experiments.figures_analysis import fig07


@pytest.mark.benchmark(group="fig07")
def test_fig07_integrated_group_size(benchmark, record_figure):
    result = benchmark.pedantic(fig07, rounds=1, iterations=1)
    record_figure(result)

    at_million = {
        k: result.get(f"integr. FEC, k = {k}").value_at(10**6)
        for k in (7, 20, 100)
    }
    assert at_million[100] < at_million[20] < at_million[7]
    assert at_million[100] < 1.1  # "nearly down to one"
    # diminishing returns: 7 -> 20 saves more than 20 -> 100
    assert (at_million[7] - at_million[20]) > (at_million[20] - at_million[100])
    # all integrated curves dominate no-FEC for every population
    nofec_series = result.get("no FEC")
    for k in (7, 20, 100):
        series = result.get(f"integr. FEC, k = {k}")
        assert all(a <= b + 1e-9 for a, b in zip(series.y, nofec_series.y))
