"""Ablation A1 — proactive parities (the `a` of Equation 6).

Beyond the paper's figures (which use a = 0): how does sending parities
*before* any loss report trade bandwidth against feedback rounds?  The
latency-oriented knob exposed by ``repro.core.planner``.
"""

import pytest

from repro.analysis import integrated
from repro.core.planner import proactive_parities_for_single_round
from repro.experiments.ablations import abl_proactive
from repro.mc import simulate_integrated_immediate
from repro.sim.loss import BernoulliLoss

K, P, R = 7, 0.01, 10_000


@pytest.mark.benchmark(group="ablation")
def test_proactive_parities_tradeoff(benchmark, record_figure):
    result = benchmark.pedantic(abl_proactive, rounds=1, iterations=1)
    record_figure(result)

    bandwidth = result.get("E[M]")
    silence = result.get("P(no feedback round)")

    # silence improves monotonically with a
    assert silence.y == sorted(silence.y)
    assert silence.y[0] < 0.01  # R=1e4 at a=0: someone always loses
    assert silence.y[-1] > 0.5

    # bandwidth eventually rises once proactive parities exceed typical need
    assert bandwidth.value_at(6.0) > bandwidth.value_at(0.0)
    assert bandwidth.value_at(6.0) >= (K + 6) / K - 1e-9

    # the planner's answer is consistent with the curve
    a_planned = proactive_parities_for_single_round(K, P, R, 0.9)
    assert silence.value_at(float(a_planned)) >= 0.9
    if a_planned > 0:
        assert silence.value_at(float(a_planned - 1)) < 0.9


@pytest.mark.benchmark(group="ablation")
def test_proactive_parities_monte_carlo_agrees(benchmark):
    def run():
        return [
            simulate_integrated_immediate(
                BernoulliLoss(200, P), K, 400, rng=30 + a, initial_parities=a
            ).mean
            for a in (0, 2, 4)
        ]

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = [
        integrated.expected_transmissions_lower_bound(K, P, 200, a)
        for a in (0, 2, 4)
    ]
    for mc_value, model_value in zip(measured, predicted):
        assert abs(mc_value - model_value) < 0.05
