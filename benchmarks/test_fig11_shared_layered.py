"""Figure 11 — layered FEC (k=7, h=1) under independent vs FBT shared loss.

Simulation (the paper also simulates here: the exact FBT computation is
intractable beyond R = 64).  Paper shape: shared loss *lowers* E[M] for
every scheme (curves look left-shifted), and layered FEC needs a larger
group before its parity overhead pays off on the tree (R > ~60 vs ~20).

Scaled for benchmarking: trees to depth 12 (R = 4096); pass deeper
``depths`` to :func:`repro.experiments.figures_mc.fig11` to go to 2^17.
"""

import pytest

from repro.experiments.figures_mc import fig11

DEPTHS = [0, 2, 4, 6, 8, 10, 12]


def run_figure():
    return fig11(depths=DEPTHS, replications=100, rng=2024)


@pytest.mark.benchmark(group="fig11")
def test_fig11_shared_loss_layered(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    nofec_indep = result.get("non-FEC indep. loss")
    nofec_fbt = result.get("non-FEC FBT loss")
    layered_indep = result.get("layered FEC indep. loss")
    layered_fbt = result.get("layered FEC FBT loss")

    # shared loss reduces transmissions for both schemes (within MC noise)
    for r in (64.0, 1024.0, 4096.0):
        assert nofec_fbt.value_at(r) <= nofec_indep.value_at(r) + 0.05
        assert layered_fbt.value_at(r) <= layered_indep.value_at(r) + 0.05

    # the paper's break-even claim: under independent loss layered pays off
    # from R ~ 20 on (already clearly ahead at R = 64) ...
    assert layered_indep.value_at(64.0) < nofec_indep.value_at(64.0)
    # ... under FBT shared loss the break-even moves out past R ~ 60:
    # still behind (or tied) at 64, clearly ahead by 256
    assert layered_fbt.value_at(64.0) > nofec_fbt.value_at(64.0) - 0.05
    assert layered_fbt.value_at(256.0) < nofec_fbt.value_at(256.0)
    # at R = 1 layered always loses (pure parity overhead)
    assert layered_fbt.value_at(1.0) > nofec_fbt.value_at(1.0)
