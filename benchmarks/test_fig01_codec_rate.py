"""Figure 1 — RSE encode/decode rates vs redundancy h/k for k = 7, 20, 100.

Paper (Pentium 133, Rizzo's C coder, 1 KB packets): ~8000 data pkts/s at
k=7, h=1, falling roughly as 1/(h*k).  We re-measure our codec; absolute
rates reflect this host, the 1/(h*k) scaling and the k-ordering must hold.
"""

import pytest

from repro.experiments.figures_codec import fig01, measure_codec_rates


def run_figure():
    # the scalar reference path is structurally equivalent to Rizzo's coder
    # and reproduces the paper's 1/(h*k) shape; the batched production
    # kernels are measured in benchmarks/test_perf_codec_batch.py
    return fig01(
        group_sizes=(7, 20, 100),
        redundancies=(0.15, 0.3, 0.6, 1.0),
        min_duration=0.03,
        path="scalar",
    )


@pytest.mark.benchmark(group="fig01")
def test_fig01_codec_rates(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    for k in (7, 20, 100):
        encoding = result.get(f"encoding k = {k}")
        # paper shape: throughput decreases with redundancy
        assert encoding.y[0] > encoding.y[-1]
    # paper shape: smaller TGs encode faster at equal redundancy
    assert (
        result.get("encoding k = 7").y[0]
        > result.get("encoding k = 20").y[0]
        > result.get("encoding k = 100").y[0]
    )


@pytest.mark.benchmark(group="fig01")
def test_fig01_headline_operating_point(benchmark):
    """The paper's headline: k=7, h=1 encodes way faster than needed for
    the 100 KB/s multicast applications of 1997 (>= 8000 pkts/s there)."""
    encode_rate, decode_rate = benchmark.pedantic(
        measure_codec_rates, args=(7, 1), kwargs={"min_duration": 0.1},
        rounds=1, iterations=1,
    )
    assert encode_rate > 8000  # a 2020s machine beats a Pentium 133
    assert decode_rate > 1000
