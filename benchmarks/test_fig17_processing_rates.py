"""Figure 17 — sender/receiver processing rates, N2 vs NP (k=20, p=0.01).

Paper shape (DECstation constants): N2's sender and receiver rates are
nearly identical and fall with R; NP's receiver rate is much higher and
nearly flat (decoding is population-independent); NP's sender rate is the
lowest — online parity encoding makes the sender the bottleneck.
"""

import pytest

from repro.experiments.figures_analysis import fig17


@pytest.mark.benchmark(group="fig17")
def test_fig17_processing_rates(benchmark, record_figure):
    result = benchmark.pedantic(fig17, rounds=1, iterations=1)
    record_figure(result)

    n2_sender = result.get("N2 sender")
    n2_receiver = result.get("N2 receiver")
    np_sender = result.get("NP sender")
    np_receiver = result.get("NP receiver")

    # N2 sender ~ receiver (within 5%) at every population size
    for sender, receiver in zip(n2_sender.y, n2_receiver.y):
        assert abs(sender - receiver) / receiver < 0.05

    # N2 rates decrease monotonically with R
    assert n2_sender.y == sorted(n2_sender.y, reverse=True)

    # NP receiver high and almost flat
    assert min(np_receiver.y) > 0.6
    assert max(np_receiver.y) - min(np_receiver.y) < 0.25

    # NP sender is the bottleneck from moderate populations on
    for r in (100, 10**4, 10**6):
        assert np_sender.value_at(r) < np_receiver.value_at(r)
        assert np_sender.value_at(r) <= n2_sender.value_at(r) * 1.25

    # receiver decode cost is tiny: NP receiver >> NP sender at scale
    assert np_receiver.value_at(10**6) > 3 * np_sender.value_at(10**6)
