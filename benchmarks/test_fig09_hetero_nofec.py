"""Figure 9 — heterogeneous receiver populations without FEC.

Paper shape: high-loss receivers dominate; for a million receivers even a
1% minority at p = 0.25 roughly doubles E[M], while a group of 100 is
barely affected by its single high-loss member.
"""

import pytest

from repro.experiments.figures_analysis import fig09


@pytest.mark.benchmark(group="fig09")
def test_fig09_heterogeneous_nofec(benchmark, record_figure):
    result = benchmark.pedantic(fig09, rounds=1, iterations=1)
    record_figure(result)

    baseline = result.get("high loss: 0%")
    one = result.get("high loss: 1%")
    five = result.get("high loss: 5%")
    quarter = result.get("high loss: 25%")

    # the paper's headline: 1% of 10^6 receivers doubles the cost
    assert one.value_at(10**6) / baseline.value_at(10**6) > 1.8
    # a small group barely notices
    assert one.value_at(100) / baseline.value_at(100) < 1.35
    # more high-loss receivers -> monotonically worse, at every scale
    for r in (100, 10**4, 10**6):
        assert (
            baseline.value_at(r)
            <= one.value_at(r)
            <= five.value_at(r)
            <= quarter.value_at(r)
        )
    # the influence of the high-loss class grows with R
    ratio_small = one.value_at(100) / baseline.value_at(100)
    ratio_large = one.value_at(10**6) / baseline.value_at(10**6)
    assert ratio_large > ratio_small
