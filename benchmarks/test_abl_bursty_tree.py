"""Ablation A6 — combined spatial+temporal correlation (bursty tree).

The paper studies shared loss (Section 4.1) and burst loss (Section 4.2)
in isolation; real congested routers produce both.  This ablation re-runs
the Figure 16 question — does growing the transmission group defeat
bursts? — on the combined :class:`repro.sim.loss.BurstyTreeLoss` model.
"""

import pytest

from repro.experiments.ablations import abl_bursty_tree

DEPTHS = (2, 6, 10)


@pytest.mark.benchmark(group="ablation")
def test_bursty_tree_combined_correlation(benchmark, record_figure):
    result = benchmark.pedantic(
        abl_bursty_tree, kwargs={"depths": DEPTHS}, rounds=1, iterations=1
    )
    record_figure(result)

    r_large = float(2 ** DEPTHS[-1])

    # integrated FEC still beats no-FEC under combined correlation
    assert (
        result.get("integrated k=7, bursty tree").value_at(r_large)
        < result.get("no FEC, bursty tree").value_at(r_large)
    )
    # larger groups still help against (shared) bursts
    assert (
        result.get("integrated k=20, bursty tree").value_at(r_large)
        < result.get("integrated k=7, bursty tree").value_at(r_large)
    )
    # sharing makes bursts cheaper than independent bursts of equal rate
    assert (
        result.get("no FEC, bursty tree").value_at(r_large)
        <= result.get("no FEC, independent bursts").value_at(r_large) + 0.05
    )
    assert (
        result.get("integrated k=7, bursty tree").value_at(r_large)
        <= result.get("integrated k=7, independent bursts").value_at(r_large)
        + 0.05
    )
