"""Ablation A7 — completion latency of the recovery schemes.

The paper defers latency; this ablation quantifies it with the
first-order models of ``repro.analysis.delay`` cross-checked against the
event-driven protocol machines.
"""

import pytest

from repro.experiments.ablations import abl_latency


@pytest.mark.benchmark(group="ablation")
def test_latency_comparison(benchmark, record_figure):
    result = benchmark.pedantic(abl_latency, rounds=1, iterations=1)
    record_figure(result)

    model = result.get("model")
    simulated = result.get("simulated")

    # feedback-free FEC 1 is the latency floor, in both methodologies
    assert model.y[0] == min(model.y)
    assert simulated.y[0] == min(simulated.y)
    # hybrid ARQ beats no-FEC repair on latency as well as bandwidth
    assert simulated.y[1] < simulated.y[3]
    # first-order fidelity where the model claims it (fec1, np, layered)
    for index in (0, 1, 2):
        assert abs(model.y[index] - simulated.y[index]) / simulated.y[index] < 0.35
    # ... and the documented N2 lower-bound relationship
    assert model.y[3] < simulated.y[3]
