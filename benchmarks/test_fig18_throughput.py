"""Figure 18 — end-host throughput: N2 vs NP vs NP with pre-encoding.

Paper shape: pre-encoded NP has the highest throughput at every population
size, ending up to ~3x above N2 at a million receivers; online-encoding NP
trails N2 in the mid-range (encoding cost) and catches it at scale.
"""

import pytest

from repro.experiments.figures_analysis import fig18


@pytest.mark.benchmark(group="fig18")
def test_fig18_throughput(benchmark, record_figure):
    result = benchmark.pedantic(fig18, rounds=1, iterations=1)
    record_figure(result)

    n2 = result.get("N2")
    np_online = result.get("NP")
    np_pre = result.get("NP pre-encode")

    # pre-encoding dominates both alternatives from moderate group sizes
    # on (N2 keeps a sliver of an edge below ~R=20: no decode cost there)
    for r in (100, 10**3, 10**6):
        assert np_pre.value_at(r) > np_online.value_at(r)
        assert np_pre.value_at(r) > n2.value_at(r)

    # the summary's "up to 3 times higher" at a million receivers
    assert np_pre.value_at(10**6) / n2.value_at(10**6) > 2.5

    # online encoding costs NP the mid-range ...
    assert np_online.value_at(10**3) < n2.value_at(10**3)
    # ... but retransmission volume dominates at scale and NP catches up
    assert np_online.value_at(10**6) >= 0.95 * n2.value_at(10**6)

    # all throughputs decrease with population size
    assert n2.y == sorted(n2.y, reverse=True)
    assert np_pre.y == sorted(np_pre.y, reverse=True)
