"""GF-kernel backend shootout on the paper's encode workload.

One 64 KiB FEC block = ``k = 64`` data packets of 1 KiB, ``h = 10``
parities (fig01's 0.15-redundancy operating point), encoded in batches of
16 blocks — the sender-side pre-encoding path.  Every *available* backend
in :mod:`repro.galois.backends` is measured; the committed trajectory
(``BENCH_gf_backends.json``) records packets/s per backend plus the
headline ratio, and the gate pins the bitsliced kernel at >= 2x the PR-1
``numpy`` oracle on this shape.

Every ``record_trajectory`` call self-verifies its append (the empty-
trajectory regression), and :func:`test_trajectory_record_is_nonempty`
additionally proves this module's own record landed with the metrics the
gates used.

Run with ``pytest benchmarks/test_perf_gf_backends.py --benchmark-only``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks._trajectory import BENCH_DIR, record_trajectory
from repro.fec.rse import InverseCache, RSECodec
from repro.galois import backends as gb

K = 64               # data packets per 64 KiB block
H = 10               # fig01's ~0.15 redundancy point
PACKET_SIZE = 1024   # the paper's 1 KB packets
BATCH = 16           # blocks per encode_blocks call
MIN_DURATION = 0.25

#: The perf gate: the cache-blocked bitsliced kernel must beat the PR-1
#: oracle heuristic by at least this factor on the 64 KiB-block encode.
BITSLICED_FLOOR = 2.0


def _blocks() -> np.ndarray:
    rng = np.random.default_rng(0x6F6B)
    return rng.integers(
        0, 256, size=(BATCH, K, PACKET_SIZE)
    ).astype(np.uint8)


def _timed_loop(fn, work_per_call: int, min_duration: float = MIN_DURATION):
    """Run ``fn`` until ``min_duration`` elapsed; returns work items/second."""
    calls = 0
    start = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_duration:
            return calls * work_per_call / elapsed


def _encode_rates() -> dict[str, float]:
    """Data packets/s per available backend on the 64 KiB-block encode."""
    batch = _blocks()
    oracle = RSECodec(K, H, inverse_cache=InverseCache(),
                      gf_backend="numpy")
    expected = oracle.encode_blocks(batch)
    rates: dict[str, float] = {}
    for name in gb.available_backend_names():
        codec = RSECodec(K, H, inverse_cache=InverseCache(),
                         gf_backend=name)
        # a benchmark of a wrong kernel is worse than no benchmark
        assert np.array_equal(codec.encode_blocks(batch), expected), (
            f"backend {name!r} diverged from the oracle on the bench shape"
        )
        rates[name] = _timed_loop(
            lambda codec=codec: codec.encode_blocks(batch), BATCH * K
        )
    return rates


def _record(rates: dict[str, float]) -> float:
    speedup = rates["bitsliced"] / rates["numpy"]
    metrics = {
        f"encode_pps_{name}": rate for name, rate in sorted(rates.items())
    }
    metrics["bitsliced_speedup_x"] = speedup
    metrics["block_kib"] = K * PACKET_SIZE // 1024
    record_trajectory("gf_backends", metrics)
    return speedup


@pytest.mark.benchmark(group="gf-backends")
def test_backend_encode_shootout(benchmark):
    rates = benchmark.pedantic(_encode_rates, rounds=1, iterations=1)
    speedup = _record(rates)
    assert speedup >= BITSLICED_FLOOR, (
        f"bitsliced encode speedup {speedup:.2f}x is below the "
        f"{BITSLICED_FLOOR}x floor on the 64 KiB-block workload"
    )
    # every optional backend must at least not be catastrophically slow;
    # the committed trajectory carries the actual numbers for drift review
    for name, rate in rates.items():
        assert rate > 0, f"backend {name!r} measured a zero rate"


def test_smoke_speedup_without_benchmark_plugin():
    """Plugin-free gate (used by CI): bitsliced >= 2x oracle."""
    rates = _encode_rates()
    speedup = _record(rates)
    assert speedup >= BITSLICED_FLOOR, (
        f"bitsliced encode speedup {speedup:.2f}x < {BITSLICED_FLOOR}x"
    )


def test_trajectory_record_is_nonempty():
    """The committed trajectory must actually contain this bench's record.

    Guards the empty-trajectory failure mode end to end: a BENCH file that
    exists but whose history lost the current metrics (a merge gone wrong,
    a silently-skipped record call) fails here even if every timing gate
    above passed.
    """
    rates = _encode_rates()
    path = record_trajectory(
        "gf_backends", {"smoke_encode_pps_numpy": rates["numpy"]}
    )
    doc = json.loads(path.read_text())
    assert doc["bench"] == "gf_backends"
    assert doc["history"], "trajectory history is empty after recording"
    latest = doc["history"][-1]["metrics"]
    assert "smoke_encode_pps_numpy" in latest
    assert any(
        key.startswith("encode_pps_") for key in latest
    ), "per-backend rates missing from the trajectory record"
    assert (BENCH_DIR / "BENCH_gf_backends.json").exists()


def test_trajectory_self_verification_has_teeth(monkeypatch, tmp_path):
    """``record_trajectory`` must refuse to 'succeed' without an append."""
    from benchmarks import _trajectory

    monkeypatch.setattr(_trajectory, "BENCH_DIR", tmp_path)
    # a write that lands is fine...
    _trajectory.record_trajectory("scratch", {"value": 1.0})
    # ...but a verification against a vanished record must raise
    real_write = _trajectory.pathlib.Path.write_text

    def swallow(self, *args, **kwargs):
        if self.name.startswith("BENCH_"):
            return 0  # simulate a write that never lands
        return real_write(self, *args, **kwargs)

    monkeypatch.setattr(_trajectory.pathlib.Path, "write_text", swallow)
    (tmp_path / "BENCH_scratch2.json").unlink(missing_ok=True)
    with pytest.raises(AssertionError, match="no entry|did not survive"):
        _trajectory.record_trajectory("scratch2", {"value": 1.0})
