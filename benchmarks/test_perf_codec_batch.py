"""Batched-kernel speedup on the Figure-1 workload (k = 7, 20, 100; h = k).

Locks in the two performance claims of the batched codec layer:

* **encode**: the single-matmul :meth:`RSECodec.encode_blocks` beats the
  retained row-by-row scalar loop by >= 5x aggregate throughput across the
  Figure-1 sweep with 1 KB packets;
* **decode**: repeated erasure patterns — the multicast case, where every
  receiver behind the same lossy link misses the same packets — decode
  >= 3x faster than the scalar reference because the
  :class:`InverseCache` skips Gaussian elimination and the reconstruction
  is one batched matmul.  The cache-hit counters must prove the reuse.

Run with ``pytest benchmarks/test_perf_codec_batch.py --benchmark-only``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks._trajectory import record_trajectory
from repro.experiments.series import FigureResult, Series
from repro.fec.rse import InverseCache, RSECodec

GROUP_SIZES = (7, 20, 100)
PACKET_SIZE = 1024  # the paper's 1 KB packets
MIN_DURATION = 0.05
#: blocks per batched encode call; amortises per-call numpy overhead the
#: way the sender's pre-encoding path does
ENCODE_BATCH = 32


def _symbol_blocks(codec: RSECodec, n_blocks: int) -> np.ndarray:
    rng = np.random.default_rng(0xF16)
    return rng.integers(
        0, codec.field.order, size=(n_blocks, codec.k, PACKET_SIZE)
    ).astype(codec.field.dtype)


def _timed_loop(fn, work_per_call: int, min_duration: float = MIN_DURATION):
    """Run ``fn`` until ``min_duration`` elapsed; returns work items / second."""
    calls = 0
    start = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_duration:
            return calls * work_per_call / elapsed


def _encode_rates(k: int) -> tuple[float, float]:
    """(batched, scalar) encode rates in data packets per second."""
    codec = RSECodec(k, k, inverse_cache=InverseCache())
    batch = _symbol_blocks(codec, ENCODE_BATCH)
    single = batch[0]

    assert np.array_equal(
        codec.encode_blocks(batch)[0], codec.encode_symbols_scalar(single)
    ), "batched and scalar encodes diverged"

    batched = _timed_loop(lambda: codec.encode_blocks(batch), ENCODE_BATCH * k)
    scalar = _timed_loop(lambda: codec.encode_symbols_scalar(single), k)
    return batched, scalar


def _decode_setup(k: int):
    """A worst-case repeated pattern: all k data packets lost, decode from
    the k parities (the heaviest reconstruction Figure 1 measures)."""
    codec = RSECodec(k, k, inverse_cache=InverseCache())
    data = _symbol_blocks(codec, 1)[0]
    parities = codec.encode_symbols(data)
    received = {k + j: parities[j] for j in range(k)}
    expected = data
    return codec, received, expected


def _decode_rates(k: int) -> tuple[float, float, RSECodec]:
    """(cached-batched, scalar) decode rates in reconstructed packets/s."""
    codec, received, expected = _decode_setup(k)

    out = codec.decode_symbols(dict(received))  # warm the inverse cache
    for i in range(k):
        assert np.array_equal(out[i], expected[i]), "decode mismatch"

    cached = _timed_loop(lambda: codec.decode_symbols(dict(received)), k)
    scalar = _timed_loop(lambda: codec.decode_symbols_scalar(dict(received)), k)
    return cached, scalar, codec


def _aggregate_speedup(rates: dict[int, tuple[float, float]]) -> float:
    """Wall-clock speedup over the whole sweep, equal work at each k.

    Figure 1 encodes the same number of blocks at every configuration, so
    the sweep's total time is ``sum(work / rate)`` — the slow large-k
    configurations dominate, exactly as they dominate a real run.
    """
    fast_time = sum(1.0 / fast for fast, _slow in rates.values())
    slow_time = sum(1.0 / slow for _fast, slow in rates.values())
    return slow_time / fast_time


@pytest.mark.benchmark(group="codec-batch")
def test_batched_encode_speedup(benchmark, record_figure):
    def sweep():
        return {k: _encode_rates(k) for k in GROUP_SIZES}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    result = FigureResult(
        figure_id="perf_codec_batch",
        title="Batched vs scalar RSE encode, Figure-1 workload (h = k)",
        x_label="k",
        y_label="rate [data packets/s]",
        notes=f"P = {PACKET_SIZE} bytes, GF(2^8), batch = {ENCODE_BATCH}",
        series=[
            Series(
                "encode batched",
                [float(k) for k in GROUP_SIZES],
                [rates[k][0] for k in GROUP_SIZES],
            ),
            Series(
                "encode scalar",
                [float(k) for k in GROUP_SIZES],
                [rates[k][1] for k in GROUP_SIZES],
            ),
        ],
    )
    record_figure(result)

    aggregate = _aggregate_speedup(rates)
    record_trajectory(
        "codec_batch",
        {
            "encode_speedup_x": aggregate,
            "encode_batched_pps_k100": rates[100][0],
            "encode_scalar_pps_k100": rates[100][1],
        },
    )
    assert aggregate >= 5.0, f"aggregate encode speedup {aggregate:.2f}x < 5x"
    # the big-k end is where the kernel earns its keep; it must never lose
    assert rates[100][0] > rates[100][1]


@pytest.mark.benchmark(group="codec-batch")
def test_cached_decode_speedup(benchmark):
    def sweep():
        return {k: _decode_rates(k) for k in GROUP_SIZES}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for k in GROUP_SIZES:
        _cached, _scalar, codec = rates[k]
        # the counters must prove the repeated pattern was served from cache
        assert codec.stats.decode_cache_misses == 1, (
            f"k={k}: expected exactly one Gaussian elimination, got "
            f"{codec.stats.decode_cache_misses}"
        )
        assert codec.stats.decode_cache_hits >= 5, (
            f"k={k}: only {codec.stats.decode_cache_hits} cache hits"
        )

    aggregate = _aggregate_speedup(
        {k: (cached, scalar) for k, (cached, scalar, _codec) in rates.items()}
    )
    record_trajectory(
        "codec_batch",
        {
            "decode_speedup_x": aggregate,
            "decode_cached_pps_k100": rates[100][0],
            "decode_scalar_pps_k100": rates[100][1],
        },
    )
    assert aggregate >= 3.0, f"aggregate decode speedup {aggregate:.2f}x < 3x"


def test_smoke_speedup_without_benchmark_plugin():
    """Plugin-free smoke check (used by CI): one mid-size configuration."""
    k = 20
    batched, scalar = _encode_rates(k)
    assert batched > scalar, f"encode batched {batched:.0f} <= scalar {scalar:.0f}"
    cached, scalar_decode, codec = _decode_rates(k)
    assert cached > scalar_decode
    assert codec.stats.decode_cache_hits > 0
