"""Ablation A5 — adaptive proactive redundancy vs plain reactive NP.

The future-work knob of Equation (6): an AIMD controller attaches
proactive parities to each group based on observed NAK shortfalls.
Measures the trade — feedback volume and repair rounds down, bandwidth up.
"""

import pytest

from repro.experiments.ablations import abl_adaptive


@pytest.mark.benchmark(group="ablation")
def test_adaptive_vs_reactive(benchmark, record_figure):
    result = benchmark.pedantic(abl_adaptive, rounds=1, iterations=1)
    record_figure(result)

    naks = result.get("NAKs sent")
    bandwidth = result.get("E[M]")

    # headline: the controller removes the bulk of the feedback ...
    assert naks.value_at(1.0) < 0.5 * naks.value_at(0.0)
    # ... at a bounded bandwidth premium (not a blow-up)
    assert bandwidth.value_at(1.0) < 2.0 * bandwidth.value_at(0.0)
    assert bandwidth.value_at(1.0) >= bandwidth.value_at(0.0) - 0.02
