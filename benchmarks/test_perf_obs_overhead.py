"""Telemetry overhead budget on the protocol-harness path.

The observability layer's admission price, measured where it matters —
the event-driven transfer harness that figures 5/11/12/15/16 and every
ablation lean on:

* **disabled** (the default): instrumentation must cost <= 2% of a
  transfer.  The disabled path is one module-bool read per counter site
  and a bare two-``perf_counter`` timer per span site, so the bound is
  asserted from first principles: measured per-call primitive cost times
  the number of sites a real transfer touches, over the transfer's wall
  time.
* **enabled** (``--metrics-out``): full recording must stay within 10%
  of the disabled wall time on the same seeded workload.

Run with ``pytest benchmarks/test_perf_obs_overhead.py``.
"""

from __future__ import annotations

import os
import time

from benchmarks._trajectory import record_trajectory
from repro import obs
from repro.protocols.harness import run_transfer
from repro.protocols.np_protocol import NPConfig
from repro.sim.loss import BernoulliLoss

#: ~90 KB -> ~175 data packets in 25 groups: a transfer long enough that
#: one run is ~100 ms, short enough to repeat for stable minima
PAYLOAD = bytes((i * 131) % 251 for i in range(90_000))
CONFIG = NPConfig(k=7, h=8, packet_size=512, packet_interval=0.002)
N_RECEIVERS, LOSS_P = 20, 0.02
REPEATS = 5

DISABLED_BUDGET = 0.02
ENABLED_BUDGET = 0.10


def _one_transfer(seed: int = 0):
    report = run_transfer(
        "np", PAYLOAD, BernoulliLoss(N_RECEIVERS, LOSS_P), CONFIG, rng=seed
    )
    assert report.verified
    return report


def _best_time(fn, repeats: int = REPEATS) -> float:
    """Minimum wall time over ``repeats`` runs (the standard noise-robust
    estimator: the true cost plus the least interference observed)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _instrumentation_sites() -> tuple[int, int]:
    """(span sites, counter touches) one seeded transfer actually hits.

    Counted by running the workload once with recording on: every span
    the recorder saw (stored + dropped) entered the disabled path too,
    and each counter instrument's increments approximate the number of
    ``is_enabled()`` guard evaluations on the counter side.
    """
    with obs.capture() as registry:
        _one_transfer()
        recorder = obs.recorder()
        spans = len(recorder) + recorder.dropped
        counter_touches = sum(
            instrument.value
            for (name, _), instrument in registry
            if instrument.kind == "counter" and name == "galois.matmul_calls"
        )
        # each matmul call guards two counter incs; the per-transfer
        # report block touches ~25 instruments once
        counter_touches = 2 * counter_touches + 25
    return spans, counter_touches


class TestDisabledOverhead:
    def test_disabled_cost_is_under_budget(self):
        spans, counter_touches = _instrumentation_sites()
        assert spans > 10, "workload no longer exercises span sites"

        # per-call cost of the two disabled primitives
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with obs.span("bench", k=7):
                pass
        span_cost = (time.perf_counter() - start) / n

        start = time.perf_counter()
        for _ in range(n):
            obs.is_enabled()
        guard_cost = (time.perf_counter() - start) / n

        transfer_time = _best_time(_one_transfer)
        overhead = (spans * span_cost + counter_touches * guard_cost)
        fraction = overhead / transfer_time
        print(
            f"\ndisabled: {spans} spans x {span_cost * 1e9:.0f}ns + "
            f"{counter_touches} guards x {guard_cost * 1e9:.0f}ns = "
            f"{overhead * 1e6:.0f}us over {transfer_time * 1e3:.0f}ms "
            f"({fraction:.4%})"
        )
        record_trajectory(
            "obs_overhead",
            {
                "disabled_fraction": fraction,
                "span_cost_ns": span_cost * 1e9,
                "guard_cost_ns": guard_cost * 1e9,
            },
        )
        assert fraction <= DISABLED_BUDGET


class TestEnabledOverhead:
    def test_enabled_within_budget_of_disabled(self):
        # warm both paths (numpy kernels, inverse cache, allocator)
        _one_transfer()
        with obs.capture():
            _one_transfer()

        disabled = _best_time(_one_transfer)

        def enabled_run():
            with obs.capture():
                _one_transfer()

        enabled = _best_time(enabled_run)
        ratio = enabled / disabled
        print(
            f"\nenabled {enabled * 1e3:.1f}ms vs disabled "
            f"{disabled * 1e3:.1f}ms -> x{ratio:.3f}"
        )
        record_trajectory(
            "obs_overhead",
            {
                "enabled_ratio": ratio,
                "disabled_transfer_ms": disabled * 1e3,
                "enabled_transfer_ms": enabled * 1e3,
            },
        )
        assert ratio <= 1.0 + ENABLED_BUDGET

    def test_enabled_run_leaves_reports_identical(self):
        """The overhead is the only difference: enabling telemetry must
        not change a single reported number for the same seed."""
        baseline = _one_transfer(seed=42).to_json()
        with obs.capture():
            recorded = _one_transfer(seed=42).to_json()
        assert recorded == baseline
