"""Figure 14 — burst-length distribution at one receiver (p=0.01, b=2).

Paper shape: both distributions have geometrically decaying tails (linear
on a log scale); the two-state Markov channel's tail is far heavier than
the Bernoulli channel's — bursts of length >= 3 are common at b = 2 and
essentially absent under independent loss.
"""

import math

import pytest

from repro.experiments.figures_mc import fig14


def run_figure():
    return fig14(n_packets=1_000_000, rng=14)


@pytest.mark.benchmark(group="fig14")
def test_fig14_burst_length_distribution(benchmark, record_figure):
    result = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record_figure(result)

    bursty = result.get("burst loss, b = 2")
    independent = result.get("no burst loss")

    # heavier tail under the Markov channel
    assert bursty.value_at(3.0) > 10 * max(independent.value_at(3.0), 1.0)
    assert bursty.value_at(5.0) > 0

    # geometric tail: occurrences(l+1)/occurrences(l) ~ 1 - 1/b = 0.5
    for length in (1.0, 2.0, 3.0):
        ratio = bursty.value_at(length + 1.0) / bursty.value_at(length)
        assert 0.35 < ratio < 0.65

    # Bernoulli tail ratio ~ p = 0.01
    if independent.value_at(2.0) > 0:
        ratio = independent.value_at(2.0) / independent.value_at(1.0)
        assert ratio < 0.05

    # both channels hit the configured loss rate: total lost packets match
    def total_losses(series):
        return sum(length * count for length, count in zip(series.x, series.y))

    for series in (bursty, independent):
        losses = total_losses(series)
        assert math.isclose(losses / 1_000_000, 0.01, rel_tol=0.15)
