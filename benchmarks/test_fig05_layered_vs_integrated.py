"""Figure 5 — E[M] vs R for TG size 7: no FEC vs layered vs integrated.

Paper readings at p = 0.01 (approximate, off the printed curves):
R = 10^6: no-FEC ~3.6-3.7, layered ~2.6-2.8, integrated ~1.5-1.6.
The reproduction must match those anchor values and keep the strict
ordering integrated < layered < no-FEC for all large R.
"""

import pytest

from repro.experiments.figures_analysis import fig05


@pytest.mark.benchmark(group="fig05")
def test_fig05_layered_vs_integrated(benchmark, record_figure):
    result = benchmark.pedantic(fig05, rounds=1, iterations=1)
    record_figure(result)

    # anchor values at a million receivers
    assert 3.5 < result.get("no FEC").value_at(10**6) < 3.8
    assert 2.4 < result.get("layered").value_at(10**6) < 2.8
    assert 1.5 < result.get("integrated").value_at(10**6) < 1.65

    # strict ordering wherever multicast gain exists
    for r in (100, 10**4, 10**6):
        integrated_em = result.get("integrated").value_at(r)
        layered_em = result.get("layered").value_at(r)
        nofec_em = result.get("no FEC").value_at(r)
        assert integrated_em < layered_em
        assert integrated_em < nofec_em
