"""Figure 10 — heterogeneous receiver populations with integrated FEC (k=7).

Paper shape: same qualitative story as Figure 9 (high-loss receivers
dominate, and the paper notes their *relative* effect is even greater
under integrated FEC), but with much lower absolute E[M] than no-FEC.
"""

import pytest

from repro.experiments.figures_analysis import fig09, fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_heterogeneous_integrated(benchmark, record_figure):
    result = benchmark.pedantic(fig10, rounds=1, iterations=1)
    record_figure(result)

    baseline = result.get("high loss: 0%")
    one = result.get("high loss: 1%")

    # high-loss minority still dominates at scale
    assert one.value_at(10**6) / baseline.value_at(10**6) > 1.6
    # monotone in the high-loss fraction
    for r in (10**4, 10**6):
        values = [
            result.get(f"high loss: {pct}%").value_at(r)
            for pct in ("0", "1", "5", "25")
        ]
        assert values == sorted(values)

    # absolute advantage over no-FEC persists for every mix
    reference = fig09(grid=[10**6])
    for pct in ("0", "1", "5", "25"):
        assert (
            result.get(f"high loss: {pct}%").value_at(10**6)
            < reference.get(f"high loss: {pct}%").value_at(10**6)
        )
