"""Ablation A4 — three-way validation: analysis vs Monte-Carlo vs protocol.

Not a paper figure but the reproduction's own integrity check, kept as a
benchmark so the agreement (and its cost) is re-measured on every run.
"""

import pytest

from repro.experiments.ablations import abl_validation


@pytest.mark.benchmark(group="ablation")
def test_three_way_validation(benchmark, record_figure):
    result = benchmark.pedantic(abl_validation, rounds=1, iterations=1)
    record_figure(result)

    analysis = result.get("analysis")
    monte_carlo = result.get("monte carlo")
    protocol = result.get("NP protocol")

    # MC within 3% of every closed form
    for model_value, mc_value in zip(analysis.y, monte_carlo.y):
        assert abs(mc_value - model_value) / model_value < 0.03

    # the real protocol lands within 15% of the idealised integrated model
    # (it pays for slot quantisation and parity batching)
    ideal = analysis.value_at(2.0)
    assert abs(protocol.value_at(2.0) - ideal) / ideal < 0.15

    # and the architectures rank correctly in every methodology
    assert analysis.y[2] < analysis.y[1] < analysis.y[0]
    assert monte_carlo.y[2] < monte_carlo.y[1] < monte_carlo.y[0]
