"""Figure 4 — layered FEC with h = 7 for k = 7, 20, 100 vs no FEC (p=0.01).

Paper shape: with a richer parity budget the big k = 100 group becomes the
best layered configuration through the 1..2*10^5 receiver range, while
k = 7 with 100% redundancy wastes bandwidth at small R.
"""

import pytest

from repro.experiments.figures_analysis import fig04


@pytest.mark.benchmark(group="fig04")
def test_fig04_layered_h7(benchmark, record_figure):
    result = benchmark.pedantic(fig04, rounds=1, iterations=1)
    record_figure(result)

    for r in (100, 10**4, 10**5):
        k7 = result.get("layered FEC, k = 7").value_at(r)
        k20 = result.get("layered FEC, k = 20").value_at(r)
        k100 = result.get("layered FEC, k = 100").value_at(r)
        assert k100 < k20 < k7  # paper: k=100 best in this range

    # k=7 with h=7 means 2x bandwidth floor: E[M] >= 2 everywhere
    assert min(result.get("layered FEC, k = 7").y) >= 2.0
