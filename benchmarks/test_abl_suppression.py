"""Ablation A2 — NAK suppression slot size Ts vs feedback volume.

The paper leaves Ts as an application choice ("needs to be chosen
appropriately").  This ablation runs the event-driven NP protocol with
different slot sizes and measures actual NAK traffic: wider slots damp
more feedback at the price of added latency per round.
"""

import pytest

from repro.experiments.ablations import abl_suppression

RECEIVERS = 60


@pytest.mark.benchmark(group="ablation")
def test_slot_size_tradeoff(benchmark, record_figure):
    result = benchmark.pedantic(abl_suppression, rounds=1, iterations=1)
    record_figure(result)

    naks = result.get("NAKs sent")
    suppression = result.get("suppression ratio")
    completion = result.get("completion time [s]")

    # wider slots -> materially less feedback
    assert naks.y[-1] < naks.y[0] * 0.7
    # and better damping
    assert suppression.y[-1] > suppression.y[0]
    # the cost: completion time grows with slot width
    assert completion.y[-1] > completion.y[0]
    # even the narrowest slot keeps feedback bounded (far below R per round)
    assert max(naks.y) < RECEIVERS * 10
