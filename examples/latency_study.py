#!/usr/bin/env python3
"""Completion latency across recovery schemes — the paper's open question.

Section 3 remarks that fewer transmissions should "often lead to a
reduction in latency" but never quantifies it.  This example does, two
ways at once:

* first-order models from ``repro.analysis.delay`` (rounds x round-trips
  + transmissions x Delta), and
* the event-driven protocol machines, measured end to end.

The punchline: integrated FEC doesn't just save bandwidth.  The
feedback-free FEC 1 stream is the latency floor; NP pays one NAK slot
cycle; no-FEC repair pays the same rounds *plus* a bigger repair volume —
and its per-packet feedback splinters rounds in practice, which is why the
measured N2 is slower than its own idealised model.

Usage::

    python examples/latency_study.py [--receivers 50] [--loss 0.05]
"""

import argparse
import os

import numpy as np

from repro.analysis.delay import (
    DelayParameters,
    fec1_delay,
    layered_delay,
    n2_delay,
    np_delay,
)
from repro.protocols.harness import run_transfer
from repro.protocols.np_protocol import NPConfig
from repro.sim.loss import BernoulliLoss


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--receivers", type=int, default=50)
    parser.add_argument("--loss", type=float, default=0.05)
    parser.add_argument("--k", type=int, default=7)
    parser.add_argument("--reps", type=int, default=25)
    args = parser.parse_args()

    k, p, r = args.k, args.loss, args.receivers
    timing = DelayParameters(packet_interval=0.01, latency=0.02,
                             slot_time=0.02)
    config = NPConfig(k=k, h=32, packet_size=256, packet_interval=0.01,
                      slot_time=0.02)
    layered_config = NPConfig(k=k, h=2, packet_size=256,
                              packet_interval=0.01, slot_time=0.02)
    payload = os.urandom(k * 256)  # one transmission group

    def simulate(protocol, cfg):
        return float(np.mean([
            run_transfer(protocol, payload, BernoulliLoss(r, p), cfg,
                         rng=seed, latency=timing.latency).completion_time
            for seed in range(args.reps)
        ]))

    rows = [
        ("fec1 (no feedback)", fec1_delay(k, p, r, timing),
         simulate("fec1", config)),
        ("NP (hybrid ARQ)", np_delay(k, p, r, timing),
         simulate("np", config)),
        ("layered (h=2)", layered_delay(k, 2, p, r, timing),
         simulate("layered", layered_config)),
        ("N2 (no FEC)", n2_delay(k, p, r, timing),
         simulate("n2", config)),
    ]

    print(f"one group of k = {k}, R = {r}, p = {p}, "
          f"Delta = 10 ms, L = 20 ms, Ts = 20 ms\n")
    print(f"{'scheme':22} {'model [s]':>10} {'simulated [s]':>14}")
    print("-" * 48)
    for name, model, simulated in rows:
        print(f"{name:22} {model:10.3f} {simulated:14.3f}")
    print(
        "\nN2's model is a lower bound: per-packet NAK sets aggregate\n"
        "imperfectly, splintering feedback rounds — one more reason the\n"
        "paper's per-group count feedback wins."
    )


if __name__ == "__main__":
    main()
