#!/usr/bin/env python3
"""How the loss environment changes what FEC buys you.

Walks the paper's four loss behaviours with one scenario each and shows,
for every environment, the analytical/simulated E[M] of no-FEC vs layered
vs integrated FEC — the condensed story of Sections 3 and 4:

* independent loss      -> integrated FEC wins big, layered helps at scale
* heterogeneous loss    -> a few bad receivers dominate everyone's cost
* shared (tree) loss    -> everything gets cheaper; FEC's edge shrinks
* bursty loss           -> layered FEC can be *worse* than no FEC

Usage::

    python examples/loss_study.py [--receivers 1024] [--loss 0.01]
"""

import argparse

import numpy as np

from repro.analysis import integrated, layered, nofec
from repro.analysis.hetero import (
    TwoClassPopulation,
    integrated_two_class,
    nofec_two_class,
)
from repro.mc import (
    simulate_integrated_rounds,
    simulate_layered,
    simulate_nofec,
)
from repro.sim.loss import FullBinaryTreeLoss, GilbertLoss


def row(environment: str, no_fec: float, layered_em: float, integrated_em: float) -> None:
    best = min(no_fec, layered_em, integrated_em)

    def mark(value: float) -> str:
        star = " *" if value == best else "  "
        return f"{value:7.3f}{star}"

    print(f"{environment:28} {mark(no_fec)} {mark(layered_em)} "
          f"{mark(integrated_em)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--receivers", type=int, default=1024,
                        help="group size (power of two, for the tree case)")
    parser.add_argument("--loss", type=float, default=0.01)
    parser.add_argument("--k", type=int, default=7)
    parser.add_argument("--reps", type=int, default=120)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    r, p, k = args.receivers, args.loss, args.k
    h_layered = 2
    rng = np.random.default_rng(args.seed)

    print(f"R = {r}, p = {p}, k = {k}, layered h = {h_layered}\n")
    print(f"{'loss environment':28} {'no FEC':>9} {'layered':>9} {'integrated':>9}")
    print("-" * 60)

    # 1. independent homogeneous (closed form)
    row(
        "independent",
        nofec.expected_transmissions(p, r),
        layered.expected_transmissions(k, k + h_layered, p, r),
        integrated.expected_transmissions_lower_bound(k, p, r),
    )

    # 2. heterogeneous: 5% of receivers at 25% loss (closed form)
    population = TwoClassPopulation(r, 0.05, p_low=p, p_high=0.25)
    row(
        "heterogeneous (5% @ 25%)",
        nofec_two_class(population),
        layered.expected_transmissions_heterogeneous(
            k, k + h_layered, population.probabilities()
        ),
        integrated_two_class(population, k),
    )

    # 3. shared loss on a full binary tree (simulation)
    depth = int(r).bit_length() - 1
    tree = FullBinaryTreeLoss(depth, p)
    row(
        f"shared, FBT depth {depth}",
        simulate_nofec(tree, args.reps, rng=rng).mean,
        simulate_layered(tree, k, h_layered, args.reps, rng=rng).mean,
        simulate_integrated_rounds(tree, k, args.reps, rng=rng).mean,
    )

    # 4. bursty loss, mean burst 2 packets (simulation)
    burst = GilbertLoss.from_loss_and_burst(r, p, 2.0, 0.040)
    row(
        "bursty (mean burst 2)",
        simulate_nofec(burst, args.reps, rng=rng).mean,
        simulate_layered(burst, k, h_layered, args.reps, rng=rng).mean,
        simulate_integrated_rounds(burst, k, args.reps, rng=rng).mean,
    )

    print("\n* = cheapest architecture for that environment "
          "(E[M] = transmissions per data packet)")


if __name__ == "__main__":
    main()
