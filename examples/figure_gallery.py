#!/usr/bin/env python3
"""Render every reproduced paper figure as a text table.

A thin tour over :mod:`repro.experiments`; equivalent to::

    python -m repro.experiments --all

but with per-figure timing and the expected-shape annotations from the
experiment registry.

Usage::

    python examples/figure_gallery.py            # everything (~minutes)
    python examples/figure_gallery.py fig05 fig16
"""

import sys
import time

from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment


def main() -> None:
    targets = sys.argv[1:] or experiment_ids()
    for figure_id in targets:
        experiment = EXPERIMENTS[figure_id]
        print("=" * 72)
        print(f"{figure_id} [{experiment.method}] — {experiment.paper_caption}")
        print(f"expected shape: {experiment.expected_shape}")
        print("=" * 72)
        start = time.perf_counter()
        result = run_experiment(figure_id)
        print(result.render_table())
        print(f"({time.perf_counter() - start:.1f}s)\n")


if __name__ == "__main__":
    main()
