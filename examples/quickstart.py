#!/usr/bin/env python3
"""Quickstart: erasure coding and a reliable multicast transfer.

Runs in a couple of seconds::

    python examples/quickstart.py
"""

import os

from repro import ReliableMulticastSession, RSECodec, ScenarioConfig


def demo_codec() -> None:
    """Any k of the n = k + h packets reconstruct the transmission group."""
    print("=== 1. Reed-Solomon erasure codec ===")
    k, h = 7, 3
    codec = RSECodec(k=k, h=h)
    data = [os.urandom(1024) for _ in range(k)]
    parities = codec.encode(data)
    print(f"encoded {k} data packets -> {h} parities "
          f"(block of n = {codec.n})")

    # lose three data packets; repair them with the three parities
    received = {i: data[i] for i in (1, 3, 4, 6)}
    received.update({k + j: parities[j] for j in range(h)})
    decoded = codec.decode(received)
    assert decoded == data
    print(f"lost packets 0, 2, 5 -> decoded all {k} packets correctly")
    print(f"decode work: {codec.stats.packets_decoded} packets reconstructed\n")


def demo_transfer() -> None:
    """Protocol NP delivering a payload to a lossy multicast group."""
    print("=== 2. Reliable multicast with protocol NP ===")
    config = ScenarioConfig(
        n_receivers=50,   # multicast group size
        p=0.05,           # 5% independent loss at each receiver
        k=7, h=32,        # TG size and parity budget
        seed=42,
    )
    session = ReliableMulticastSession(config)
    payload = os.urandom(200_000)  # ~200 KB -> 28 transmission groups
    report = session.send(payload)

    print(f"receivers          : {report.n_receivers}")
    print(f"transmission groups: {report.n_groups} (k = {config.k})")
    print(f"E[M] measured      : {report.transmissions_per_packet:.3f} "
          f"transmissions per data packet")
    print(f"parities sent      : {report.parity_sent}")
    print(f"NAKs sent/damped   : {report.naks_sent_total}/"
          f"{report.naks_suppressed_total} "
          f"(suppression {report.suppression_ratio:.0%})")
    print(f"completion time    : {report.completion_time:.2f} simulated s")
    print(f"payload verified   : {report.verified}")


if __name__ == "__main__":
    demo_codec()
    demo_transfer()
