#!/usr/bin/env python3
"""Burst loss vs transmission-group size (the Section 4.2 story).

The paper's practical advice: against bursty loss, don't interleave —
*grow the transmission group*.  A TG of k = 20 spread over 20 * Delta
already spans typical burst lengths, so parities stop dying in the same
burst as the data they protect.

This example sweeps the mean burst length and shows E[M] of integrated
FEC 1 (back-to-back parities) and FEC 2 (parities a round-trip apart) for
several group sizes, plus the no-FEC baseline.

Usage::

    python examples/burst_resilience.py [--receivers 1000]
"""

import argparse

import numpy as np

from repro.mc import (
    simulate_integrated_immediate,
    simulate_integrated_rounds,
    simulate_nofec,
)
from repro.sim.loss import GilbertLoss

PACKET_INTERVAL = 0.040  # the paper's Delta (25 pkts/s)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--receivers", type=int, default=1000)
    parser.add_argument("--loss", type=float, default=0.01)
    parser.add_argument("--reps", type=int, default=150)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    group_sizes = (7, 20, 100)
    burst_lengths = (1.5, 2.0, 4.0, 8.0)

    header = f"{'mean burst':>10} {'no FEC':>8}"
    for k in group_sizes:
        header += f"  {'FEC1 k=' + str(k):>10} {'FEC2 k=' + str(k):>10}"
    print(f"R = {args.receivers}, p = {args.loss}, "
          f"Delta = {PACKET_INTERVAL * 1000:.0f} ms\n")
    print(header)
    print("-" * len(header))

    for burst in burst_lengths:
        model = GilbertLoss.from_loss_and_burst(
            args.receivers, args.loss, burst, PACKET_INTERVAL
        )
        cells = [f"{burst:10.1f}"]
        cells.append(
            f"{simulate_nofec(model, args.reps, rng=rng).mean:8.3f}"
        )
        for k in group_sizes:
            fec1 = simulate_integrated_immediate(model, k, args.reps, rng=rng)
            fec2 = simulate_integrated_rounds(model, k, args.reps, rng=rng)
            cells.append(f"{fec1.mean:10.3f} {fec2.mean:10.3f}")
        print(" ".join(cells))

    print(
        "\nreading: FEC1 sends parities immediately (bursts can eat them);\n"
        "FEC2 waits a round trip (implicit interleaving).  With k = 100 the\n"
        "group itself outlasts any burst and both schemes converge -> the\n"
        "paper's conclusion that large TGs make interleaving unnecessary."
    )


if __name__ == "__main__":
    main()
