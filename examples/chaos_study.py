#!/usr/bin/env python3
"""Chaos study: what does it take to break a transfer, and how does it fail?

Runs a matrix of seeded fault plans — packet corruption, duplication,
reordering jitter, downstream partitions, receiver crashes, sender stalls
and feedback blackouts — against the NP, layered and N2 protocol stacks,
and tabulates how each run ended:

* ``ok``        — bit-exact delivery at every receiver;
* ``degraded``  — completed by ejecting receivers under the round cap
  (partial delivery, explicitly reported);
* ``stalled`` / ``timeout`` — a typed failure whose StallReport names the
  stragglers, their missing groups and the faults injected.

Every outcome is reproducible from the printed ``(rng, plan seed)`` pair.

Usage::

    python examples/chaos_study.py [--plans 8] [--receivers 5]
"""

import argparse

from repro import FaultPlan, NPConfig, TransferStalled, TransferTimeout, run_transfer
from repro.sim.loss import BernoulliLoss

PAYLOAD = bytes(range(256)) * 24


def hardened_config() -> NPConfig:
    """Liveness armour: watchdog with bounded backoff, round cap, eject."""
    return NPConfig(
        k=4, h=4, packet_size=64, packet_interval=0.005, slot_time=0.02,
        nak_watchdog=0.3, watchdog_retry_limit=12, max_rounds=60,
        degradation_policy="eject",
    )


def run_one(protocol: str, plan: FaultPlan, rng_seed: int) -> tuple[str, str]:
    """Returns (outcome, detail) for one chaos transfer."""
    try:
        report = run_transfer(
            protocol, PAYLOAD, BernoulliLoss(5, 0.05), hardened_config(),
            rng=rng_seed, fault_plan=plan, max_sim_time=400.0,
        )
    except TransferTimeout as error:
        return "timeout", f"{len(error.report.receivers)} stragglers"
    except TransferStalled as error:
        return "stalled", f"{len(error.report.receivers)} stragglers"
    section = report.resilience
    if section.degraded:
        return (
            "degraded",
            f"ejected {list(section.ejected_receivers)}, "
            f"abandoned TGs {list(section.abandoned_groups)}",
        )
    fought = []
    if section.corrupt_discarded:
        fought.append(f"{section.corrupt_discarded} corrupt demoted")
    if section.watchdog_retries:
        fought.append(f"{section.watchdog_retries} watchdog retries")
    if section.crashes:
        fought.append(f"{section.crashes} crash survived")
    return "ok", "; ".join(fought) or "clean"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--plans", type=int, default=8)
    parser.add_argument("--receivers", type=int, default=5)
    parser.add_argument("--intensity", type=float, default=1.0)
    args = parser.parse_args()

    print(f"{'plan':>4} {'protocol':>9} {'outcome':>9}  detail")
    print("-" * 72)
    for seed in range(args.plans):
        plan = FaultPlan.random(
            seed, args.receivers, horizon=4.0, intensity=args.intensity,
        )
        for protocol in ("np", "layered", "n2"):
            crash_safe = protocol == "np"  # only NP re-solicits on rejoin
            effective = plan if crash_safe else FaultPlan.random(
                seed, args.receivers, horizon=4.0,
                intensity=args.intensity, include_crashes=False,
            )
            outcome, detail = run_one(protocol, effective, 10_000 + seed)
            print(f"{seed:>4} {protocol:>9} {outcome:>9}  {detail}")
        print(f"     faults: {plan.describe()}")


if __name__ == "__main__":
    main()
