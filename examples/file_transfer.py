#!/usr/bin/env python3
"""Reliable file transfer over simulated lossy multicast — NP vs baselines.

The scenario the paper's protocol NP was designed for: bulk data to a large
group, efficiency over latency.  Transfers the same payload with all three
protocol architectures over an identical loss environment and prints the
bandwidth / feedback / duplicate comparison.

Usage::

    python examples/file_transfer.py [--receivers 100] [--loss 0.05]
        [--size 500000] [--loss-model bernoulli|two_class|fbt|burst]
"""

import argparse
import os

from repro import ScenarioConfig, compare_protocols


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--receivers", type=int, default=100)
    parser.add_argument("--loss", type=float, default=0.05)
    parser.add_argument("--size", type=int, default=500_000,
                        help="payload size in bytes")
    parser.add_argument("--loss-model", default="bernoulli",
                        choices=("bernoulli", "two_class", "fbt", "burst"))
    parser.add_argument("--k", type=int, default=7)
    parser.add_argument("--h", type=int, default=32,
                        help="parity budget per group (NP); layered uses "
                        "a matched small budget instead")
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args()

    if args.loss_model == "fbt":
        # round the population to a power of two for the tree model
        depth = max(0, args.receivers - 1).bit_length()
        args.receivers = 2**depth
        print(f"[fbt] rounded group size to 2^{depth} = {args.receivers}")

    payload = os.urandom(args.size)
    base = ScenarioConfig(
        n_receivers=args.receivers,
        p=args.loss,
        loss=args.loss_model,
        k=args.k,
        h=args.h,
        seed=args.seed,
    )

    print(f"payload: {args.size} bytes  receivers: {args.receivers}  "
          f"loss: {args.loss_model}(p={args.loss})\n")

    # layered FEC transmits all h parities up front, so give it a small
    # fixed budget (h=2) rather than NP's deep reactive budget.
    from dataclasses import replace

    reports = {}
    reports["np"] = compare_protocols(payload, base, protocols=("np",))["np"]
    reports["np-adaptive"] = compare_protocols(
        payload, base, protocols=("np-adaptive",)
    )["np-adaptive"]
    reports["fec1"] = compare_protocols(payload, base, protocols=("fec1",))["fec1"]
    reports["n2"] = compare_protocols(payload, base, protocols=("n2",))["n2"]
    layered_config = replace(base, h=2)
    reports["layered (h=2)"] = compare_protocols(
        payload, layered_config, protocols=("layered",)
    )["layered"]

    header = (f"{'protocol':14} {'E[M]':>7} {'parity':>7} {'retx':>6} "
              f"{'NAKs':>6} {'damped':>7} {'dups':>8} {'time[s]':>8}")
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(
            f"{name:14} {report.transmissions_per_packet:7.3f} "
            f"{report.parity_sent:7d} {report.retransmissions_sent:6d} "
            f"{report.naks_sent_total:6d} {report.naks_suppressed_total:7d} "
            f"{report.duplicates_total:8d} {report.completion_time:8.2f}"
        )
    print("\nE[M] = multicast transmissions per data packet "
          "(the paper's bandwidth metric; lower is better).")


if __name__ == "__main__":
    main()
