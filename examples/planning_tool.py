#!/usr/bin/env python3
"""FEC provisioning tool: how much redundancy does my group need?

Applies the paper's analysis to the questions a deployment asks before
turning on hybrid ARQ:

1. what parity budget ``h`` makes one block round enough (no regrouping)?
2. how many *proactive* parities ``a`` avoid retransmission rounds
   entirely (latency-critical provisioning)?
3. what bandwidth overhead should I expect from each architecture?

Usage::

    python examples/planning_tool.py --k 20 --loss 0.01 --receivers 100000
"""

import argparse

from repro.analysis import integrated
from repro.analysis.rounds import expected_rounds
from repro.core.planner import (
    expected_overhead,
    proactive_parities_for_single_round,
    required_parities,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=20, help="TG size")
    parser.add_argument("--loss", type=float, default=0.01)
    parser.add_argument("--receivers", type=float, default=1e5)
    parser.add_argument("--confidence", type=float, default=0.99)
    args = parser.parse_args()

    k, p, r, confidence = args.k, args.loss, args.receivers, args.confidence
    print(f"scenario: k = {k}, p = {p}, R = {r:g}, "
          f"confidence = {confidence:.1%}\n")

    h = required_parities(k, p, r, confidence)
    print(f"1. reactive parity budget")
    print(f"   h = {h} parities per group keep recovery inside one FEC "
          f"block\n   with probability >= {confidence:.1%} "
          f"(redundancy {h / k:.1%})")

    a = proactive_parities_for_single_round(k, p, r, confidence)
    print(f"\n2. proactive provisioning (zero feedback rounds)")
    print(f"   a = {a} parities sent up-front avoid all NAKs with "
          f"probability >= {confidence:.1%}\n   (bandwidth cost "
          f"{(k + a) / k:.3f} transmissions/packet unconditionally)")

    rounds = expected_rounds(p, k, r)
    print(f"\n3. expected feedback rounds with reactive repair: "
          f"{rounds:.2f}")

    print(f"\n4. expected bandwidth overhead (extra transmissions/packet)")
    overhead = expected_overhead(k, h, p, r)
    ideal = integrated.expected_transmissions_lower_bound(k, p, r) - 1.0
    print(f"   {'no FEC':12}: {overhead['no_fec']:.3f}")
    print(f"   {'layered':12}: {overhead['layered']:.3f}   "
          f"(h = {h} parities always sent)")
    print(f"   {'integrated':12}: {overhead['integrated']:.3f}   "
          f"(parities on demand, budget h = {h})")
    print(f"   {'ideal':12}: {ideal:.3f}   (unlimited parity budget)")


if __name__ == "__main__":
    main()
