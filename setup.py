"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-wheel support (and offline environments without the
``wheel`` package).
"""

from setuptools import setup

setup()
