"""Robustness machinery for the UDP transport: pacing, deadlines, backoff.

Three pieces, all deliberately sharing vocabulary with the rest of the
repo so one mental model covers simulator, campaign and transport:

* :class:`NetConfig` — every knob of a transfer session, validated at
  construction like :class:`~repro.protocols.np_protocol.NPConfig`.
* :class:`Pacer` — sender-side pacing/backpressure: the stream task must
  ``await gate()`` before each frame, which bounds the burst size and
  yields the event loop so feedback handlers run *during* the stream
  (without it, a large transfer would starve ``datagram_received`` and
  every NAK would look stale).
* :class:`NakScheduler` — per-group NAK solicitation state on the
  receiver: deadline, seeded exponential backoff with jitter, and a hard
  retry budget, driven by the same
  :class:`~repro.campaign.retry.RetryPolicy` the campaign supervisor uses.
  When every outstanding group has exhausted its budget the transfer is
  declared stalled (typed failure), never silently hung.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.campaign.retry import RetryPolicy

__all__ = ["NetConfig", "Pacer", "NakScheduler", "GroupNakState"]

#: the scheduler's scan period is derived from the retry base delay; this
#: floor keeps a pathological policy from busy-spinning the event loop
_MIN_TICK = 0.005


@dataclass(frozen=True)
class NetConfig:
    """Parameters of a real-socket transfer session.

    FEC geometry (``k``, ``h``, ``packet_size``, ``codec``) mirrors
    :class:`~repro.protocols.np_protocol.NPConfig`; the remaining knobs
    bound the transport's patience:

    ``pace_interval``/``pace_burst`` shape the sender's downstream rate:
    at most ``pace_burst`` frames go out back-to-back, then the stream
    task sleeps ``pace_interval * pace_burst`` seconds (an even spacing of
    ``pace_interval`` per frame, amortized).  Even at ``pace_interval=0``
    the gate yields the event loop every burst, so feedback is processed
    mid-stream — that yield *is* the backpressure.

    ``join_window`` is the sender's gathering window: joins with the same
    group tag arriving within it share a session (the unicast fan-out
    emulation of a multicast group).

    ``nak_retry`` governs the receiver's NAK solicitation per group:
    base deadline ``nak_retry.base_delay``, exponential backoff with
    seeded jitter, at most ``nak_retry.retries`` re-NAKs after the first.
    ``join_retry`` does the same for the initial join handshake.

    ``member_timeout`` is the sender's degraded-completion deadline: an
    incomplete receiver silent that long is ejected (told via
    ``SessionFin("ejected")``) instead of stalling the whole session.
    ``session_deadline`` bounds a session's total lifetime the same way.
    ``max_rounds`` caps repair rounds per transmission group; on
    exceedance the group is abandoned with a ``GroupAbort`` exactly like
    the simulator's eject policy.
    """

    k: int = 8
    h: int = 16
    packet_size: int = 1024
    codec: str = "rse"
    seed: int = 0
    pace_interval: float = 0.0002
    pace_burst: int = 16
    join_window: float = 0.05
    #: sender-side NAK aggregation: the first NAK of a round opens this
    #: window; repairs sized to the *max* shortfall seen in it are sent at
    #: close (the real-socket analogue of the paper's NAK slot discipline)
    nak_aggregation: float = 0.01
    nak_retry: RetryPolicy = field(
        default=RetryPolicy(
            retries=8, base_delay=0.25, backoff=1.6, max_delay=2.0, jitter=0.25
        )
    )
    join_retry: RetryPolicy = field(
        default=RetryPolicy(
            retries=4, base_delay=0.2, backoff=2.0, max_delay=2.0, jitter=0.25
        )
    )
    member_timeout: float = 5.0
    session_deadline: float = 60.0
    max_rounds: int = 64
    #: times a receiver re-sends SessionComplete (fire-and-forget ack)
    complete_repeats: int = 3
    #: times a receiver that learns it was ejected (``SessionFin``
    #: "ejected" after a blackout) re-joins the live session and resumes
    #: recovery from its retained ``BlockDecoder`` state instead of
    #: failing; 0 keeps the pre-churn behaviour (eject is final)
    rejoin_attempts: int = 0
    #: sender-side revive grace: a session whose only unfinished members
    #: are *ejected* lingers this long (bounded by ``session_deadline``)
    #: before finishing, so a member eclipsed by a blackout can rejoin the
    #: same session and resume from its decoder state; 0 finishes eagerly
    revive_window: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0 <= self.h <= 0xFFFF:
            raise ValueError(f"h must be in [0, 65535], got {self.h}")
        if self.k > 0xFFFF:
            raise ValueError(f"k must fit u16, got {self.k}")
        if self.packet_size < 1:
            raise ValueError(
                f"packet_size must be >= 1, got {self.packet_size}"
            )
        if self.pace_interval < 0:
            raise ValueError("pace_interval must be >= 0")
        if self.pace_burst < 1:
            raise ValueError("pace_burst must be >= 1")
        if self.join_window < 0:
            raise ValueError("join_window must be >= 0")
        if self.nak_aggregation < 0:
            raise ValueError("nak_aggregation must be >= 0")
        if self.member_timeout <= 0:
            raise ValueError("member_timeout must be positive")
        if self.session_deadline <= 0:
            raise ValueError("session_deadline must be positive")
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")
        if self.complete_repeats < 1:
            raise ValueError("complete_repeats must be >= 1")
        if self.rejoin_attempts < 0:
            raise ValueError(
                f"rejoin_attempts must be >= 0, got {self.rejoin_attempts}"
            )
        if self.revive_window < 0:
            raise ValueError(
                f"revive_window must be >= 0, got {self.revive_window}"
            )


class Pacer:
    """Sender-side pacing gate: bounded bursts, mandatory loop yields."""

    def __init__(self, interval: float, burst: int):
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.interval = interval
        self.burst = burst
        self._in_burst = 0
        #: frames gated and sleeps taken, for the throughput benchmark
        self.frames = 0
        self.sleeps = 0

    async def gate(self) -> None:
        """Await before sending one frame."""
        self.frames += 1
        self._in_burst += 1
        if self._in_burst < self.burst:
            return
        self._in_burst = 0
        self.sleeps += 1
        # interval == 0 still sleeps(0): the yield lets datagram_received
        # callbacks (NAKs!) run between bursts — backpressure by fairness
        await asyncio.sleep(self.interval * self.burst)


@dataclass
class GroupNakState:
    """Solicitation state of one incomplete transmission group."""

    attempts: int = 0
    next_due: float = 0.0
    exhausted: bool = False


class NakScheduler:
    """Deadline/backoff/budget bookkeeping for receiver-side NAKs.

    The receiver's recovery ticker calls :meth:`due` each scan; the
    scheduler answers with the groups whose deadline has passed and whose
    budget is not yet dry, advancing their backoff schedule (jitter drawn
    from a ``numpy`` generator seeded by the caller, so two runs with the
    same seed draw identical backoff sequences).  :meth:`heard` resets a
    group after any sign of life, mirroring the simulator watchdog.
    """

    def __init__(self, policy: RetryPolicy, rng: np.random.Generator):
        self.policy = policy
        self.rng = rng
        self._groups: dict[int, GroupNakState] = {}
        #: total re-NAK attempts granted (first NAK per poll not counted)
        self.retries_granted = 0
        #: groups whose budget ran dry at least once
        self.exhaustions = 0

    @property
    def tick(self) -> float:
        """Suggested scan period for the recovery ticker."""
        return max(_MIN_TICK, self.policy.base_delay / 4.0)

    def state(self, tg: int) -> GroupNakState:
        group = self._groups.get(tg)
        if group is None:
            group = self._groups[tg] = GroupNakState()
        return group

    def arm(self, tg: int, now: float) -> None:
        """Start (or restart) the deadline for ``tg`` without spending."""
        group = self.state(tg)
        group.next_due = now + self.policy.delay(1, self.rng)

    def heard(self, tg: int, now: float) -> None:
        """Any sign of life for ``tg``: reset its backoff schedule."""
        group = self._groups.get(tg)
        if group is None:
            return
        group.attempts = 0
        group.exhausted = False
        group.next_due = now + self.policy.delay(1, self.rng)

    def forget(self, tg: int) -> None:
        """The group is delivered or abandoned: stop soliciting."""
        self._groups.pop(tg, None)

    def due(self, candidates, now: float, limit: int) -> list[int]:
        """Up to ``limit`` groups from ``candidates`` due for a re-NAK.

        Each returned group's budget is spent by one attempt and its next
        deadline pushed out by the seeded backoff.  Groups whose budget is
        dry are marked ``exhausted`` and never returned again (until
        :meth:`heard` revives them).
        """
        ready: list[int] = []
        for tg in candidates:
            if len(ready) >= limit:
                break
            group = self.state(tg)
            if group.exhausted or group.next_due > now:
                continue
            if group.attempts >= self.policy.retries:
                group.exhausted = True
                self.exhaustions += 1
                continue
            group.attempts += 1
            self.retries_granted += 1
            # delay(attempt) is the wait *after* attempt N: attempts == 1
            # maps to the second interval of the schedule, and so on
            group.next_due = now + self.policy.delay(
                group.attempts + 1, self.rng
            )
            ready.append(tg)
        return ready

    def all_exhausted(self, candidates) -> bool:
        """True when every candidate group's retry budget is dry."""
        candidates = list(candidates)
        if not candidates:
            return False
        return all(self.state(tg).exhausted for tg in candidates)

    @property
    def max_attempts_spent(self) -> int:
        """Largest per-group attempt count (for budget assertions)."""
        if not self._groups:
            return 0
        return max(group.attempts for group in self._groups.values())
