"""``serve`` / ``fetch`` subcommands for ``python -m repro.experiments``.

The experiments driver routes its first positional here when it is one of
the transport verbs::

    python -m repro.experiments serve --bind 127.0.0.1:9000 --size 65536
    python -m repro.experiments fetch --connect 127.0.0.1:9000 --out got.bin

Exit-code convention (shared with the figure driver): bad arguments —
unparsable ``HOST:PORT``, unknown ``--codec``, a missing payload — print
usage and return 2; a transfer that *fails* (timeout, stall, ejection)
returns 1 with the typed failure's diagnosis on stderr; success returns 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

import numpy as np

from repro.fec.registry import codec_names

__all__ = ["main", "parse_address"]

COMMANDS = ("serve", "fetch")


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT``; raises ``ValueError`` with a usable message."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port {port_text!r} is not an integer") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} outside 0..65535")
    return host, port


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Serve a payload over the repro.net UDP transport.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="listen address (port 0 picks a free port; default %(default)s)",
    )
    payload = parser.add_mutually_exclusive_group()
    payload.add_argument(
        "--file", metavar="PATH", help="payload file to serve"
    )
    payload.add_argument(
        "--size",
        type=int,
        metavar="BYTES",
        help="serve a seeded random payload of BYTES instead of a file",
    )
    parser.add_argument("--k", type=int, default=8, help="TG size (default 8)")
    parser.add_argument(
        "--h", type=int, default=16, help="parities per TG (default 16)"
    )
    parser.add_argument(
        "--packet-size", type=int, default=1024, help="payload bytes/packet"
    )
    parser.add_argument(
        "--codec",
        choices=codec_names(),
        default="rse",
        help="erasure code (default rse)",
    )
    parser.add_argument("--seed", type=int, default=0, help="transport seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for SECONDS then exit (default: until interrupted)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live OpenMetrics on http://127.0.0.1:PORT/metrics "
        "(0 picks a free port; also enables telemetry recording)",
    )
    return parser


def _fetch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fetch",
        description="Fetch a payload from a repro.net server.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="server address",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the fetched bytes to PATH"
    )
    parser.add_argument(
        "--group", type=int, default=0, help="session group tag (default 0)"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="overall transfer deadline (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0, help="transport seed")
    return parser


def _usage_error(parser: argparse.ArgumentParser, message: str) -> int:
    parser.print_usage(sys.stderr)
    print(f"error: {message}", file=sys.stderr)
    return 2


def _run_serve(argv: list[str]) -> int:
    from repro.net.endpoints import NetServer
    from repro.net.supervision import NetConfig

    parser = _serve_parser()
    args = parser.parse_args(argv)
    try:
        bind = parse_address(args.bind)
    except ValueError as exc:
        return _usage_error(parser, f"--bind: {exc}")
    if args.file is not None:
        path = pathlib.Path(args.file)
        if not path.is_file():
            return _usage_error(parser, f"--file: {path} does not exist")
        data = path.read_bytes()
    elif args.size is not None:
        if args.size < 1:
            return _usage_error(parser, "--size must be >= 1")
        data = np.random.default_rng(args.seed).bytes(args.size)
    else:
        return _usage_error(parser, "give --file PATH or --size BYTES")
    try:
        config = NetConfig(
            k=args.k,
            h=args.h,
            packet_size=args.packet_size,
            codec=args.codec,
            seed=args.seed,
        )
    except ValueError as exc:
        return _usage_error(parser, str(exc))
    if args.metrics_port is not None:
        if not 0 <= args.metrics_port <= 65535:
            return _usage_error(parser, "--metrics-port outside 0..65535")
        from repro import obs

        obs.enable()  # a scrape endpoint without recording would be empty

    async def run() -> None:
        server = NetServer(
            data, config, bind=bind, metrics_port=args.metrics_port
        )
        host, port = await server.start()
        print(f"serving {len(data)} bytes on {host}:{port}", flush=True)
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(f"metrics on http://{mhost}:{mport}/metrics", flush=True)
        try:
            await server.serve(duration=args.duration)
        finally:
            await server.close()
            for report in server.reports:
                print(json.dumps(report.to_json()))

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _run_fetch(argv: list[str]) -> int:
    from repro.net.endpoints import fetch
    from repro.net.supervision import NetConfig
    from repro.resilience.errors import TransferError

    parser = _fetch_parser()
    args = parser.parse_args(argv)
    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        return _usage_error(parser, f"--connect: {exc}")
    if args.deadline <= 0:
        return _usage_error(parser, "--deadline must be positive")
    config = NetConfig(seed=args.seed)
    try:
        result = asyncio.run(
            fetch(
                host,
                port,
                config=config,
                group=args.group,
                deadline=args.deadline,
            )
        )
    except TransferError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result.to_json()))
    if args.out is not None:
        pathlib.Path(args.out).write_bytes(result.data)
        print(f"wrote {len(result.data)} bytes to {args.out}")
    return 0 if result.complete else 1


def main(argv: list[str]) -> int:
    """Entry point for the ``serve``/``fetch`` verbs; returns an exit code."""
    command, rest = argv[0], argv[1:]
    try:
        if command == "serve":
            return _run_serve(rest)
        if command == "fetch":
            return _run_fetch(rest)
    except SystemExit as exc:
        # argparse exits 2 on unknown flags / bad --codec; keep the driver
        # convention of *returning* the code so callers can assert on it
        return int(exc.code or 0)
    raise ValueError(f"unknown net command {command!r}")  # pragma: no cover
