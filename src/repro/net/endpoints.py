"""Asyncio ``DatagramProtocol`` endpoints: the serving and fetching sides.

:class:`NetServer` binds a UDP socket, admits joins, and multiplexes
every live :class:`~repro.net.session.SenderSession` by session id —
one server serves many concurrent transfer groups.  :func:`fetch` is the
receiving side: join handshake with seeded retry/backoff, the NP recovery
loop (NAK on poll, watchdog re-NAKs under a bounded budget), reassembly,
and completion handshake.

Failure taxonomy is shared with the simulator
(:mod:`repro.resilience.errors`): a transfer that crosses its deadline
raises :class:`TransferTimeout`; one whose solicitation budget runs dry,
or that the sender ejects, raises :class:`TransferStalled` — both carry a
:class:`~repro.resilience.report.StallReport` snapshot, so a failed fetch
is triageable from the exception alone.

Frames that fail to decode — truncated, corrupted, wrong version — are
counted (``net.frame_errors{reason}``) and dropped on both sides: the
chaos proxy can mangle anything it likes and the endpoints shrug.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.fec.block import BlockDecoder, join_stream
from repro.fec.registry import create_codec
from repro.net.session import SenderSession, SessionReport
from repro.net.supervision import NakScheduler, NetConfig
from repro.net.wire import (
    FrameError,
    TraceContextPacket,
    decode_frame,
    encode_frame,
    frame_kind,
)
from repro.obs.httpd import MetricsEndpoint
from repro.obs.tracecontext import is_trace_id, mint_trace_id
from repro.protocols.packets import (
    DataPacket,
    GroupAbort,
    Nak,
    ParityPacket,
    Poll,
    Retransmission,
    SessionAnnounce,
    SessionComplete,
    SessionFin,
    SessionJoin,
    control_intact,
    payload_symbols,
)
from repro.resilience.errors import TransferStalled, TransferTimeout
from repro.resilience.report import ReceiverStall, StallReport

__all__ = ["NetServer", "FetchResult", "fetch"]

Address = tuple

#: cap on watchdog NAKs released per scheduler tick (batch pacing)
_NAK_BATCH = 32


def _count_tx(packet) -> None:
    if obs.is_enabled():
        obs.counter("net.frames_tx", kind=frame_kind(packet)).inc()


def _count_rx(packet) -> None:
    if obs.is_enabled():
        obs.counter("net.frames_rx", kind=frame_kind(packet)).inc()


def _count_frame_error(error: FrameError) -> None:
    if obs.is_enabled():
        obs.counter("net.frame_errors", reason=error.reason).inc()


# ----------------------------------------------------------------------
# serving side
# ----------------------------------------------------------------------
class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "NetServer"):
        self.server = server
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.server._datagram(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-specific
        pass


class NetServer:
    """One UDP socket serving many concurrent transfer sessions.

    Usage::

        server = NetServer(data, config)
        host, port = await server.start()
        ...                       # receivers fetch from (host, port)
        await server.close()      # reports in server.reports
    """

    def __init__(
        self,
        data: bytes,
        config: NetConfig = NetConfig(),
        bind: Address = ("127.0.0.1", 0),
        metrics_port: int | None = None,
    ):
        self.data = data
        self.config = config
        self.bind = bind
        self.sessions: dict[int, SenderSession] = {}
        #: group tag -> session still in its gathering window
        self._gathering: dict[int, SenderSession] = {}
        self.reports: list[SessionReport] = []
        self.frame_errors = 0
        self._next_session_id = 1
        self._transport: asyncio.DatagramTransport | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = asyncio.Event()
        #: optional HTTP pull endpoint for scrapers (None = disabled;
        #: 0 = bind an ephemeral port, reported by ``metrics_address``)
        self._metrics_port = metrics_port
        self._metrics: MetricsEndpoint | None = None

    @property
    def metrics_address(self) -> Address | None:
        """Bound address of the metrics endpoint, if one is serving."""
        if self._metrics is None:
            return None
        return self._metrics.address

    @property
    def address(self) -> Address:
        if self._transport is None:
            raise RuntimeError("server not started")
        return self._transport.get_extra_info("sockname")[:2]

    async def start(self) -> Address:
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ServerProtocol(self), local_addr=self.bind
        )
        if self._metrics_port is not None:
            self._metrics = MetricsEndpoint(port=self._metrics_port)
            await self._metrics.start()
        return self.address

    async def close(self) -> None:
        self._closed.set()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._metrics is not None:
            await self._metrics.stop()
            self._metrics = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def serve(self, duration: float | None = None) -> None:
        """Block until :meth:`close` (or for ``duration`` seconds)."""
        try:
            await asyncio.wait_for(self._closed.wait(), timeout=duration)
        except asyncio.TimeoutError:
            pass

    # -- inbound ----------------------------------------------------------
    def _send(self, packet, addr: Address, session_id: int) -> None:
        if self._transport is None or self._transport.is_closing():
            return
        _count_tx(packet)
        self._transport.sendto(encode_frame(packet, session_id), addr)

    def _datagram(self, data: bytes, addr: Address) -> None:
        try:
            frame = decode_frame(data)
        except FrameError as error:
            self.frame_errors += 1
            _count_frame_error(error)
            return
        _count_rx(frame.packet)
        if isinstance(frame.packet, SessionJoin):
            self._on_join(frame.packet, addr)
            return
        session = self.sessions.get(frame.session_id)
        if session is not None:
            session.on_frame(frame.packet, addr)

    def _on_join(self, join: SessionJoin, addr: Address) -> None:
        if not control_intact(join):
            return
        # a rejoin from a member of a live session is a lost-announce
        # retry (or a churn revival), not a new session; only a refused
        # add (session already DONE) falls through to a fresh session
        for session in self.sessions.values():
            if addr in session.members and session.group == join.group:
                if session.add_member(addr, join):
                    return
        session = self._gathering.get(join.group)
        if session is not None and session.state == "gathering":
            session.add_member(addr, join)
            return
        self._spawn_session(join, addr)

    def _spawn_session(self, join: SessionJoin, addr: Address) -> None:
        session_id = self._next_session_id
        self._next_session_id += 1
        loop = asyncio.get_running_loop()
        session = SenderSession(
            session_id=session_id,
            group=join.group,
            data=self.data,
            config=self.config,
            send=lambda packet, to, sid=session_id: self._send(
                packet, to, sid
            ),
            now=loop.time,
            # deterministic: the same (seed, session id, group) always
            # stitches under the same trace
            trace_id=mint_trace_id(
                "net", self.config.seed, session_id, join.group
            ),
        )
        self.sessions[session_id] = session
        self._gathering[join.group] = session
        session.add_member(addr, join)
        task = loop.create_task(self._run_session(session))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_session(self, session: SenderSession) -> None:
        try:
            await asyncio.sleep(self.config.join_window)
            self._gathering.pop(session.group, None)
            report = await session.run()
            self.reports.append(report)
        finally:
            self._gathering.pop(session.group, None)
            self.sessions.pop(session.session_id, None)


# ----------------------------------------------------------------------
# fetching side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FetchResult:
    """A completed fetch: the bytes plus how hard the transfer fought."""

    data: bytes
    n_groups: int
    delivered_groups: int
    #: groups the sender abandoned under its round cap (data is zero-filled
    #: over their extent); empty for a fully successful transfer
    failed_groups: tuple[int, ...]
    naks_sent: int
    watchdog_retries: int
    watchdog_exhaustions: int
    frames_received: int
    frame_errors: int
    duration: float
    #: times this receiver rejoined the session after being ejected
    #: (blackout churn survived); 0 unless ``config.rejoin_attempts`` > 0
    rejoins: int = 0
    #: telemetry trace id announced by the sender session (None when the
    #: sender predates trace-context packets, or the packet was lost)
    trace_id: str | None = None

    @property
    def complete(self) -> bool:
        return not self.failed_groups

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "bytes": len(self.data),
            "n_groups": self.n_groups,
            "delivered_groups": self.delivered_groups,
            "failed_groups": list(self.failed_groups),
            "naks_sent": self.naks_sent,
            "watchdog_retries": self.watchdog_retries,
            "watchdog_exhaustions": self.watchdog_exhaustions,
            "frames_received": self.frames_received,
            "frame_errors": self.frame_errors,
            "duration": self.duration,
            "rejoins": self.rejoins,
            "complete": self.complete,
        }


class _ReceiverProtocol(asyncio.DatagramProtocol):
    """Receiver state machine: join -> recover -> reassemble -> complete."""

    def __init__(self, config: NetConfig, group: int):
        self.config = config
        self.group = group
        self.rng = np.random.default_rng(config.seed)
        self.nonce = int(self.rng.integers(0, 2**63))
        self.scheduler = NakScheduler(config.nak_retry, self.rng)
        self.transport: asyncio.DatagramTransport | None = None
        self.session_id: int | None = None
        self.announce: SessionAnnounce | None = None
        self.announced = asyncio.Event()
        self.done = asyncio.Event()
        self.codec = None
        self.decoders: dict[int, BlockDecoder] = {}
        self.delivered: set[int] = set()
        self.abandoned: set[int] = set()
        self.last_poll_round: dict[int, int] = {}
        self.max_tg_seen = -1
        self.last_stream_rx = 0.0
        self.fin_reason: str | None = None
        self.trace_id: str | None = None
        self.naks_sent = 0
        self.frames_received = 0
        self.frame_errors = 0
        self.control_corrupt_discarded = 0
        self.rejoins = 0

    # -- plumbing ---------------------------------------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport
        self.last_stream_rx = asyncio.get_running_loop().time()

    def error_received(self, exc) -> None:  # pragma: no cover - OS-specific
        pass

    def send(self, packet) -> None:
        if self.transport is None or self.transport.is_closing():
            return
        _count_tx(packet)
        self.transport.sendto(
            encode_frame(packet, self.session_id or 0)
        )

    # -- inbound ----------------------------------------------------------
    def datagram_received(self, data: bytes, addr: Address) -> None:
        try:
            frame = decode_frame(data)
        except FrameError as error:
            self.frame_errors += 1
            _count_frame_error(error)
            return
        self.frames_received += 1
        _count_rx(frame.packet)
        packet = frame.packet
        now = asyncio.get_running_loop().time()
        if isinstance(packet, SessionAnnounce):
            self._on_announce(packet, frame.session_id)
            return
        if self.session_id is None or frame.session_id != self.session_id:
            return
        if isinstance(packet, (DataPacket, ParityPacket, Retransmission)):
            self._on_payload(packet, now)
        elif isinstance(packet, Poll):
            if not control_intact(packet):
                self.control_corrupt_discarded += 1
                return
            self._on_poll(packet, now)
        elif isinstance(packet, GroupAbort):
            if not control_intact(packet):
                self.control_corrupt_discarded += 1
                return
            self._on_abort(packet)
        elif isinstance(packet, SessionFin):
            if not control_intact(packet):
                self.control_corrupt_discarded += 1
                return
            self.fin_reason = packet.reason
            self.done.set()
        elif isinstance(packet, TraceContextPacket):
            if self.trace_id is None and is_trace_id(packet.trace_id):
                self.trace_id = packet.trace_id

    def _on_announce(self, announce: SessionAnnounce, session_id: int) -> None:
        if not control_intact(announce):
            self.control_corrupt_discarded += 1
            return
        if self.announce is not None:
            return  # duplicate announce (join retry crossed the reply)
        self.announce = announce
        self.session_id = session_id
        self.codec = create_codec(announce.codec, announce.k, announce.h)
        self.announced.set()

    def _decoder(self, tg: int) -> BlockDecoder:
        decoder = self.decoders.get(tg)
        if decoder is None:
            decoder = self.decoders[tg] = BlockDecoder(
                self.announce.k, self.codec
            )
        return decoder

    def _on_payload(self, packet, now: float) -> None:
        tg = packet.tg
        if not 0 <= tg < self.announce.n_groups:
            return
        self.last_stream_rx = now
        if tg > self.max_tg_seen:
            # the stream has reached tg: every earlier group is in play,
            # so arm solicitation deadlines for any still-missing ones
            for behind in range(self.max_tg_seen + 1, tg + 1):
                if behind not in self.delivered and behind not in self.abandoned:
                    self.scheduler.arm(behind, now)
            self.max_tg_seen = tg
        if tg in self.delivered or tg in self.abandoned:
            return
        self.scheduler.heard(tg, now)
        # Hand the payload to the decoder as a zero-copy symbol view when
        # the field is byte-aligned; the codec's ndarray path skips both
        # the bytes round-trip and (for full-range fields) the value scan.
        payload = packet.payload
        if self.codec.field.m in (8, 16):
            payload = payload_symbols(packet, self.codec.field)
        if self._decoder(tg).add(packet.index, payload):
            self.delivered.add(tg)
            self.scheduler.forget(tg)
            self._check_done()

    def _on_poll(self, poll: Poll, now: float) -> None:
        tg = poll.tg
        if not 0 <= tg < self.announce.n_groups:
            return
        self.last_stream_rx = now
        self.last_poll_round[tg] = poll.round
        if tg in self.delivered or tg in self.abandoned:
            return
        missing = self._missing(tg)
        if missing > 0:
            # the poll-solicited NAK is free (not billed to the watchdog
            # budget); the deadline restarts behind it
            self.naks_sent += 1
            self.send(Nak(tg, missing, poll.round))
            self.scheduler.heard(tg, now)

    def _on_abort(self, abort: GroupAbort) -> None:
        tg = abort.tg
        if not 0 <= tg < self.announce.n_groups:
            return
        if tg in self.delivered:
            return
        self.abandoned.add(tg)
        self.scheduler.forget(tg)
        self._check_done()

    # -- recovery loop ----------------------------------------------------
    def _missing(self, tg: int) -> int:
        decoder = self.decoders.get(tg)
        if decoder is None:
            return self.announce.k
        return decoder.missing

    def _candidates(self, now: float) -> list[int]:
        """Groups worth soliciting right now.

        Groups the stream has visibly reached (``<= max_tg_seen``) are
        always candidates; the rest only once the stream has gone silent —
        NAKing group 90 while the sender is still streaming group 10 would
        just burn budget.
        """
        if self.announce is None:
            return []
        stream_silent = (
            now - self.last_stream_rx > self.config.nak_retry.base_delay
        )
        out = []
        for tg in range(self.announce.n_groups):
            if tg in self.delivered or tg in self.abandoned:
                continue
            if tg <= self.max_tg_seen or stream_silent:
                out.append(tg)
        return out

    def solicit(self, now: float) -> list[int]:
        """One watchdog tick: fire due re-NAKs; returns the groups hit."""
        candidates = self._candidates(now)
        due = self.scheduler.due(candidates, now, _NAK_BATCH)
        for tg in due:
            self.naks_sent += 1
            if obs.is_enabled():
                obs.counter("net.nak_retries").inc()
            self.send(Nak(tg, self._missing(tg), self.last_poll_round.get(tg, 1)))
        return due

    def budget_exhausted(self, now: float) -> bool:
        candidates = self._candidates(now)
        return bool(candidates) and self.scheduler.all_exhausted(candidates)

    def rejoin(self, now: float) -> None:
        """Re-enter the session after an ejection (churn recovery).

        The decoders keep everything received before the blackout, so
        recovery resumes from the retained :class:`BlockDecoder` state —
        only the still-missing groups are re-solicited, never the whole
        transfer.  The NAK budget of those groups is reset: the ejection
        was the *network's* fault, not evidence the sender is gone.
        """
        self.rejoins += 1
        if obs.is_enabled():
            obs.counter("net.rejoins").inc()
        self.done.clear()
        self.fin_reason = None
        for tg in self.missing_groups():
            if tg not in self.abandoned:
                self.scheduler.state(tg)  # ensure tracked, then reset
                self.scheduler.heard(tg, now)
        self.send(SessionJoin(group=self.group, nonce=self.nonce))

    def _check_done(self) -> None:
        if self.announce is None:
            return
        settled = len(self.delivered) + len(self.abandoned)
        if settled >= self.announce.n_groups:
            self.done.set()

    # -- reassembly -------------------------------------------------------
    def assemble(self) -> bytes:
        announce = self.announce
        groups: list[list[bytes]] = []
        blank = [b"\x00" * announce.packet_size] * announce.k
        for tg in range(announce.n_groups):
            if tg in self.delivered:
                groups.append(self.decoders[tg].reconstruct())
            else:
                groups.append(blank)
        return join_stream(groups, announce.total_length)

    def missing_groups(self) -> tuple[int, ...]:
        if self.announce is None:
            return ()
        return tuple(
            tg
            for tg in range(self.announce.n_groups)
            if tg not in self.delivered
        )


async def fetch(
    host: str,
    port: int,
    config: NetConfig = NetConfig(),
    group: int = 0,
    deadline: float = 30.0,
) -> FetchResult:
    """Fetch one transfer from a :class:`NetServer` at ``(host, port)``.

    Raises :class:`TransferTimeout` when ``deadline`` elapses and
    :class:`TransferStalled` when the join or NAK solicitation budget runs
    dry or the sender ejects this receiver — both with a
    :class:`StallReport` attached.
    """
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: _ReceiverProtocol(config, group), remote_addr=(host, port)
    )
    start = loop.time()
    try:
        with obs.span("net.fetch", side="receiver", group=group) as sp:
            await _join(protocol, config, start, deadline)
            await _recover(protocol, config, start, deadline)
            # the trace id arrives mid-span (behind the announce), so it
            # is attached to the already-open span rather than passed in
            if protocol.trace_id is not None and hasattr(sp, "attrs"):
                sp.attrs.setdefault("trace", protocol.trace_id)
            data = protocol.assemble()
            await _complete(protocol, config)
    finally:
        transport.close()
    duration = loop.time() - start
    if obs.is_enabled() and duration > 0:
        obs.gauge("net.goodput_bytes_per_s").observe(len(data) / duration)
    return FetchResult(
        data=data,
        n_groups=protocol.announce.n_groups,
        delivered_groups=len(protocol.delivered),
        failed_groups=tuple(sorted(protocol.abandoned)),
        naks_sent=protocol.naks_sent,
        watchdog_retries=protocol.scheduler.retries_granted,
        watchdog_exhaustions=protocol.scheduler.exhaustions,
        frames_received=protocol.frames_received,
        frame_errors=protocol.frame_errors,
        duration=duration,
        rejoins=protocol.rejoins,
        trace_id=protocol.trace_id,
    )


def _stall_report(
    protocol: _ReceiverProtocol, config: NetConfig, start: float
) -> StallReport:
    loop = asyncio.get_running_loop()
    return StallReport(
        protocol="net-np",
        sim_time=loop.time() - start,
        events_dispatched=protocol.frames_received,
        pending_events=0,
        receivers=(
            ReceiverStall(
                receiver_id=0,
                missing_groups=protocol.missing_groups(),
                last_progress_time=max(0.0, protocol.last_stream_rx - start),
                watchdog_retries=protocol.scheduler.retries_granted,
                watchdog_exhaustions=protocol.scheduler.exhaustions,
                crashes=0,
            ),
        ),
        abandoned_groups=tuple(sorted(protocol.abandoned)),
        injected_faults={},
        seed=config.seed,
        fault_plan=None,
    )


async def _join(
    protocol: _ReceiverProtocol,
    config: NetConfig,
    start: float,
    deadline: float,
) -> None:
    """Solicit membership under the join retry budget."""
    loop = asyncio.get_running_loop()
    policy = config.join_retry
    join = SessionJoin(group=protocol.group, nonce=protocol.nonce)
    for attempt in range(1, policy.retries + 2):
        protocol.send(join)
        wait = min(
            policy.delay(attempt, protocol.rng),
            max(0.01, deadline - (loop.time() - start)),
        )
        try:
            await asyncio.wait_for(protocol.announced.wait(), timeout=wait)
            return
        except asyncio.TimeoutError:
            if loop.time() - start > deadline:
                raise TransferTimeout(
                    "net fetch: no announce before the deadline",
                    _stall_report(protocol, config, start),
                ) from None
    raise TransferStalled(
        f"net fetch: join solicitation exhausted after "
        f"{policy.retries + 1} attempts",
        _stall_report(protocol, config, start),
    )


async def _recover(
    protocol: _ReceiverProtocol,
    config: NetConfig,
    start: float,
    deadline: float,
) -> None:
    """Drive the NAK watchdog until delivery, ejection or exhaustion.

    An ``ejected`` fin is terminal only once ``config.rejoin_attempts``
    is spent: until then the receiver re-joins the live session and
    resumes from its retained decoder state — the sender revives the
    member and serves repairs for whatever is still missing.
    """
    loop = asyncio.get_running_loop()
    tick = protocol.scheduler.tick
    rejoins_left = config.rejoin_attempts
    while True:
        while not protocol.done.is_set():
            now = loop.time()
            if now - start > deadline:
                raise TransferTimeout(
                    f"net fetch: deadline of {deadline}s elapsed with "
                    f"{len(protocol.missing_groups())} groups missing",
                    _stall_report(protocol, config, start),
                )
            protocol.solicit(now)
            if protocol.budget_exhausted(now):
                raise TransferStalled(
                    "net fetch: NAK retry budget exhausted with the stream "
                    "silent",
                    _stall_report(protocol, config, start),
                )
            try:
                await asyncio.wait_for(protocol.done.wait(), timeout=tick)
            except asyncio.TimeoutError:
                pass
        if protocol.fin_reason == "ejected" and rejoins_left > 0:
            rejoins_left -= 1
            protocol.rejoin(loop.time())
            continue
        if protocol.fin_reason in ("ejected", "aborted"):
            raise TransferStalled(
                f"net fetch: sender closed the session "
                f"({protocol.fin_reason})",
                _stall_report(protocol, config, start),
            )
        return


async def _complete(protocol: _ReceiverProtocol, config: NetConfig) -> None:
    """Tell the sender we are done; tolerate a lost fin."""
    complete = SessionComplete(
        delivered=len(protocol.delivered), failed=len(protocol.abandoned)
    )
    protocol.done.clear()
    protocol.fin_reason = None
    for _ in range(config.complete_repeats):
        protocol.send(complete)
        try:
            await asyncio.wait_for(protocol.done.wait(), timeout=0.1)
        except asyncio.TimeoutError:
            continue
        if protocol.fin_reason == "complete":
            return
    # fin never arrived — the data is delivered regardless; the sender's
    # member timeout will reap us
