"""Byte-level wire codec for every `repro.protocols.packets` type.

Frame layout (network byte order)::

    offset  size  field
    0       2     magic  b"PB"          (parity-based)
    2       1     version (currently 1)
    3       1     packet-type discriminator
    4       8     session id (uint64)
    12      ...   type-specific body
    -4      4     CRC-32 over everything before it (header + body)

The decoder is *strict by construction*: any frame that is truncated,
carries the wrong magic, an unsupported version, an unknown type, a CRC
mismatch, or a body that does not parse to exactly the declared shape is
rejected with a typed :class:`FrameError` naming the reason — never a bare
``struct.error``/``IndexError``/``UnicodeDecodeError``.  The fuzz suite in
``tests/property/test_prop_wire.py`` holds the codec to that contract over
arbitrary byte strings.

Checksum semantics at the frame boundary: the whole-frame CRC subsumes the
per-packet checksums, so bodies do not carry them.  ``decode_frame``
re-stamps — payload packets get ``checksum_of(payload)``, control packets
auto-stamp at construction — so a decoded packet always verifies intact
(frames that were damaged on the wire never decode at all).

Forward compatibility lever: the version byte is load-bearing and frozen
at 1; *new control surface* is added as new type discriminators instead.
A v1-only decoder that predates a type treats such frames as
``unknown_type`` — counted and dropped by every endpoint, never fatal —
so old and new peers interoperate, each simply ignoring what it does not
speak.  :class:`TraceContextPacket` (type 13, telemetry trace ids) is the
first use of this lever; see docs/PROTOCOL.md.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.protocols.layered import SlotNak
from repro.protocols.packets import (
    DataPacket,
    GroupAbort,
    Nak,
    ParityPacket,
    Poll,
    Retransmission,
    SelectiveNak,
    SessionAnnounce,
    SessionComplete,
    SessionFin,
    SessionJoin,
    checksum_of,
)

__all__ = [
    "FrameError",
    "Frame",
    "MAGIC",
    "VERSION",
    "MAX_SESSION_ID",
    "TraceContextPacket",
    "encode_frame",
    "decode_frame",
    "frame_kind",
    "wire_types",
]

MAGIC = b"PB"
VERSION = 1

_HEADER = struct.Struct("!2sBBQ")  # magic, version, type, session id
_CRC = struct.Struct("!I")
_MIN_FRAME = _HEADER.size + _CRC.size

MAX_SESSION_ID = 2**64 - 1
#: codec registry names are short; anything longer is a malformed frame
_MAX_CODEC_NAME = 64


class FrameError(ValueError):
    """A frame could not be encoded or decoded; ``reason`` says why.

    Decode reasons: ``truncated``, ``bad_magic``, ``bad_version``,
    ``crc_mismatch``, ``unknown_type``, ``malformed``.  Encode reasons:
    ``unencodable`` (unknown packet class), ``overflow`` (a field exceeds
    its wire width).
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass(frozen=True)
class Frame:
    """A decoded frame: the session id and the packet it carried."""

    session_id: int
    packet: Any


@dataclass(frozen=True)
class TraceContextPacket:
    """Telemetry control packet: the sender session's 32-hex trace id.

    Sent alongside every session announce so both sides of a transfer
    stitch their spans under one trace (`repro.obs.tracecontext`).  Pure
    telemetry: losing it (or a v1-only peer dropping it as
    ``unknown_type``) never affects data transfer.
    """

    trace_id: str


# ----------------------------------------------------------------------
# per-type body codecs
# ----------------------------------------------------------------------
_U32 = struct.Struct("!I")
_DATA = struct.Struct("!III")  # tg, index, generation
_PARITY = struct.Struct("!II")  # tg, index
_POLL = struct.Struct("!III")  # tg, sent, round
_NAK = struct.Struct("!III")  # tg, needed, round
_SNAK = struct.Struct("!IIH")  # tg, round, count (then count * u32)
_ABORT = struct.Struct("!II")  # tg, round
_JOIN = struct.Struct("!IQ")  # group, nonce
_ANNOUNCE = struct.Struct("!HHIIQ")  # k, h, packet_size, n_groups, length
_COMPLETE = struct.Struct("!II")  # delivered, failed
_FIN = struct.Struct("!B")  # reason code


def _pack(fmt: struct.Struct, *values: int) -> bytes:
    try:
        return fmt.pack(*values)
    except struct.error as exc:
        raise FrameError("overflow", str(exc)) from exc


def _exact(fmt: struct.Struct, body: bytes) -> tuple:
    if len(body) != fmt.size:
        raise FrameError(
            "malformed", f"body is {len(body)} bytes, expected {fmt.size}"
        )
    return fmt.unpack(body)


def _prefix(fmt: struct.Struct, body: bytes) -> tuple:
    if len(body) < fmt.size:
        raise FrameError(
            "malformed", f"body is {len(body)} bytes, needs >= {fmt.size}"
        )
    return fmt.unpack_from(body)


def _encode_data(p: DataPacket) -> bytes:
    return _pack(_DATA, p.tg, p.index, p.generation) + p.payload


def _decode_data(body: bytes) -> DataPacket:
    tg, index, generation = _prefix(_DATA, body)
    payload = body[_DATA.size:]
    return DataPacket(tg, index, payload, generation, checksum_of(payload))


def _encode_parity(p: ParityPacket) -> bytes:
    return _pack(_PARITY, p.tg, p.index) + p.payload


def _decode_parity(body: bytes) -> ParityPacket:
    tg, index = _prefix(_PARITY, body)
    payload = body[_PARITY.size:]
    return ParityPacket(tg, index, payload, checksum_of(payload))


def _encode_retransmission(p: Retransmission) -> bytes:
    return _pack(_PARITY, p.tg, p.index) + p.payload


def _decode_retransmission(body: bytes) -> Retransmission:
    tg, index = _prefix(_PARITY, body)
    payload = body[_PARITY.size:]
    return Retransmission(tg, index, payload, checksum_of(payload))


def _encode_poll(p: Poll) -> bytes:
    return _pack(_POLL, p.tg, p.sent, p.round)


def _decode_poll(body: bytes) -> Poll:
    return Poll(*_exact(_POLL, body))


def _encode_nak(p: Nak) -> bytes:
    return _pack(_NAK, p.tg, p.needed, p.round)


def _decode_nak(body: bytes) -> Nak:
    return Nak(*_exact(_NAK, body))


def _encode_selective_nak(p: SelectiveNak) -> bytes:
    head = _pack(_SNAK, p.tg, p.round, len(p.missing))
    return head + b"".join(_pack(_U32, index) for index in p.missing)


def _decode_selective_nak(body: bytes) -> SelectiveNak:
    tg, round_index, count = _prefix(_SNAK, body)
    rest = body[_SNAK.size:]
    if len(rest) != count * _U32.size:
        raise FrameError(
            "malformed",
            f"selective NAK declares {count} indices, carries "
            f"{len(rest)} trailing bytes",
        )
    missing = tuple(
        _U32.unpack_from(rest, offset)[0]
        for offset in range(0, len(rest), _U32.size)
    )
    return SelectiveNak(tg, missing, round_index)


def _encode_slot_nak(p: SlotNak) -> bytes:
    head = _pack(_SNAK, p.block, p.round, len(p.slots))
    return head + b"".join(_pack(_U32, slot) for slot in p.slots)


def _decode_slot_nak(body: bytes) -> SlotNak:
    block, round_index, count = _prefix(_SNAK, body)
    rest = body[_SNAK.size:]
    if len(rest) != count * _U32.size:
        raise FrameError(
            "malformed",
            f"slot NAK declares {count} slots, carries {len(rest)} "
            f"trailing bytes",
        )
    slots = tuple(
        _U32.unpack_from(rest, offset)[0]
        for offset in range(0, len(rest), _U32.size)
    )
    return SlotNak(block, slots, round_index)


def _encode_abort(p: GroupAbort) -> bytes:
    return _pack(_ABORT, p.tg, p.round)


def _decode_abort(body: bytes) -> GroupAbort:
    return GroupAbort(*_exact(_ABORT, body))


def _encode_join(p: SessionJoin) -> bytes:
    return _pack(_JOIN, p.group, p.nonce)


def _decode_join(body: bytes) -> SessionJoin:
    group, nonce = _exact(_JOIN, body)
    return SessionJoin(group=group, nonce=nonce)


def _encode_announce(p: SessionAnnounce) -> bytes:
    try:
        name = p.codec.encode("ascii")
    except UnicodeEncodeError as exc:
        raise FrameError("overflow", f"codec name {p.codec!r}") from exc
    if len(name) > _MAX_CODEC_NAME:
        raise FrameError("overflow", f"codec name {p.codec!r} too long")
    return (
        _pack(_ANNOUNCE, p.k, p.h, p.packet_size, p.n_groups, p.total_length)
        + name
    )


def _decode_announce(body: bytes) -> SessionAnnounce:
    k, h, packet_size, n_groups, total_length = _prefix(_ANNOUNCE, body)
    name = body[_ANNOUNCE.size:]
    if len(name) > _MAX_CODEC_NAME:
        raise FrameError("malformed", "codec name too long")
    try:
        codec = name.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FrameError("malformed", "codec name not ascii") from exc
    return SessionAnnounce(
        k=k,
        h=h,
        packet_size=packet_size,
        n_groups=n_groups,
        total_length=total_length,
        codec=codec,
    )


def _encode_complete(p: SessionComplete) -> bytes:
    return _pack(_COMPLETE, p.delivered, p.failed)


def _decode_complete(body: bytes) -> SessionComplete:
    delivered, failed = _exact(_COMPLETE, body)
    return SessionComplete(delivered=delivered, failed=failed)


#: a trace id is exactly 16 raw bytes on the wire (32 hex chars in code)
_TRACE_ID_BYTES = 16


def _encode_trace(p: TraceContextPacket) -> bytes:
    try:
        raw = bytes.fromhex(p.trace_id)
    except (ValueError, TypeError) as exc:
        raise FrameError("overflow", f"trace id {p.trace_id!r}") from exc
    if len(raw) != _TRACE_ID_BYTES:
        raise FrameError("overflow", f"trace id {p.trace_id!r} wrong width")
    return raw


def _decode_trace(body: bytes) -> TraceContextPacket:
    if len(body) != _TRACE_ID_BYTES:
        raise FrameError(
            "malformed",
            f"trace body is {len(body)} bytes, expected {_TRACE_ID_BYTES}",
        )
    return TraceContextPacket(body.hex())


def _encode_fin(p: SessionFin) -> bytes:
    return _pack(_FIN, SessionFin.REASONS.index(p.reason))


def _decode_fin(body: bytes) -> SessionFin:
    (code,) = _exact(_FIN, body)
    if code >= len(SessionFin.REASONS):
        raise FrameError("malformed", f"unknown fin reason code {code}")
    return SessionFin(SessionFin.REASONS[code])


#: type discriminator -> (packet class, encoder, decoder)
_TYPES: dict[int, tuple[type, Callable, Callable]] = {
    1: (DataPacket, _encode_data, _decode_data),
    2: (ParityPacket, _encode_parity, _decode_parity),
    3: (Retransmission, _encode_retransmission, _decode_retransmission),
    4: (Poll, _encode_poll, _decode_poll),
    5: (Nak, _encode_nak, _decode_nak),
    6: (SelectiveNak, _encode_selective_nak, _decode_selective_nak),
    7: (GroupAbort, _encode_abort, _decode_abort),
    8: (SlotNak, _encode_slot_nak, _decode_slot_nak),
    9: (SessionJoin, _encode_join, _decode_join),
    10: (SessionAnnounce, _encode_announce, _decode_announce),
    11: (SessionComplete, _encode_complete, _decode_complete),
    12: (SessionFin, _encode_fin, _decode_fin),
    13: (TraceContextPacket, _encode_trace, _decode_trace),
}

_TYPE_OF_CLASS = {cls: type_id for type_id, (cls, _, _) in _TYPES.items()}
_KIND_OF_CLASS = {
    DataPacket: "data",
    ParityPacket: "parity",
    Retransmission: "retransmission",
    Poll: "poll",
    Nak: "nak",
    SelectiveNak: "nak",
    SlotNak: "nak",
    GroupAbort: "abort",
    SessionJoin: "join",
    SessionAnnounce: "announce",
    SessionComplete: "complete",
    SessionFin: "fin",
    TraceContextPacket: "trace",
}


def wire_types() -> tuple[type, ...]:
    """Every packet class the codec can carry (for conformance tests)."""
    return tuple(cls for cls, _, _ in _TYPES.values())


def frame_kind(packet: Any) -> str:
    """Short metric label for a packet (``data``, ``nak``, ``fin``, ...)."""
    return _KIND_OF_CLASS.get(type(packet), "unknown")


def encode_frame(packet: Any, session_id: int = 0) -> bytes:
    """Serialize ``packet`` into a self-delimiting, CRC-protected frame."""
    if not 0 <= session_id <= MAX_SESSION_ID:
        raise FrameError("overflow", f"session id {session_id}")
    type_id = _TYPE_OF_CLASS.get(type(packet))
    if type_id is None:
        raise FrameError(
            "unencodable", f"no wire mapping for {type(packet).__name__}"
        )
    _, encoder, _ = _TYPES[type_id]
    head = _HEADER.pack(MAGIC, VERSION, type_id, session_id)
    frame = head + encoder(packet)
    return frame + _CRC.pack(zlib.crc32(frame))


def decode_frame(data: bytes) -> Frame:
    """Parse one frame; raises :class:`FrameError` on anything suspect."""
    if len(data) < _MIN_FRAME:
        raise FrameError("truncated", f"{len(data)} bytes < {_MIN_FRAME}")
    magic, version, type_id, session_id = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError("bad_magic", repr(magic))
    if version != VERSION:
        raise FrameError("bad_version", str(version))
    (stored_crc,) = _CRC.unpack_from(data, len(data) - _CRC.size)
    if zlib.crc32(data[: -_CRC.size]) != stored_crc:
        raise FrameError("crc_mismatch", f"stored {stored_crc:#010x}")
    entry = _TYPES.get(type_id)
    if entry is None:
        raise FrameError("unknown_type", str(type_id))
    _, _, decoder = entry
    body = data[_HEADER.size: -_CRC.size]
    try:
        packet = decoder(body)
    except FrameError:
        raise
    except Exception as exc:  # defensive: decoder bugs stay typed
        raise FrameError("malformed", f"{type(exc).__name__}: {exc}") from exc
    return Frame(session_id, packet)
