"""`repro.net` — the real asyncio UDP transport for the NP recovery loop.

The simulator (`repro.sim` + `repro.protocols`) models the paper's
protocols under a controlled clock; this package runs the same packet
vocabulary over real datagram sockets:

* :mod:`repro.net.wire` — byte-level frame codec: versioned header, type
  discriminator, CRC-32 over the whole frame, strict decode that rejects
  garbage with a typed :class:`~repro.net.wire.FrameError`.
* :mod:`repro.net.supervision` — :class:`~repro.net.supervision.NetConfig`
  plus the robustness machinery: pacing/backpressure, per-group NAK
  solicitation with seeded exponential backoff and a bounded retry budget
  (the same :class:`~repro.campaign.retry.RetryPolicy` vocabulary the
  campaign runner uses).
* :mod:`repro.net.session` — per-session sender state machine, multiplexed
  by session id so one server serves many concurrent transfer groups.
* :mod:`repro.net.endpoints` — the asyncio ``DatagramProtocol`` endpoints:
  :class:`~repro.net.endpoints.NetServer` and
  :func:`~repro.net.endpoints.fetch`.
* :mod:`repro.net.chaos` — a seeded chaos datagram proxy for
  deterministic robustness testing without a real WAN.

Failures reuse the simulator's typed taxonomy
(:class:`~repro.resilience.errors.TransferTimeout` /
:class:`~repro.resilience.errors.TransferStalled`, each carrying a
:class:`~repro.resilience.report.StallReport`).  See DESIGN.md section 14
and docs/PROTOCOL.md for the wire format and session state machines.
"""

from repro.net.chaos import ChaosPlan, ChaosProxy, FaultSchedule, MemberChurn
from repro.net.endpoints import FetchResult, NetServer, fetch
from repro.net.session import SenderSession, SessionReport
from repro.net.supervision import NakScheduler, NetConfig, Pacer
from repro.net.wire import (
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
    frame_kind,
)

__all__ = [
    "ChaosPlan",
    "ChaosProxy",
    "FaultSchedule",
    "FetchResult",
    "Frame",
    "FrameError",
    "MemberChurn",
    "NakScheduler",
    "NetConfig",
    "NetServer",
    "Pacer",
    "SenderSession",
    "SessionReport",
    "decode_frame",
    "encode_frame",
    "fetch",
    "frame_kind",
]
