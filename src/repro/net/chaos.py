"""Seeded chaos datagram proxy: socket-layer fault injection.

The simulator's fault layer (:mod:`repro.resilience.faults`) mangles
packets inside the event loop; this module does the same to *real UDP
datagrams* so the transport's robustness is testable without a WAN.  A
:class:`ChaosProxy` sits between receivers and a
:class:`~repro.net.endpoints.NetServer`::

    receiver  <->  proxy (listen)  <->  server (upstream)

and applies seeded faults per direction — ``forward`` is
server-to-receiver (data, polls, fins), ``backward`` is
receiver-to-server (joins, NAKs, completes):

* **loss** — the datagram vanishes;
* **corrupt** — one byte is flipped (the frame CRC turns this into a
  counted drop at the endpoint);
* **duplicate** — the datagram is delivered twice;
* **reorder** — the datagram is held back ``reorder_delay`` seconds so
  later traffic overtakes it;
* **jitter** — a uniform random extra delay;
* **blackouts** — wall-clock windows (seconds since proxy start) during
  which the direction is silently absorbed; a backward blackout is the
  paper's nightmare scenario of a feedback channel going dark;
* **member churn** — per-member eclipse windows (:class:`MemberChurn`):
  both directions of one client leg go dark while that member's
  availability schedule says its machine (or rack) is down, the
  socket-layer realisation of :mod:`repro.sim.failure` schedules.

Determinism: every fault decision comes from a :class:`FaultSchedule`
seeded by ``(plan.seed, direction)`` that draws a *fixed* number of
variates per datagram, so the fault verdict for the N-th datagram of a
direction is a pure function of ``(seed, direction, N)`` — same seed,
same schedule, regardless of which faults actually fire.  (End-to-end
*timing* still belongs to the OS; tests assert schedule determinism
directly and transfer-level invariants elsewhere.)

The proxy is payload-agnostic: it never decodes frames, so it exercises
the endpoints' strict decoders with genuine garbage.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro import obs

__all__ = [
    "ChaosPlan",
    "FaultDecision",
    "FaultSchedule",
    "MemberChurn",
    "ChaosProxy",
]

Address = tuple

_DIRECTIONS = ("forward", "backward")


@dataclass(frozen=True)
class ChaosPlan:
    """Fault mix for one proxy direction; all probabilities independent."""

    seed: int = 0
    loss: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    #: how long a reordered datagram is held back (seconds)
    reorder_delay: float = 0.02
    #: max uniform extra delay applied to every surviving datagram
    jitter: float = 0.0
    #: absolute silence windows, seconds since proxy start: ((lo, hi), ...)
    blackouts: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("loss", "corrupt", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.reorder_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be >= 0")
        for window in self.blackouts:
            lo, hi = window
            if not 0 <= lo < hi:
                raise ValueError(f"bad blackout window {window}")

    def in_blackout(self, elapsed: float) -> bool:
        return any(lo <= elapsed < hi for lo, hi in self.blackouts)


@dataclass(frozen=True)
class MemberChurn:
    """Per-member eclipse windows: the proxy's availability-churn mode.

    Direction blackouts (:attr:`ChaosPlan.blackouts`) silence a whole
    direction; ``MemberChurn`` instead eclipses *individual members* —
    both directions of one client leg go dark during that member's
    windows, which is what a receiver's machine (or its rack) being down
    looks like from the network.  ``windows[i]`` are the ``(lo, hi)``
    wall-clock windows (seconds since proxy start) of the ``i``-th client
    leg in arrival order; members beyond the tuple are never eclipsed.
    Build the windows from an availability schedule with
    :func:`repro.sim.failure.member_blackout_windows`.
    """

    windows: tuple[tuple[tuple[float, float], ...], ...] = ()

    def __post_init__(self) -> None:
        normalised = tuple(
            tuple((float(lo), float(hi)) for lo, hi in member)
            for member in self.windows
        )
        object.__setattr__(self, "windows", normalised)
        for member in self.windows:
            for lo, hi in member:
                if not 0 <= lo < hi:
                    raise ValueError(f"bad churn window ({lo}, {hi})")

    def in_blackout(self, member: int, elapsed: float) -> bool:
        if not 0 <= member < len(self.windows):
            return False
        return any(
            lo <= elapsed < hi for lo, hi in self.windows[member]
        )


@dataclass(frozen=True)
class FaultDecision:
    """The verdict for one datagram."""

    drop: bool = False
    #: byte position to flip, None for no corruption
    corrupt_at: int | None = None
    duplicate: bool = False
    #: seconds to hold the datagram back (reorder + jitter)
    delay: float = 0.0


class FaultSchedule:
    """Deterministic per-datagram fault decisions for one direction.

    Draws exactly six variates per :meth:`decide` call whatever the
    outcome, so decision ``N`` depends only on ``(plan.seed, direction,
    N)`` — the property the determinism smoke test pins.
    """

    def __init__(self, plan: ChaosPlan, direction: str):
        if direction not in _DIRECTIONS:
            raise ValueError(f"direction must be one of {_DIRECTIONS}")
        self.plan = plan
        self.direction = direction
        self.rng = np.random.default_rng(
            [plan.seed, _DIRECTIONS.index(direction)]
        )
        self.ordinal = 0

    def decide(self, size: int) -> FaultDecision:
        """Verdict for the next datagram (of ``size`` bytes)."""
        plan = self.plan
        draws = self.rng.random(5)
        position = int(self.rng.integers(0, max(1, size)))
        self.ordinal += 1
        if draws[0] < plan.loss:
            return FaultDecision(drop=True)
        delay = 0.0
        if draws[2] < plan.reorder:
            delay += plan.reorder_delay
        if plan.jitter > 0:
            delay += draws[4] * plan.jitter
        return FaultDecision(
            corrupt_at=position if draws[1] < plan.corrupt else None,
            duplicate=draws[3] < plan.duplicate,
            delay=delay,
        )


class _ListenProtocol(asyncio.DatagramProtocol):
    """Receiver-facing socket: one for the whole proxy."""

    def __init__(self, proxy: "ChaosProxy"):
        self.proxy = proxy
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.proxy._from_client(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-specific
        pass


class _UpstreamProtocol(asyncio.DatagramProtocol):
    """Server-facing socket: one per client, so the server can tell
    receivers apart by source address."""

    def __init__(self, proxy: "ChaosProxy", client: Address):
        self.proxy = proxy
        self.client = client
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.proxy._from_upstream(data, self.client)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-specific
        pass


@dataclass
class _ClientLeg:
    #: arrival order of this client, indexing :attr:`MemberChurn.windows`
    index: int = 0
    transport: asyncio.DatagramTransport | None = None
    #: datagrams that arrived while the upstream socket was still connecting
    pending: list[bytes] = field(default_factory=list)


class ChaosProxy:
    """A lossy, corrupting, reordering UDP hop between fetchers and server.

    Usage::

        proxy = ChaosProxy(server_addr, forward=plan, backward=plan)
        host, port = await proxy.start()
        ...                        # receivers fetch from (host, port)
        await proxy.close()        # fault counters in proxy.stats
    """

    def __init__(
        self,
        upstream: Address,
        forward: ChaosPlan | None = None,
        backward: ChaosPlan | None = None,
        churn: MemberChurn | None = None,
    ):
        self.upstream = tuple(upstream)
        self.churn = churn
        self.plans = {
            "forward": forward or ChaosPlan(),
            "backward": backward or ChaosPlan(),
        }
        self.schedules = {
            direction: FaultSchedule(plan, direction)
            for direction, plan in self.plans.items()
        }
        self.stats: dict[str, int] = {}
        self._listen: asyncio.DatagramTransport | None = None
        self._legs: dict[Address, _ClientLeg] = {}
        self._tasks: set[asyncio.Task] = set()
        self._handles: list[asyncio.TimerHandle] = []
        self._started_at = 0.0

    def _count(self, direction: str, fault: str) -> None:
        key = f"{direction}.{fault}"
        self.stats[key] = self.stats.get(key, 0) + 1
        if obs.is_enabled() and fault != "forwarded":
            obs.counter(
                "chaos.injected", fault=fault, direction=direction
            ).inc()

    @property
    def address(self) -> Address:
        if self._listen is None:
            raise RuntimeError("proxy not started")
        return self._listen.get_extra_info("sockname")[:2]

    async def start(self, bind: Address = ("127.0.0.1", 0)) -> Address:
        loop = asyncio.get_running_loop()
        self._listen, _ = await loop.create_datagram_endpoint(
            lambda: _ListenProtocol(self), local_addr=tuple(bind)
        )
        self._started_at = loop.time()
        return self.address

    async def close(self) -> None:
        for handle in self._handles:
            handle.cancel()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for leg in self._legs.values():
            if leg.transport is not None:
                leg.transport.close()
        self._legs.clear()
        if self._listen is not None:
            self._listen.close()
            self._listen = None

    # -- traffic ----------------------------------------------------------
    def _eclipsed(self, leg: _ClientLeg, direction: str) -> bool:
        """Is this member inside one of its churn windows right now?"""
        if self.churn is None:
            return False
        elapsed = asyncio.get_running_loop().time() - self._started_at
        if not self.churn.in_blackout(leg.index, elapsed):
            return False
        self._count(direction, "member_blackout")
        return True

    def _from_client(self, data: bytes, client: Address) -> None:
        leg = self._legs.get(client)
        if leg is None:
            leg = self._legs[client] = _ClientLeg(index=len(self._legs))
            task = asyncio.get_running_loop().create_task(
                self._connect_leg(client)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        if self._eclipsed(leg, "backward"):
            return
        self._inject(
            "backward", data, lambda payload: self._send_upstream(client, payload)
        )

    async def _connect_leg(self, client: Address) -> None:
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _UpstreamProtocol(self, client),
            remote_addr=self.upstream,
        )
        leg = self._legs[client]
        leg.transport = transport
        for payload in leg.pending:
            transport.sendto(payload)
        leg.pending.clear()

    def _send_upstream(self, client: Address, payload: bytes) -> None:
        leg = self._legs.get(client)
        if leg is None:
            return
        if leg.transport is None:
            leg.pending.append(payload)
        elif not leg.transport.is_closing():
            leg.transport.sendto(payload)

    def _from_upstream(self, data: bytes, client: Address) -> None:
        leg = self._legs.get(client)
        if leg is not None and self._eclipsed(leg, "forward"):
            return
        self._inject(
            "forward", data, lambda payload: self._send_client(client, payload)
        )

    def _send_client(self, client: Address, payload: bytes) -> None:
        if self._listen is not None and not self._listen.is_closing():
            self._listen.sendto(payload, client)

    def _inject(self, direction: str, data: bytes, send) -> None:
        loop = asyncio.get_running_loop()
        plan = self.plans[direction]
        if plan.in_blackout(loop.time() - self._started_at):
            self._count(direction, "blackout")
            return
        decision = self.schedules[direction].decide(len(data))
        if decision.drop:
            self._count(direction, "dropped")
            return
        if decision.corrupt_at is not None and data:
            self._count(direction, "corrupted")
            flipped = bytearray(data)
            flipped[decision.corrupt_at % len(data)] ^= 0xFF
            data = bytes(flipped)
        copies = 2 if decision.duplicate else 1
        if decision.duplicate:
            self._count(direction, "duplicated")
        self._count(direction, "forwarded")
        for _ in range(copies):
            if decision.delay > 0:
                self._count(direction, "delayed")
                self._handles.append(
                    loop.call_later(decision.delay, send, data)
                )
            else:
                send(data)
