"""Per-session sender state machine for the UDP transport.

One :class:`SenderSession` serves one transfer group (one set of members
who joined under the same group tag); the server multiplexes many of them
by session id.  The machine runs the NP recovery loop from the paper over
unicast fan-out:

``GATHERING -> STREAMING -> DRAINING -> DONE``

* **GATHERING** — the join window is open; joins with the session's group
  tag add members.
* **STREAMING** — every transmission group goes out once: ``k`` data
  packets then ``POLL(tg, k, 1)``, paced by the
  :class:`~repro.net.supervision.Pacer`.
* **DRAINING** — repair rounds.  The first NAK of a round opens a short
  aggregation window; at close, ``max(needed)`` repair packets are sent —
  fresh parities while they last, then ARQ fallback (data packets with a
  bumped ``generation``) — followed by the next round's poll.  Stale NAKs
  (an earlier round's number) re-solicit with the current poll instead of
  triggering duplicate repairs.  A group that trips ``max_rounds`` is
  abandoned with a :class:`~repro.protocols.packets.GroupAbort`.
* **DONE** — every member completed or was ejected; the
  :class:`SessionReport` records which.

Degraded completion: a member silent for ``member_timeout`` with work
outstanding is *ejected* (told via ``SessionFin("ejected")``) so one dead
receiver cannot pin a session open; ``session_deadline`` bounds the whole
session the same way (``SessionFin("aborted")``).

The session is transport-agnostic for testability: it talks through a
``send(packet, addr)`` callable and a ``now()`` clock supplied by the
server, and only its ``run()`` coroutine touches asyncio.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.fec.block import BlockEncoder
from repro.net.supervision import NetConfig, Pacer
from repro.net.wire import TraceContextPacket
from repro.protocols.packets import (
    DataPacket,
    GroupAbort,
    Nak,
    ParityPacket,
    Poll,
    SessionAnnounce,
    SessionComplete,
    SessionFin,
    SessionJoin,
    control_intact,
)

__all__ = ["SenderSession", "SessionReport", "MemberState"]

Address = tuple  # (host, port)

GATHERING = "gathering"
STREAMING = "streaming"
DRAINING = "draining"
DONE = "done"


@dataclass
class MemberState:
    """Sender-side view of one joined receiver."""

    addr: Address
    nonce: int
    joined_at: float
    last_heard: float
    complete: bool = False
    ejected: bool = False
    #: last time we re-told an ejected member its fate (rate limiter)
    last_fin: float = -1.0

    @property
    def active(self) -> bool:
        return not self.complete and not self.ejected


@dataclass(frozen=True)
class SessionReport:
    """Outcome of one finished session (``NetServer.reports``)."""

    session_id: int
    group: int
    #: ``complete`` (all members delivered), ``degraded`` (some ejected or
    #: groups abandoned, rest delivered) or ``aborted`` (deadline tripped)
    outcome: str
    members: int
    completed: int
    ejected: int
    abandoned_groups: tuple[int, ...]
    rounds_served: int
    parities_sent: int
    arq_fallbacks: int
    naks_received: int
    stale_naks: int
    repolls: int
    control_corrupt_discarded: int
    duration: float
    #: ejected members readmitted after a rejoin (churn survivors)
    revived: int = 0

    def to_json(self) -> dict:
        return {
            "session_id": self.session_id,
            "group": self.group,
            "outcome": self.outcome,
            "members": self.members,
            "completed": self.completed,
            "ejected": self.ejected,
            "abandoned_groups": list(self.abandoned_groups),
            "rounds_served": self.rounds_served,
            "parities_sent": self.parities_sent,
            "arq_fallbacks": self.arq_fallbacks,
            "naks_received": self.naks_received,
            "stale_naks": self.stale_naks,
            "repolls": self.repolls,
            "control_corrupt_discarded": self.control_corrupt_discarded,
            "duration": self.duration,
            "revived": self.revived,
        }


@dataclass
class _GroupState:
    """Repair-round bookkeeping for one transmission group."""

    round: int = 1
    sent_last_round: int = 0
    #: max shortfall reported for the current round (aggregation window)
    pending_needed: int = 0
    flush_armed: bool = False
    next_parity: int = 0
    fallback_cursor: int = 0
    generation: int = 0
    last_repoll: float = field(default=-1.0)
    abandoned: bool = False


class SenderSession:
    """One transfer session: members, stream, repair rounds, ejection."""

    def __init__(
        self,
        session_id: int,
        group: int,
        data: bytes,
        config: NetConfig,
        send: Callable[[object, Address], None],
        now: Callable[[], float],
        trace_id: str | None = None,
    ):
        self.session_id = session_id
        self.group = group
        self.config = config
        self.send = send
        self.now = now
        #: telemetry trace id shared with every member (None = untraced)
        self.trace_id = trace_id
        self.state = GATHERING
        self.encoder = BlockEncoder(
            data,
            k=config.k,
            h=config.h,
            packet_size=config.packet_size,
            codec=config.codec,
            pre_encode=True,
        )
        self.members: dict[Address, MemberState] = {}
        self.pacer = Pacer(config.pace_interval, config.pace_burst)
        self._groups = [_GroupState() for _ in range(len(self.encoder))]
        self._started_at = now()
        self._finished = asyncio.Event()
        self.report: SessionReport | None = None
        # counters surfaced in the report
        self.rounds_served = 0
        self.parities_sent = 0
        self.arq_fallbacks = 0
        self.naks_received = 0
        self.stale_naks = 0
        self.repolls = 0
        self.control_corrupt_discarded = 0
        self.revived = 0
        #: when every member first became settled (complete/ejected) while
        #: ejected-incomplete members remain — starts the revive grace
        self._settled_at: float | None = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.encoder)

    def announce(self) -> SessionAnnounce:
        return SessionAnnounce(
            k=self.config.k,
            h=self.config.h,
            packet_size=self.config.packet_size,
            n_groups=self.n_groups,
            total_length=self.encoder.total_length,
            codec=(
                self.config.codec
                if isinstance(self.config.codec, str)
                else type(self.config.codec).__name__
            ),
        )

    def add_member(self, addr: Address, join: SessionJoin) -> bool:
        """Admit (or re-announce to) a joiner; False once streaming began.

        A duplicate join from a known address is always answered with a
        fresh announce — join replies are datagrams too and can be lost.
        A known member that was *ejected* (silent past ``member_timeout``,
        e.g. its rack was dark) is revived while the session still runs:
        it resumes receiving repairs from wherever its decoder left off.
        Once the session is DONE the join is refused so the server can
        spawn a fresh session for the stray instead.
        """
        timestamp = self.now()
        member = self.members.get(addr)
        if member is not None:
            if member.ejected:
                if self.state == DONE:
                    return False
                member.ejected = False
                self.revived += 1
                self._settled_at = None  # an active member again
                if obs.is_enabled():
                    obs.counter("net.members_revived").inc()
            member.last_heard = timestamp
            self._send_announce(addr)
            return True
        if self.state != GATHERING:
            return False
        self.members[addr] = MemberState(
            addr=addr, nonce=join.nonce, joined_at=timestamp,
            last_heard=timestamp,
        )
        self._send_announce(addr)
        return True

    def _send_announce(self, addr: Address) -> None:
        """Announce the session — and its trace id, when one was minted.

        The trace packet rides behind every announce (join replies are
        datagrams and can be lost, so re-announces re-carry it); peers
        that predate wire type 13 drop it as ``unknown_type``.
        """
        self.send(self.announce(), addr)
        if self.trace_id is not None:
            self.send(TraceContextPacket(self.trace_id), addr)

    def _fanout(self, packet) -> None:
        """Unicast emulation of a multicast send: every active member."""
        for member in self.members.values():
            if member.active:
                self.send(packet, member.addr)

    # ------------------------------------------------------------------
    # inbound frames (called from datagram_received, inside the loop)
    # ------------------------------------------------------------------
    def on_frame(self, packet, addr: Address) -> None:
        member = self.members.get(addr)
        if member is None:
            return  # not a member of this session: ignore
        member.last_heard = self.now()
        if isinstance(packet, Nak):
            if not control_intact(packet):
                self.control_corrupt_discarded += 1
                return
            if member.ejected:
                # a NAK from an ejected member means it never learned its
                # fate (the fins were eaten by the same blackout that got
                # it ejected): re-tell it, rate-limited, so its rejoin
                # logic can fire instead of NAK-ing into the void
                timestamp = self.now()
                if timestamp - member.last_fin >= self.config.nak_aggregation:
                    member.last_fin = timestamp
                    self.send(SessionFin("ejected"), addr)
                return
            self._on_nak(packet)
        elif isinstance(packet, SessionComplete):
            if not control_intact(packet):
                self.control_corrupt_discarded += 1
                return
            if not member.complete:
                member.complete = True
            # idempotent ack — repeated completes re-trigger the fin so a
            # lost fin is recovered by the receiver's repeats
            self.send(SessionFin("complete"), addr)
            self._check_finished()
        # joins are handled by the server; payload types never come back

    def _on_nak(self, nak: Nak) -> None:
        if self.state not in (STREAMING, DRAINING):
            return
        if not 0 <= nak.tg < self.n_groups:
            return
        group = self._groups[nak.tg]
        if group.abandoned:
            # the abort datagram can be lost too: re-tell, rate-limited
            timestamp = self.now()
            if timestamp - group.last_repoll >= self.config.nak_aggregation:
                group.last_repoll = timestamp
                self._fanout(GroupAbort(nak.tg, group.round))
            return
        self.naks_received += 1
        if nak.round < group.round:
            # stale: the receiver missed this round's poll — re-solicit
            # with the current round instead of re-repairing
            self.stale_naks += 1
            timestamp = self.now()
            if (
                not group.flush_armed
                and timestamp - group.last_repoll >= self.config.nak_aggregation
            ):
                group.last_repoll = timestamp
                self.repolls += 1
                self._fanout(Poll(nak.tg, group.sent_last_round, group.round))
            return
        # current (or ahead-of-us, clamped) round: aggregate the shortfall
        group.pending_needed = max(group.pending_needed, nak.needed)
        if not group.flush_armed:
            group.flush_armed = True
            loop = asyncio.get_running_loop()
            loop.call_later(
                self.config.nak_aggregation, self._spawn_flush, nak.tg
            )

    def _spawn_flush(self, tg: int) -> None:
        if self.state == DONE:
            return
        task = asyncio.get_running_loop().create_task(self._flush_repairs(tg))
        task.add_done_callback(_log_task_error)

    async def _flush_repairs(self, tg: int) -> None:
        """Close the aggregation window: send repairs + the next poll."""
        group = self._groups[tg]
        needed = group.pending_needed
        group.pending_needed = 0
        group.flush_armed = False
        if needed <= 0 or group.abandoned or self.state == DONE:
            return
        if group.round >= self.config.max_rounds:
            self._abandon_group(tg)
            return
        self.rounds_served += 1
        config = self.config
        sent = 0
        for _ in range(needed):
            await self.pacer.gate()
            if group.next_parity < config.h:
                index = config.k + group.next_parity
                group.next_parity += 1
                self.parities_sent += 1
                packet = ParityPacket(
                    tg, index, self.encoder.parity_packet(tg, index - config.k)
                )
            else:
                # parity budget dry: ARQ fallback — cycle the originals
                # with a bumped generation so receivers see fresh copies
                index = group.fallback_cursor % config.k
                group.fallback_cursor += 1
                if index == 0:
                    group.generation += 1
                self.arq_fallbacks += 1
                packet = DataPacket(
                    tg,
                    index,
                    self.encoder.data_packet(tg, index),
                    generation=group.generation,
                )
            self._fanout(packet)
            sent += 1
        group.round += 1
        group.sent_last_round = sent
        await self.pacer.gate()
        self._fanout(Poll(tg, sent, group.round))

    def _abandon_group(self, tg: int) -> None:
        group = self._groups[tg]
        if group.abandoned:
            return
        group.abandoned = True
        self._fanout(GroupAbort(tg, group.round))
        if obs.is_enabled():
            obs.counter("net.groups_abandoned").inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> SessionReport:
        """Stream, drain, supervise; returns the final report."""
        attrs: dict = {"side": "sender", "session": self.session_id}
        if self.trace_id is not None:
            attrs["trace"] = self.trace_id
        try:
            with obs.span("net.serve.session", **attrs):
                await self._stream()
                await self._drain()
        finally:
            if self.report is None:
                self._finish("aborted")
        return self.report

    async def _stream(self) -> None:
        self.state = STREAMING
        config = self.config
        for tg in range(self.n_groups):
            if self.state == DONE:
                return
            for index in range(config.k):
                await self.pacer.gate()
                if obs.is_enabled():
                    # loss-free fanout baseline: observed E[M] for the live
                    # transport is (data+parity frames_tx) / this counter
                    obs.counter("net.stream_data_tx").inc(
                        sum(1 for m in self.members.values() if m.active)
                    )
                self._fanout(
                    DataPacket(tg, index, self.encoder.data_packet(tg, index))
                )
            await self.pacer.gate()
            self._fanout(Poll(tg, config.k, 1))
            self._groups[tg].sent_last_round = config.k
        self.state = DRAINING

    async def _drain(self) -> None:
        """Serve repair rounds until every member completes or is ejected."""
        tick = min(0.1, max(0.01, self.config.member_timeout / 8.0))
        while self.state != DONE:
            self._check_finished()
            if self.state == DONE:
                return
            timestamp = self.now()
            if timestamp - self._started_at > self.config.session_deadline:
                for member in self.members.values():
                    if member.active:
                        member.ejected = True
                        self.send(SessionFin("aborted"), member.addr)
                self._finish("aborted")
                return
            for member in self.members.values():
                if (
                    member.active
                    and timestamp - member.last_heard > self.config.member_timeout
                ):
                    member.ejected = True
                    # a few copies: the fin itself crosses the lossy wire
                    for _ in range(self.config.complete_repeats):
                        self.send(SessionFin("ejected"), member.addr)
                    if obs.is_enabled():
                        obs.counter("net.members_ejected").inc()
            self._check_finished()
            if self.state == DONE:
                return
            try:
                await asyncio.wait_for(self._finished.wait(), timeout=tick)
            except asyncio.TimeoutError:
                pass

    def _check_finished(self) -> None:
        if self.state == DONE:
            return
        if self.members and all(
            not member.active for member in self.members.values()
        ):
            ejected = sum(1 for m in self.members.values() if m.ejected)
            if ejected and self.config.revive_window > 0:
                # hold the session open so an eclipsed member can rejoin
                # and resume; the grace runs from the settle instant and
                # is still bounded by session_deadline in _drain
                if self._settled_at is None:
                    self._settled_at = self.now()
                    return
                if self.now() - self._settled_at < self.config.revive_window:
                    return
            abandoned = any(group.abandoned for group in self._groups)
            outcome = "degraded" if (ejected or abandoned) else "complete"
            self._finish(outcome)
        else:
            self._settled_at = None

    def _finish(self, outcome: str) -> None:
        self.state = DONE
        self.report = SessionReport(
            session_id=self.session_id,
            group=self.group,
            outcome=outcome,
            members=len(self.members),
            completed=sum(1 for m in self.members.values() if m.complete),
            ejected=sum(1 for m in self.members.values() if m.ejected),
            abandoned_groups=tuple(
                tg for tg, group in enumerate(self._groups) if group.abandoned
            ),
            rounds_served=self.rounds_served,
            parities_sent=self.parities_sent,
            arq_fallbacks=self.arq_fallbacks,
            naks_received=self.naks_received,
            stale_naks=self.stale_naks,
            repolls=self.repolls,
            control_corrupt_discarded=self.control_corrupt_discarded,
            duration=self.now() - self._started_at,
            revived=self.revived,
        )
        if obs.is_enabled():
            obs.counter("net.sessions", outcome=outcome).inc()
        self._finished.set()


def _log_task_error(task: asyncio.Task) -> None:
    # repair flushes are fire-and-forget; surface their tracebacks instead
    # of letting asyncio swallow them silently
    if not task.cancelled() and task.exception() is not None:
        task.get_loop().call_exception_handler(
            {"message": "repair flush failed", "exception": task.exception()}
        )
