"""Vectorised Monte-Carlo simulators for the paper's experiments.

These complement :mod:`repro.analysis`: the closed forms cover independent
loss; the simulators here additionally handle the shared-tree and burst
loss models of Section 4 (Figures 11, 12, 14, 15, 16) and cross-validate
the analysis everywhere both apply.
"""

from repro.mc._common import MCResult, PAPER_TIMING, Timing
from repro.mc.burst import BurstHistogram, burst_length_histogram, run_lengths
from repro.mc.integrated import (
    simulate_integrated_immediate,
    simulate_integrated_rounds,
)
from repro.mc.layered import simulate_layered
from repro.mc.nofec import simulate_nofec

__all__ = [
    "MCResult",
    "Timing",
    "PAPER_TIMING",
    "simulate_nofec",
    "simulate_layered",
    "simulate_integrated_immediate",
    "simulate_integrated_rounds",
    "BurstHistogram",
    "burst_length_histogram",
    "run_lengths",
]
