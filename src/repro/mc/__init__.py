"""Vectorised Monte-Carlo simulators for the paper's experiments.

These complement :mod:`repro.analysis`: the closed forms cover independent
loss; the simulators here additionally handle the shared-tree and burst
loss models of Section 4 (Figures 11, 12, 14, 15, 16) and cross-validate
the analysis everywhere both apply.

Two execution styles share the same sampling kernels:

* the serial ``simulate_*`` front-ends (one shared RNG stream, the
  original fixed-count API), and
* :func:`repro.mc.sharded.run_sharded` — chunked, optionally
  process-parallel and adaptive-stopping, with bit-identical statistics
  for any shard/job split thanks to per-replication seed trees and the
  exact mergeable accumulator in :mod:`repro.mc.streaming`.
"""

from repro.mc._common import MCResult, PAPER_TIMING, Timing
from repro.mc.burst import BurstHistogram, burst_length_histogram, run_lengths
from repro.mc.integrated import (
    simulate_integrated_immediate,
    simulate_integrated_rounds,
)
from repro.mc.layered import simulate_layered
from repro.mc.nofec import simulate_nofec
from repro.mc.sharded import SIMULATORS, replication_rng, run_sharded
from repro.mc.streaming import StreamingMoments

__all__ = [
    "MCResult",
    "Timing",
    "PAPER_TIMING",
    "simulate_nofec",
    "simulate_layered",
    "simulate_integrated_immediate",
    "simulate_integrated_rounds",
    "BurstHistogram",
    "burst_length_histogram",
    "run_lengths",
    "StreamingMoments",
    "run_sharded",
    "replication_rng",
    "SIMULATORS",
]
