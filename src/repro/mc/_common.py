"""Shared types for the vectorised Monte-Carlo experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Timing", "PAPER_TIMING", "MCResult", "resolve_rng"]


@dataclass(frozen=True)
class Timing:
    """Transmission timing of Figure 13, in seconds.

    * ``packet_interval`` — the paper's ``Delta``: spacing between
      back-to-back packet transmissions (40 ms, Bolot's 25 pkt/s path).
    * ``round_gap`` — the paper's ``T``: the feedback/retransmission delay
      inserted between rounds (300 ms).
    """

    packet_interval: float = 0.040
    round_gap: float = 0.300

    def __post_init__(self) -> None:
        if self.packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if self.round_gap < 0:
            raise ValueError("round_gap must be >= 0")


#: The Section 4.2 values: Delta = 40 ms, T = 300 ms.
PAPER_TIMING = Timing()


@dataclass(frozen=True)
class MCResult:
    """A Monte-Carlo estimate with its sampling uncertainty.

    ``mean`` estimates the paper's E[M] (or whatever the experiment
    measures); ``stderr`` is the standard error over replications.
    """

    mean: float
    stderr: float
    replications: int

    @property
    def confidence95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval."""
        half = 1.96 * self.stderr
        return self.mean - half, self.mean + half

    def compatible_with(self, expected: float, sigmas: float = 4.0) -> bool:
        """True if ``expected`` lies within ``sigmas`` standard errors."""
        if self.stderr == 0.0:
            return math.isclose(self.mean, expected, rel_tol=1e-9)
        return abs(self.mean - expected) <= sigmas * self.stderr


def summarize(samples: list[float] | np.ndarray) -> MCResult:
    """Mean and standard error of a vector of per-replication estimates."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples to summarise")
    stderr = (
        float(samples.std(ddof=1) / math.sqrt(samples.size))
        if samples.size > 1
        else 0.0
    )
    return MCResult(float(samples.mean()), stderr, int(samples.size))


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Accept a Generator, a seed, or None (fresh entropy)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
