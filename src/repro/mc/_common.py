"""Shared types for the vectorised Monte-Carlo experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Timing",
    "PAPER_TIMING",
    "MCResult",
    "PayloadVerifier",
    "resolve_rng",
]


@dataclass(frozen=True)
class Timing:
    """Transmission timing of Figure 13, in seconds.

    * ``packet_interval`` — the paper's ``Delta``: spacing between
      back-to-back packet transmissions (40 ms, Bolot's 25 pkt/s path).
    * ``round_gap`` — the paper's ``T``: the feedback/retransmission delay
      inserted between rounds (300 ms).
    """

    packet_interval: float = 0.040
    round_gap: float = 0.300

    def __post_init__(self) -> None:
        if self.packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if self.round_gap < 0:
            raise ValueError("round_gap must be >= 0")


#: The Section 4.2 values: Delta = 40 ms, T = 300 ms.
PAPER_TIMING = Timing()


@dataclass(frozen=True)
class MCResult:
    """A Monte-Carlo estimate with its sampling uncertainty.

    ``mean`` estimates the paper's E[M] (or whatever the experiment
    measures); ``stderr`` is the standard error over replications.

    Degenerate-case contract (see also :func:`summarize`):

    * ``replications == 1`` — the sample variance is *undefined*, so
      ``stderr`` is NaN (not ``0.0``: a single draw carries no evidence
      of determinism).  ``confidence95`` is ``(nan, nan)`` and
      :meth:`compatible_with` is vacuously true — one replication cannot
      falsify anything, so a 1-rep smoke run is never flaky.
    * ``stderr == 0.0`` with ``replications >= 2`` — the variance was
      *measured* to be zero (a deterministic process, e.g. zero loss);
      :meth:`compatible_with` demands near-exact equality.
    """

    mean: float
    stderr: float
    replications: int

    @property
    def confidence95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval."""
        half = self.ci95_halfwidth
        return self.mean - half, self.mean + half

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% CI (NaN when ``stderr`` is undefined)."""
        return 1.96 * self.stderr

    def compatible_with(self, expected: float, sigmas: float = 4.0) -> bool:
        """True if ``expected`` lies within ``sigmas`` standard errors.

        With a single replication (or an otherwise undefined ``stderr``)
        this is vacuously true; with a measured-zero ``stderr`` it falls
        back to near-exact equality.  See the class docstring.
        """
        if self.replications < 2 or math.isnan(self.stderr):
            return True
        if self.stderr == 0.0:
            return math.isclose(self.mean, expected, rel_tol=1e-9)
        return abs(self.mean - expected) <= sigmas * self.stderr


def summarize(samples: list[float] | np.ndarray) -> MCResult:
    """Mean and standard error of a vector of per-replication estimates.

    A single sample yields ``stderr = nan`` (variance undefined), per the
    :class:`MCResult` degenerate-case contract.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples to summarise")
    stderr = (
        float(samples.std(ddof=1) / math.sqrt(samples.size))
        if samples.size > 1
        else math.nan
    )
    return MCResult(float(samples.mean()), stderr, int(samples.size))


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Accept a Generator, a seed, or None (fresh entropy)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class PayloadVerifier:
    """Opt-in end-to-end coding check for the Monte-Carlo simulators.

    The MC loops track only *which* packets each receiver got; passing a
    codec to a simulator additionally pushes real payloads through the
    codec's batched paths: one reference block is encoded per verifier (via
    :meth:`~repro.fec.code.ErasureCode.encode_blocks`), and every *distinct*
    erasure pattern the codec claims decodable (its honest
    :meth:`~repro.fec.code.ErasureCode.decodable_mask`, which for non-MDS
    codes is stricter than a ``>= k`` count) is replayed through
    :meth:`~repro.fec.code.ErasureCode.decode_symbols` and checked
    bit-for-bit against the data.  Patterns are deduplicated here per
    verifier, and any codec-side plan cache (RSE's :class:`InverseCache`)
    deduplicates the algebra across replications and simulator calls —
    across 10^6 simulated receivers the same few patterns recur constantly,
    which is exactly the case those caches are built for.

    Parameters
    ----------
    codec:
        Codec whose geometry matches the simulated block (``k`` data
        packets, up to ``codec.h`` parities).
    symbols:
        Payload symbols per packet of the reference block.
    rng:
        Source for the reference payload; a seed or Generator.
    """

    def __init__(self, codec, symbols: int = 64, rng=None):
        if symbols < 1:
            raise ValueError(f"symbols must be >= 1, got {symbols}")
        self.codec = codec
        generator = resolve_rng(rng)
        self.data = generator.integers(
            0, codec.field.order, size=(1, codec.k, symbols)
        ).astype(codec.field.dtype)
        parities = codec.encode_blocks(self.data)
        #: the full FEC block as transmitted, coded rows then parity rows:
        #: (n, symbols).  For systematic codecs the coded rows are the data.
        self.block = np.concatenate(
            [codec.coded_symbols(self.data[0]), parities[0]]
        )
        self.patterns_verified = 0
        self._seen: set[tuple[int, ...]] = set()

    def verify_masks(self, received: np.ndarray) -> int:
        """Check every distinct decodable erasure pattern in ``received``.

        ``received`` is a boolean ``(R, n)`` (or ``(n,)``) matrix of
        per-receiver reception indicators over the first ``n <= codec.n``
        packets of a block.  Patterns the codec claims decodable are
        decoded and compared against the reference data; returns the
        number of *new* patterns verified.

        Raises
        ------
        AssertionError
            If a decode does not reproduce the original data packets —
            a codec correctness bug, which MC statistics would silently
            absorb.
        """
        received = np.atleast_2d(np.asarray(received, dtype=bool))
        n = received.shape[1]
        if n > self.codec.n:
            raise ValueError(
                f"pattern covers {n} packets but the codec block is only "
                f"n={self.codec.n}"
            )
        decodable = self.codec.decodable_mask(received)
        if not decodable.any():
            return 0
        fresh = 0
        for row in np.unique(received[decodable], axis=0):
            pattern = tuple(int(i) for i in np.flatnonzero(row))
            if pattern in self._seen:
                continue
            self._seen.add(pattern)
            rows = {i: self.block[i] for i in pattern}
            decoded = self.codec.decode_symbols(rows)
            for i in range(self.codec.k):
                if not np.array_equal(decoded[i], self.data[0, i]):
                    raise AssertionError(
                        f"codec failed to reconstruct packet {i} from "
                        f"erasure pattern {pattern}"
                    )
            fresh += 1
        self.patterns_verified += fresh
        return fresh
