"""Mergeable streaming moments for the sharded Monte-Carlo engine.

:class:`StreamingMoments` replaces the per-replication sample vectors the
serial simulators materialise: a shard folds its samples in as it produces
them, ships one tiny accumulator across the process boundary, and the
parent merges the shards — O(shards) memory instead of O(replications).

The hard requirement (see ``DESIGN.md`` section 11) is that one root seed
yields **bit-identical** ``(mean, stderr, replications)`` regardless of how
the replications are split into shards and chunks, how many workers run
them, or the order in which shards complete.  A textbook Welford/Chan
merge cannot promise that: float addition is not associative, so different
partitions round differently.  Instead the accumulator is *exact*: every
sample (a finite float64, hence a dyadic rational) is converted to a
fixed-point integer, and the running sum and sum of squares are arbitrary-
precision integers.  Integer addition is associative and commutative, so
``merge`` is exact by construction and any shard/chunk/order split of the
same sample multiset produces the same accumulator state.  Rounding back
to float happens once, at read time, via exactly-rounded ``Fraction``
arithmetic.

The cost is two big-int additions per sample (the integers stay around
1.1k/2.2k bits — additions, not multiplies), which is noise next to one
Monte-Carlo replication of any simulator in :mod:`repro.mc`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

import numpy as np

from repro.mc._common import MCResult

__all__ = ["StreamingMoments"]

#: Fixed-point shift for the first moment.  A finite float64 is
#: ``num / 2**k`` with ``k <= 1074`` (smallest subnormal), so scaling by
#: ``2**_SHIFT`` with ``_SHIFT >= 1074`` makes every sample an integer.
_SHIFT = 1080
#: Second-moment shift: squares have denominators up to ``2**(2*1074)``.
_SHIFT2 = 2 * _SHIFT


class StreamingMoments:
    """Exact, mergeable count / sum / sum-of-squares accumulator.

    The public face is the classic Welford triple — ``count``, ``mean``,
    ``m2`` — but the internal state is exact fixed-point integers so that
    :meth:`merge` commutes and associates *exactly* (see module docstring).

    Only finite samples are accepted; NaN/inf raise ``ValueError`` at
    ``update`` time rather than silently poisoning the campaign.
    """

    __slots__ = ("count", "_s1", "_s2")

    def __init__(self) -> None:
        self.count = 0
        self._s1 = 0  # sum(x)   * 2**_SHIFT, exact
        self._s2 = 0  # sum(x*x) * 2**_SHIFT2, exact

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def update(self, sample: float) -> None:
        """Fold one sample in."""
        value = float(sample)
        if not math.isfinite(value):
            raise ValueError(f"samples must be finite, got {value}")
        numerator, denominator = value.as_integer_ratio()
        k = denominator.bit_length() - 1  # denominator is 2**k exactly
        self._s1 += numerator << (_SHIFT - k)
        self._s2 += (numerator * numerator) << (_SHIFT2 - 2 * k)
        self.count += 1

    def update_many(self, samples: Iterable[float] | np.ndarray) -> None:
        """Fold a chunk of samples in (order cannot affect the result)."""
        for sample in np.asarray(samples, dtype=float).ravel():
            self.update(sample)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Exact merge, in place; returns self for chaining.

        ``a.merge(b)`` leaves ``a`` in the state it would have reached by
        folding ``b``'s samples directly — bit-identical, whatever the
        interleaving.
        """
        self.count += other.count
        self._s1 += other._s1
        self._s2 += other._s2
        return self

    # ------------------------------------------------------------------
    # read-out (the only place rounding happens)
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exactly-rounded sample mean."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return float(Fraction(self._s1, self.count << _SHIFT))

    def _m2_fraction(self) -> Fraction:
        # sum((x - mean)^2) == (n * sum(x^2) - sum(x)^2) / n, exactly;
        # non-negative by Cauchy-Schwarz because both sums are exact
        return Fraction(
            self.count * self._s2 - self._s1 * self._s1,
            self.count << _SHIFT2,
        )

    @property
    def m2(self) -> float:
        """Sum of squared deviations from the mean (Welford's ``M2``)."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return float(self._m2_fraction())

    @property
    def variance(self) -> float:
        """Unbiased sample variance; NaN below two samples (undefined)."""
        if self.count == 0:
            raise ValueError("no samples accumulated")
        if self.count < 2:
            return math.nan
        return float(self._m2_fraction() / (self.count - 1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean; NaN below two samples."""
        if self.count < 2:
            if self.count == 0:
                raise ValueError("no samples accumulated")
            return math.nan
        return math.sqrt(self.variance / self.count)

    def result(self) -> MCResult:
        """The accumulated estimate as an :class:`MCResult`."""
        return MCResult(self.mean, self.stderr, self.count)

    # ------------------------------------------------------------------
    # serialization (worker -> supervisor pipe, campaign journal)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-safe state; the big integers travel as decimal strings."""
        return {"count": self.count, "s1": str(self._s1), "s2": str(self._s2)}

    @classmethod
    def from_json(cls, data: dict) -> "StreamingMoments":
        moments = cls()
        moments.count = int(data["count"])
        moments._s1 = int(data["s1"])
        moments._s2 = int(data["s2"])
        if moments.count < 0:
            raise ValueError(f"negative count {moments.count}")
        return moments

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingMoments):
            return NotImplemented
        return (
            self.count == other.count
            and self._s1 == other._s1
            and self._s2 == other._s2
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "StreamingMoments(empty)"
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"stderr={self.stderr:.3g})"
        )
