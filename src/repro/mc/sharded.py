"""Sharded, streaming, parallel execution layer for the MC simulators.

The serial front-ends in :mod:`repro.mc` run replications in a Python
loop, materialise every per-replication sample and stop at a fixed count.
This module re-expresses the same estimators as **shard-parallel streaming
jobs** with three guarantees:

* **Deterministic seed trees.**  Replication ``i`` of a run rooted at seed
  ``s`` always draws from ``SeedSequence(s, spawn_key=(i,))`` — a private,
  statistically independent stream addressed by *replication index*, not
  by worker or shard.  Together with the exact accumulator below, one root
  seed yields bit-identical ``(mean, stderr, replications)`` for any
  ``(shards, chunk_size, jobs)`` split, any completion order, and
  ``jobs=1`` versus ``jobs>1``.
* **Streaming moments.**  Shards fold samples into
  :class:`~repro.mc.streaming.StreamingMoments` (exact, mergeable) instead
  of shipping sample vectors: memory is O(chunk) per worker and O(1) at
  the supervisor, however many replications run.
* **Supervised fan-out.**  ``jobs > 1`` reuses the campaign primitives of
  :mod:`repro.campaign` — spawned worker processes, wall-clock deadlines,
  bounded retry — so a wedged or crashed shard costs one bounded retry,
  never the run.  Retried shards recompute *identical* samples (the seed
  tree makes shard execution idempotent), so retries cannot bias the
  estimate.

**Adaptive stopping** (``target_ci=``) runs chunks until the 95% CI
half-width of the running estimate drops to the target or the replication
cap is hit.  The rule is evaluated on *prefix-complete* chunk sequences in
index order, so the stopped replication count is deterministic for a given
``(root seed, chunk_size, target_ci, cap)`` — independent of ``jobs`` and
of worker completion order.  (It does depend on ``chunk_size``: stopping
can only happen at chunk boundaries.)

Loss models cross the process boundary as JSON specs
(:meth:`repro.sim.loss.LossModel.to_spec`); a model without a spec (e.g.
``TreeLoss``) still works in-process with ``jobs=1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.mc import integrated, layered, nofec
from repro.mc._common import MCResult, PAPER_TIMING, Timing
from repro.mc.streaming import StreamingMoments
from repro.sim.loss import LossModel, loss_model_from_spec

__all__ = [
    "SIMULATORS",
    "ShardedSimulator",
    "replication_rng",
    "run_sharded",
    "shard_cell",
]

#: Default replications per chunk when ``chunk_size`` is not given and
#: adaptive stopping is on.  Must not depend on ``jobs`` — the stopped
#: replication count is part of the deterministic contract.
_ADAPTIVE_CHUNK = 64
#: Fixed-count runs default to ~this many chunks per worker (load balance
#: without per-chunk spawn overhead); chunking cannot affect fixed-count
#: statistics, so a jobs-dependent default is safe there.
_CHUNKS_PER_JOB = 4


@dataclass(frozen=True)
class ShardedSimulator:
    """One MC estimator as the sharded engine sees it.

    ``kernel`` is the chunk-shaped sampling function
    (``kernel(loss_model, timing, rngs, **params) -> np.ndarray``);
    ``param_names`` the exact parameter keys it requires.
    """

    name: str
    kernel: Callable[..., np.ndarray]
    param_names: tuple[str, ...] = ()
    optional_params: tuple[str, ...] = ()

    def validate_params(self, params: dict) -> dict:
        params = dict(params or {})
        missing = [key for key in self.param_names if key not in params]
        if missing:
            raise ValueError(
                f"simulator {self.name!r} requires params {missing}"
            )
        allowed = set(self.param_names) | set(self.optional_params)
        unknown = [key for key in params if key not in allowed]
        if unknown:
            raise ValueError(
                f"simulator {self.name!r} got unknown params {unknown}; "
                f"accepts {sorted(allowed)}"
            )
        return params


#: Every MC simulator, addressable by name (figure runners, CLI, tests).
SIMULATORS: dict[str, ShardedSimulator] = {
    spec.name: spec
    for spec in [
        ShardedSimulator("nofec", nofec.sample_chunk),
        # layered's optional codec is a registry *name* so the parameter
        # survives the spawn boundary as plain data
        ShardedSimulator(
            "layered", layered.sample_chunk, ("k", "h"), ("codec",)
        ),
        ShardedSimulator(
            "integrated_immediate",
            integrated.sample_chunk_immediate,
            ("k",),
            ("initial_parities",),
        ),
        ShardedSimulator(
            "integrated_rounds",
            integrated.sample_chunk_rounds,
            ("k",),
            ("initial_parities",),
        ),
    ]
}


# ----------------------------------------------------------------------
# seed trees
# ----------------------------------------------------------------------
def _root_sequence(
    rng: np.random.SeedSequence | np.random.Generator | int | None,
) -> np.random.SeedSequence:
    """Normalise any seed-ish input to the root of the replication tree."""
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        # a live generator cannot be shipped to workers; draw one entropy
        # value from it (deterministic given its state) and root there
        return np.random.SeedSequence(int(rng.integers(2**63 - 1)))
    if rng is None:
        return np.random.SeedSequence()
    return np.random.SeedSequence(int(rng))


def replication_rng(
    entropy, spawn_key: Sequence[int], index: int
) -> np.random.Generator:
    """The private generator of replication ``index`` under a root.

    Children are addressed exactly like ``SeedSequence.spawn`` would
    (``spawn_key + (index,)``) but by random access, so a worker holding
    replications ``[a, b)`` derives its streams without materialising the
    first ``a`` children.
    """
    child = np.random.SeedSequence(
        entropy=entropy, spawn_key=(*tuple(spawn_key), int(index))
    )
    return np.random.default_rng(child)


def _chunk_rngs(
    entropy, spawn_key: Sequence[int], start: int, count: int
) -> Iterator[np.random.Generator]:
    return (
        replication_rng(entropy, spawn_key, index)
        for index in range(start, start + count)
    )


# ----------------------------------------------------------------------
# the worker cell (runs inside a spawned campaign worker — or inline)
# ----------------------------------------------------------------------
def shard_cell(
    *,
    simulator: str,
    model: dict,
    params: dict,
    entropy,
    spawn_key: list,
    start: int,
    count: int,
    timing: dict,
) -> dict:
    """Run replications ``[start, start + count)`` and return exact moments.

    This is the campaign ``callable`` target for process fan-out; every
    argument is plain data so the task survives the spawn boundary and the
    JSONL journal unchanged.  The return value is
    :meth:`StreamingMoments.to_json` — O(1) size however large the chunk.
    """
    spec = SIMULATORS[simulator]
    loss_model = loss_model_from_spec(model)
    with obs.span("mc.shard", simulator=simulator, start=start, count=count) as timer:
        samples = spec.kernel(
            loss_model,
            Timing(**timing),
            _chunk_rngs(entropy, spawn_key, start, count),
            **spec.validate_params(params),
        )
    _observe_chunk(simulator, count, timer.elapsed)
    moments = StreamingMoments()
    moments.update_many(samples)
    return moments.to_json()


def _observe_chunk(simulator: str, count: int, elapsed: float) -> None:
    """Per-chunk telemetry: replication counter + throughput peak.

    ``mc.replications`` counts replications *computed* (inline and worker
    paths alike), so fixed-count runs report identical totals for any
    ``jobs``; with adaptive stopping, ``jobs > 1`` legitimately computes
    discarded overshoot chunks beyond the stop point, which this counter
    makes visible.
    """
    if not obs.is_enabled():
        return
    obs.counter("mc.replications", simulator=simulator).inc(count)
    obs.counter("mc.chunks", simulator=simulator).inc()
    if elapsed > 0:
        obs.gauge(
            "mc.shard_replications_per_second", simulator=simulator
        ).observe(count / elapsed)


# ----------------------------------------------------------------------
# planning + folding
# ----------------------------------------------------------------------
def _plan_chunks(
    replications: int, chunk_size: int | None, jobs: int, adaptive: bool
) -> list[tuple[int, int]]:
    """Split ``replications`` into ``(start, count)`` chunks."""
    if chunk_size is None:
        if adaptive:
            chunk_size = _ADAPTIVE_CHUNK
        else:
            chunk_size = max(
                1, math.ceil(replications / (jobs * _CHUNKS_PER_JOB))
            )
    return [
        (start, min(chunk_size, replications - start))
        for start in range(0, replications, chunk_size)
    ]


def _ci_reached(moments: StreamingMoments, target_ci: float | None) -> bool:
    if target_ci is None or moments.count < 2:
        return False
    halfwidth = 1.96 * moments.stderr
    return halfwidth <= target_ci  # NaN stderr compares False: keep going


# ----------------------------------------------------------------------
# the public API
# ----------------------------------------------------------------------
def run_sharded(
    simulator: str,
    loss_model: LossModel,
    *,
    params: dict | None = None,
    replications: int = 512,
    chunk_size: int | None = None,
    jobs: int = 1,
    target_ci: float | None = None,
    rng: np.random.SeedSequence | np.random.Generator | int | None = 0,
    timing: Timing = PAPER_TIMING,
    timeout: float = 600.0,
    retries: int = 1,
) -> MCResult:
    """Sharded, streaming Monte-Carlo estimate of E[M].

    Parameters
    ----------
    simulator:
        A :data:`SIMULATORS` name: ``"nofec"``, ``"layered"``,
        ``"integrated_immediate"`` or ``"integrated_rounds"``.
    loss_model:
        Any joint loss process.  With ``jobs > 1`` it must round-trip
        through :meth:`~repro.sim.loss.LossModel.to_spec`.
    params:
        Simulator parameters (e.g. ``{"k": 7, "h": 1}`` for layered).
    replications:
        Replication count — exact when ``target_ci`` is None, otherwise
        the cap the adaptive rule runs up to.
    chunk_size:
        Replications per dispatched chunk.  Fixed-count statistics are
        *identical for every chunking* (exact merge); with ``target_ci``
        set, stopping happens at chunk boundaries, so the default is a
        jobs-independent constant to keep stopped counts deterministic.
    jobs:
        ``1`` runs chunks inline; ``N > 1`` fans chunks out to ``N``
        spawned, supervised worker processes (campaign machinery:
        deadlines, bounded retry).  Identical results either way.
    target_ci:
        Optional 95% CI half-width target: stop as soon as the running
        estimate is at least this tight (checked at chunk boundaries, in
        chunk order).
    rng:
        Root of the seed tree: an int seed, a ``SeedSequence``, None
        (fresh entropy) or a ``Generator`` (one entropy draw is taken).
    timeout, retries:
        Per-shard wall-clock budget and retry allowance (``jobs > 1``).
    """
    try:
        spec = SIMULATORS[simulator]
    except KeyError:
        raise ValueError(
            f"unknown simulator {simulator!r}; known: {sorted(SIMULATORS)}"
        ) from None
    params = spec.validate_params(params or {})
    if replications < 1:
        raise ValueError("need at least one replication")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if target_ci is not None and not target_ci > 0:
        raise ValueError(f"target_ci must be positive, got {target_ci}")

    root = _root_sequence(rng)
    chunks = _plan_chunks(
        replications, chunk_size, jobs, adaptive=target_ci is not None
    )
    if jobs == 1:
        return _run_inline(spec, loss_model, params, chunks, root, timing, target_ci)
    return _run_fanout(
        spec,
        loss_model,
        params,
        chunks,
        root,
        timing,
        target_ci,
        jobs,
        timeout,
        retries,
    )


def _run_inline(
    spec: ShardedSimulator,
    loss_model: LossModel,
    params: dict,
    chunks: list[tuple[int, int]],
    root: np.random.SeedSequence,
    timing: Timing,
    target_ci: float | None,
) -> MCResult:
    """Single-process path: same chunks, same seeds, no campaign."""
    moments = StreamingMoments()
    for start, count in chunks:
        with obs.span(
            "mc.shard", simulator=spec.name, start=start, count=count
        ) as timer:
            samples = spec.kernel(
                loss_model,
                timing,
                _chunk_rngs(root.entropy, root.spawn_key, start, count),
                **params,
            )
        _observe_chunk(spec.name, count, timer.elapsed)
        moments.update_many(samples)
        if _ci_reached(moments, target_ci):
            break
    return moments.result()


def _run_fanout(
    spec: ShardedSimulator,
    loss_model: LossModel,
    params: dict,
    chunks: list[tuple[int, int]],
    root: np.random.SeedSequence,
    timing: Timing,
    target_ci: float | None,
    jobs: int,
    timeout: float,
    retries: int,
) -> MCResult:
    """Process-parallel path via the campaign supervisor."""
    from repro.campaign import (
        CampaignRunner,
        RetryPolicy,
        callable_task,
        deserialize_result,
    )

    try:
        model_spec = loss_model.to_spec()
    except NotImplementedError as exc:
        raise ValueError(
            f"{type(loss_model).__name__} cannot cross the process "
            f"boundary ({exc}); run with jobs=1"
        ) from None

    def make_task(index: int, start: int, count: int):
        return callable_task(
            f"chunk{index:05d}",
            "repro.mc.sharded:shard_cell",
            timeout=timeout,
            simulator=spec.name,
            model=model_spec,
            params=params,
            entropy=root.entropy,
            spawn_key=list(root.spawn_key),
            start=start,
            count=count,
            timing={
                "packet_interval": timing.packet_interval,
                "round_gap": timing.round_gap,
            },
        )

    moments = StreamingMoments()
    # Fixed-count runs dispatch everything at once; adaptive runs go in
    # waves of `jobs` chunks so a tight CI stops after bounded overshoot.
    wave_size = len(chunks) if target_ci is None else jobs
    next_chunk = 0
    while next_chunk < len(chunks):
        wave = chunks[next_chunk : next_chunk + wave_size]
        tasks = [
            make_task(next_chunk + offset, start, count)
            for offset, (start, count) in enumerate(wave)
        ]
        runner = CampaignRunner(
            tasks,
            jobs=min(jobs, len(tasks)),
            timeout=timeout,
            retry=RetryPolicy(retries=retries),
            campaign_id=f"mc-{spec.name}",
            # shard workers inherit this process's telemetry switch; their
            # snapshots merge here, so the rollup looks exactly like an
            # inline run's (modulo wall-clock histograms)
            capture_metrics=obs.is_enabled(),
        )
        report = runner.run()
        if obs.is_enabled() and runner.worker_metrics:
            obs.merge_snapshot(runner.worker_metrics)
        if report.status != "ok":
            details = "; ".join(
                f"{outcome.task_id}: {outcome.error_type}: {outcome.error_message}"
                for outcome in report.outcomes
                if outcome.status != "ok"
            )
            raise RuntimeError(
                f"sharded MC run lost {len(report.quarantined)} shard(s) "
                f"after retries — statistics would be biased ({details})"
            )
        stopped = False
        for offset in range(len(wave)):
            task_id = f"chunk{next_chunk + offset:05d}"
            chunk_moments = StreamingMoments.from_json(
                deserialize_result(runner.results[task_id])
            )
            moments.merge(chunk_moments)
            # evaluate the stop rule at every chunk boundary in index
            # order; chunks computed beyond the stop point are discarded
            # so the stopped count never depends on jobs or wave size
            if _ci_reached(moments, target_ci):
                stopped = True
                break
        if stopped:
            break
        next_chunk += len(wave)
    return moments.result()
