"""Burst-length statistics for the two-state Markov loss channel (Fig. 14).

Feeds a long packet stream (spacing ``Delta``) through one receiver's loss
process and histograms the lengths of consecutive-loss runs, comparing the
bursty channel against the Bernoulli channel of equal loss rate — the
paper's Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mc._common import resolve_rng
from repro.sim.loss import BernoulliLoss, GilbertLoss

__all__ = ["BurstHistogram", "burst_length_histogram", "run_lengths"]


def run_lengths(lost: np.ndarray) -> np.ndarray:
    """Lengths of maximal runs of ``True`` in a boolean vector."""
    lost = np.asarray(lost, dtype=bool)
    if lost.size == 0:
        return np.zeros(0, dtype=np.int64)
    padded = np.concatenate(([False], lost, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = changes[::2], changes[1::2]
    return ends - starts


@dataclass(frozen=True)
class BurstHistogram:
    """Occurrence counts of loss-burst lengths over a packet stream."""

    lengths: np.ndarray  # 1..max observed
    occurrences: np.ndarray
    n_packets: int
    loss_rate: float

    def as_rows(self) -> list[tuple[int, int]]:
        return [
            (int(length), int(count))
            for length, count in zip(self.lengths, self.occurrences)
        ]


def _histogram(lost: np.ndarray, n_packets: int) -> BurstHistogram:
    lengths = run_lengths(lost)
    if lengths.size == 0:
        return BurstHistogram(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            n_packets, 0.0,
        )
    longest = int(lengths.max())
    counts = np.bincount(lengths, minlength=longest + 1)[1:]
    return BurstHistogram(
        np.arange(1, longest + 1),
        counts,
        n_packets,
        float(lost.mean()),
    )


def burst_length_histogram(
    p: float,
    n_packets: int = 1_000_000,
    mean_burst_length: float | None = 2.0,
    packet_interval: float = 0.040,
    rng: np.random.Generator | int | None = None,
) -> BurstHistogram:
    """Histogram of consecutive-loss run lengths at a single receiver.

    ``mean_burst_length=None`` selects the independent (Bernoulli) channel —
    the "no burst loss" curve of Figure 14; otherwise the two-state Markov
    channel with the paper's parameterisation is used.
    """
    if n_packets < 1:
        raise ValueError("need at least one packet")
    rng = resolve_rng(rng)
    times = np.arange(n_packets) * packet_interval
    if mean_burst_length is None:
        lost = BernoulliLoss(1, p).sample_at(times, rng)[0]
    else:
        model = GilbertLoss.from_loss_and_burst(
            1, p, mean_burst_length, packet_interval
        )
        lost = model.sample_chain(times, rng)
    return _histogram(lost, n_packets)
