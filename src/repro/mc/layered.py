"""Monte-Carlo estimate of E[M] for **layered FEC** under any loss model.

Model (Sections 3.1 and 4.2): a transmission group of ``k`` data packets is
sent as an FEC block of ``n = k + h`` packets, back to back at ``Delta``
spacing.  A receiver recovers data packet ``i`` in a round iff it received
packet ``i`` itself or at least ``k`` packets of the block.  Packets not
recovered by every receiver are retransmitted in the next round — each
packet *keeping its place in the block* (the burst-loss convention of
Section 4.2) — with the rounds separated by ``Delta + T``.

The estimate of E[M] for a round is ``(n/k) * mean_i(rounds_i)`` where
``rounds_i`` is the number of rounds until all receivers recovered packet
``i`` — matching Equation (3)'s ``n/k`` bandwidth accounting.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.fec.code import ErasureCode
from repro.fec.registry import resolve_codec
from repro.mc._common import (
    MCResult,
    PAPER_TIMING,
    PayloadVerifier,
    Timing,
    resolve_rng,
    summarize,
)
from repro.sim.loss import LossModel

__all__ = ["simulate_layered", "sample_chunk"]

_MAX_ROUNDS = 100_000


def _validate_geometry(k: int, h: int) -> None:
    if k < 1 or h < 0:
        raise ValueError(f"need k >= 1 and h >= 0, got k={k}, h={h}")


def _one_replication(
    loss_model: LossModel,
    k: int,
    h: int,
    timing: Timing,
    rng: np.random.Generator,
    verifier: PayloadVerifier | None = None,
    codec: ErasureCode | None = None,
) -> float:
    n = k + h
    n_receivers = loss_model.n_receivers
    sampler = loss_model.start(rng)
    pending = np.ones((n_receivers, k), dtype=bool)  # r still missing packet i
    rounds_needed = np.zeros(k, dtype=np.int64)
    base = 0.0
    for round_index in range(1, _MAX_ROUNDS + 1):
        times = base + np.arange(n) * timing.packet_interval
        lost = sampler.sample(times)  # (R, n)
        received = ~lost
        if codec is not None:
            # codec-aware decodability: identical to the >= k count for MDS
            # codes, stricter for non-MDS codes (rect/lrc patterns the code
            # cannot actually repair don't count as recovered)
            decodable = codec.decodable_mask(received)  # (R,)
        else:
            decodable = received.sum(axis=1) >= k  # (R,)
        if verifier is not None:
            # replay each distinct decodable pattern through the real
            # batched codec (cache-backed, so repeats cost a lookup)
            verifier.verify_masks(received)
        recovered = received[:, :k] | decodable[:, None]  # (R, k)
        pending &= ~recovered
        unfinished = pending.any(axis=0)  # per packet
        newly_done = (~unfinished) & (rounds_needed == 0)
        rounds_needed[newly_done] = round_index
        if not unfinished.any():
            return (n / k) * float(rounds_needed.mean())
        base = times[-1] + timing.packet_interval + timing.round_gap
    raise RuntimeError(f"transmission group unfinished after {_MAX_ROUNDS} rounds")


def sample_chunk(
    loss_model: LossModel,
    timing: Timing,
    rngs: Iterable[np.random.Generator],
    *,
    k: int,
    h: int,
    verifier: PayloadVerifier | None = None,
    codec: ErasureCode | str | None = None,
) -> np.ndarray:
    """Chunk-shaped kernel: one layered-FEC E[M] sample per rng in ``rngs``.

    This is the unit of work the sharded engine (:mod:`repro.mc.sharded`)
    dispatches: each replication draws from *its own* generator, so a chunk
    is fully determined by the seeds it is handed — independent of how the
    replication range was split.  The serial front-end reuses it with one
    shared generator repeated, preserving the legacy single-stream
    semantics (and numbers) exactly.

    ``codec`` may be a registry name (the form that crosses the sharded
    engine's process boundary), a live instance, or None for the ideal-MDS
    count; when given and no ``verifier`` was supplied, one is built so the
    chunk also payload-verifies every distinct decodable pattern.
    """
    _validate_geometry(k, h)
    codec = resolve_codec(codec, k, h)
    if codec is not None and verifier is None:
        verifier = PayloadVerifier(codec, rng=np.random.default_rng(0x5EED))
    return np.array(
        [
            _one_replication(loss_model, k, h, timing, rng, verifier, codec)
            for rng in rngs
        ],
        dtype=float,
    )


def simulate_layered(
    loss_model: LossModel,
    k: int,
    h: int,
    replications: int = 200,
    timing: Timing = PAPER_TIMING,
    rng: np.random.Generator | int | None = None,
    codec: ErasureCode | str | None = None,
) -> MCResult:
    """Estimate layered-FEC E[M] (transmissions per data packet).

    Parameters
    ----------
    loss_model:
        Any joint loss process (independent / tree-shared / burst).
    k, h:
        Transmission-group size and parity count per block.
    replications:
        Independent transmission groups to average over.
    timing:
        ``Delta`` and ``T`` of Figure 13 — only material under burst loss.
    codec:
        Optional :class:`~repro.fec.code.ErasureCode` instance or registry
        name (``"rse"``, ``"xor"``, ``"rect"``, ``"lrc"``) with matching
        ``(k, h)``.  When given, per-receiver decodability uses the codec's
        honest :meth:`~repro.fec.code.ErasureCode.decodable_mask` (identical
        to the ideal-MDS ``>= k`` count for MDS codes — the default ``rse``
        path is statistically unchanged — but stricter for ``rect``/``lrc``),
        and every distinct decodable erasure pattern sampled is replayed
        through the codec's decode path and checked against real payloads
        (see :class:`repro.mc._common.PayloadVerifier`).
    """
    _validate_geometry(k, h)
    if replications < 1:
        raise ValueError("need at least one replication")
    rng = resolve_rng(rng)
    codec = resolve_codec(codec, k, h)
    verifier = None
    if codec is not None:
        # dedicated payload RNG: drawing the reference block from the
        # simulation's stream would perturb the loss samples, making the
        # codec-verified run statistically different from the plain one
        verifier = PayloadVerifier(codec, rng=np.random.default_rng(0x5EED))
    samples = sample_chunk(
        loss_model,
        timing,
        itertools.repeat(rng, replications),
        k=k,
        h=h,
        verifier=verifier,
        codec=codec,
    )
    return summarize(samples)
