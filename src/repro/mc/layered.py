"""Monte-Carlo estimate of E[M] for **layered FEC** under any loss model.

Model (Sections 3.1 and 4.2): a transmission group of ``k`` data packets is
sent as an FEC block of ``n = k + h`` packets, back to back at ``Delta``
spacing.  A receiver recovers data packet ``i`` in a round iff it received
packet ``i`` itself or at least ``k`` packets of the block.  Packets not
recovered by every receiver are retransmitted in the next round — each
packet *keeping its place in the block* (the burst-loss convention of
Section 4.2) — with the rounds separated by ``Delta + T``.

The estimate of E[M] for a round is ``(n/k) * mean_i(rounds_i)`` where
``rounds_i`` is the number of rounds until all receivers recovered packet
``i`` — matching Equation (3)'s ``n/k`` bandwidth accounting.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.mc._common import (
    MCResult,
    PAPER_TIMING,
    PayloadVerifier,
    Timing,
    resolve_rng,
    summarize,
)
from repro.sim.loss import LossModel

__all__ = ["simulate_layered", "sample_chunk"]

_MAX_ROUNDS = 100_000


def _validate_geometry(k: int, h: int) -> None:
    if k < 1 or h < 0:
        raise ValueError(f"need k >= 1 and h >= 0, got k={k}, h={h}")


def _one_replication(
    loss_model: LossModel,
    k: int,
    h: int,
    timing: Timing,
    rng: np.random.Generator,
    verifier: PayloadVerifier | None = None,
) -> float:
    n = k + h
    n_receivers = loss_model.n_receivers
    sampler = loss_model.start(rng)
    pending = np.ones((n_receivers, k), dtype=bool)  # r still missing packet i
    rounds_needed = np.zeros(k, dtype=np.int64)
    base = 0.0
    for round_index in range(1, _MAX_ROUNDS + 1):
        times = base + np.arange(n) * timing.packet_interval
        lost = sampler.sample(times)  # (R, n)
        received = ~lost
        decodable = received.sum(axis=1) >= k  # (R,)
        if verifier is not None:
            # replay each distinct decodable pattern through the real
            # batched codec (cache-backed, so repeats cost a lookup)
            verifier.verify_masks(received)
        recovered = received[:, :k] | decodable[:, None]  # (R, k)
        pending &= ~recovered
        unfinished = pending.any(axis=0)  # per packet
        newly_done = (~unfinished) & (rounds_needed == 0)
        rounds_needed[newly_done] = round_index
        if not unfinished.any():
            return (n / k) * float(rounds_needed.mean())
        base = times[-1] + timing.packet_interval + timing.round_gap
    raise RuntimeError(f"transmission group unfinished after {_MAX_ROUNDS} rounds")


def sample_chunk(
    loss_model: LossModel,
    timing: Timing,
    rngs: Iterable[np.random.Generator],
    *,
    k: int,
    h: int,
    verifier: PayloadVerifier | None = None,
) -> np.ndarray:
    """Chunk-shaped kernel: one layered-FEC E[M] sample per rng in ``rngs``.

    This is the unit of work the sharded engine (:mod:`repro.mc.sharded`)
    dispatches: each replication draws from *its own* generator, so a chunk
    is fully determined by the seeds it is handed — independent of how the
    replication range was split.  The serial front-end reuses it with one
    shared generator repeated, preserving the legacy single-stream
    semantics (and numbers) exactly.
    """
    _validate_geometry(k, h)
    return np.array(
        [
            _one_replication(loss_model, k, h, timing, rng, verifier)
            for rng in rngs
        ],
        dtype=float,
    )


def simulate_layered(
    loss_model: LossModel,
    k: int,
    h: int,
    replications: int = 200,
    timing: Timing = PAPER_TIMING,
    rng: np.random.Generator | int | None = None,
    codec=None,
) -> MCResult:
    """Estimate layered-FEC E[M] (transmissions per data packet).

    Parameters
    ----------
    loss_model:
        Any joint loss process (independent / tree-shared / burst).
    k, h:
        Transmission-group size and parity count per block.
    replications:
        Independent transmission groups to average over.
    timing:
        ``Delta`` and ``T`` of Figure 13 — only material under burst loss.
    codec:
        Optional :class:`repro.fec.rse.RSECodec` with matching ``(k, h)``.
        When given, every distinct decodable erasure pattern sampled by the
        simulation is replayed through the codec's batched, cache-backed
        decode path and checked against real payloads (see
        :class:`repro.mc._common.PayloadVerifier`); the statistics are
        unchanged.
    """
    _validate_geometry(k, h)
    if replications < 1:
        raise ValueError("need at least one replication")
    rng = resolve_rng(rng)
    verifier = None
    if codec is not None:
        if codec.k != k or codec.h != h:
            raise ValueError(
                f"codec geometry (k={codec.k}, h={codec.h}) does not match "
                f"the simulated block (k={k}, h={h})"
            )
        # dedicated payload RNG: drawing the reference block from the
        # simulation's stream would perturb the loss samples, making the
        # codec-verified run statistically different from the plain one
        verifier = PayloadVerifier(codec, rng=np.random.default_rng(0x5EED))
    samples = sample_chunk(
        loss_model,
        timing,
        itertools.repeat(rng, replications),
        k=k,
        h=h,
        verifier=verifier,
    )
    return summarize(samples)
