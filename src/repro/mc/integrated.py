"""Monte-Carlo estimates of E[M] for **integrated FEC** under any loss model.

Two transmission schemes from Section 4.2 (Figure 13):

* :func:`simulate_integrated_immediate` — "Integrated FEC 1": the sender
  streams the ``k`` data packets and then parities, all at ``Delta``
  spacing, until every receiver holds ``k`` packets of the block; receivers
  leave as soon as they are done.  No feedback rounds.  Under loss models
  without temporal correlation this is exactly the paper's idealised
  integrated-FEC lower bound (Equation 6), which is how Figure 12's shared
  -loss curves are produced.

* :func:`simulate_integrated_rounds` — "Integrated FEC 2" / protocol NP's
  transmission pattern: after the data packets, NAK-driven rounds separated
  by ``Delta + T`` each carry ``max_r(missing_r)`` fresh parities.

Both count total packet transmissions for the group; E[M] = total / k.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.mc._common import (
    MCResult,
    PAPER_TIMING,
    PayloadVerifier,
    Timing,
    resolve_rng,
    summarize,
)
from repro.sim.loss import LossModel

__all__ = [
    "simulate_integrated_immediate",
    "simulate_integrated_rounds",
    "sample_chunk_immediate",
    "sample_chunk_rounds",
]

_MAX_TRANSMISSIONS = 1_000_000
_PARITY_CHUNK = 16


def _immediate_replication(
    loss_model: LossModel,
    k: int,
    timing: Timing,
    rng: np.random.Generator,
    initial_parities: int = 0,
    verifier: PayloadVerifier | None = None,
) -> float:
    n_receivers = loss_model.n_receivers
    sampler = loss_model.start(rng)

    first_burst = k + initial_parities
    times = np.arange(first_burst) * timing.packet_interval
    lost = sampler.sample(times)
    received = ~lost
    if verifier is not None:
        # integrated FEC sends fresh parities without bound, but the
        # first burst maps directly onto one codec block — replay those
        # erasure patterns through the real cache-backed decode path
        verifier.verify_masks(received)
    counts = received.sum(axis=1)  # packets held per receiver
    if (counts >= k).all():
        return first_burst / k

    sent = first_burst
    base = float(times[-1]) + timing.packet_interval
    while sent < _MAX_TRANSMISSIONS:
        times = base + np.arange(_PARITY_CHUNK) * timing.packet_interval
        lost = sampler.sample(times)
        received = ~lost  # (R, chunk)
        # Receivers already done ignore further parities; for the rest,
        # find the column where their cumulative count reaches k.
        active = counts < k
        cumulative = counts[:, None] + np.cumsum(received, axis=1)
        done_at = cumulative >= k  # (R, chunk)
        if done_at[active][:, -1].all():
            # Everyone finishes within this chunk.  The sender (idealised:
            # it stops the instant the last receiver completes) only sends
            # up to the worst receiver's first-done column.
            first_done = done_at.argmax(axis=1)
            needed = int(first_done[active].max()) + 1
            return (sent + needed) / k
        counts = cumulative[:, -1]
        sent += _PARITY_CHUNK
        base = float(times[-1]) + timing.packet_interval
    raise RuntimeError("integrated FEC 1 did not complete within budget")


def _rounds_replication(
    loss_model: LossModel,
    k: int,
    timing: Timing,
    rng: np.random.Generator,
    initial_parities: int = 0,
    verifier: PayloadVerifier | None = None,
) -> float:
    n_receivers = loss_model.n_receivers
    sampler = loss_model.start(rng)

    first_burst = k + initial_parities
    times = np.arange(first_burst) * timing.packet_interval
    lost = sampler.sample(times)
    received = ~lost
    if verifier is not None:
        verifier.verify_masks(received)
    counts = received.sum(axis=1)
    sent = first_burst
    base = float(times[-1]) + timing.packet_interval + timing.round_gap
    while True:
        missing = np.maximum(0, k - counts)
        worst = int(missing.max())
        if worst == 0:
            return sent / k
        if sent + worst > _MAX_TRANSMISSIONS:
            raise RuntimeError("integrated FEC 2 did not complete within budget")
        times = base + np.arange(worst) * timing.packet_interval
        lost = sampler.sample(times)
        # a receiver only consumes parities while it still needs them, but
        # since parities are all-new, every received one counts toward k
        counts = np.minimum(k, counts + (~lost).sum(axis=1))
        sent += worst
        base = float(times[-1]) + timing.packet_interval + timing.round_gap


def _make_verifier(
    codec,
    k: int,
    initial_parities: int,
) -> PayloadVerifier | None:
    """Build the opt-in payload verifier for the integrated simulators.

    Integrated FEC keeps sending *fresh* parities for as long as any
    receiver is missing packets, so the tail of the transmission has no
    fixed block length; only the first burst (``k`` data packets plus
    ``initial_parities`` parities) maps onto a single codec block.  The
    verifier therefore replays first-burst erasure patterns only.
    """
    if codec is None:
        return None
    if codec.k != k:
        raise ValueError(
            f"codec geometry (k={codec.k}) does not match the simulated "
            f"block (k={k})"
        )
    if initial_parities > codec.h:
        raise ValueError(
            f"first burst carries {initial_parities} parities but the codec "
            f"only encodes h={codec.h}"
        )
    # dedicated payload RNG: drawing the reference block from the
    # simulation's stream would perturb the loss samples, making the
    # codec-verified run statistically different from the plain one
    return PayloadVerifier(codec, rng=np.random.default_rng(0x5EED))


def _validate_integrated(k: int, initial_parities: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if initial_parities < 0:
        raise ValueError("initial_parities must be >= 0")


def sample_chunk_immediate(
    loss_model: LossModel,
    timing: Timing,
    rngs: Iterable[np.random.Generator],
    *,
    k: int,
    initial_parities: int = 0,
    verifier: PayloadVerifier | None = None,
) -> np.ndarray:
    """Chunk-shaped kernel for integrated FEC 1 (continuous parity tail).

    One E[M] sample per rng in ``rngs``; see
    :func:`repro.mc.layered.sample_chunk` for the sharding contract.
    """
    _validate_integrated(k, initial_parities)
    return np.array(
        [
            _immediate_replication(
                loss_model, k, timing, rng, initial_parities, verifier
            )
            for rng in rngs
        ],
        dtype=float,
    )


def sample_chunk_rounds(
    loss_model: LossModel,
    timing: Timing,
    rngs: Iterable[np.random.Generator],
    *,
    k: int,
    initial_parities: int = 0,
    verifier: PayloadVerifier | None = None,
) -> np.ndarray:
    """Chunk-shaped kernel for integrated FEC 2 (NAK-driven parity rounds)."""
    _validate_integrated(k, initial_parities)
    return np.array(
        [
            _rounds_replication(
                loss_model, k, timing, rng, initial_parities, verifier
            )
            for rng in rngs
        ],
        dtype=float,
    )


def simulate_integrated_immediate(
    loss_model: LossModel,
    k: int,
    replications: int = 200,
    timing: Timing = PAPER_TIMING,
    rng: np.random.Generator | int | None = None,
    initial_parities: int = 0,
    codec=None,
) -> MCResult:
    """Integrated FEC 1: continuous parity tail at rate ``1/Delta``.

    ``codec`` (optional) enables end-to-end payload verification of the
    first-burst erasure patterns through the real batched decode path —
    see :func:`_make_verifier`; statistics are unchanged.
    """
    _validate_integrated(k, initial_parities)
    if replications < 1:
        raise ValueError("need at least one replication")
    rng = resolve_rng(rng)
    verifier = _make_verifier(codec, k, initial_parities)
    samples = sample_chunk_immediate(
        loss_model,
        timing,
        itertools.repeat(rng, replications),
        k=k,
        initial_parities=initial_parities,
        verifier=verifier,
    )
    return summarize(samples)


def simulate_integrated_rounds(
    loss_model: LossModel,
    k: int,
    replications: int = 200,
    timing: Timing = PAPER_TIMING,
    rng: np.random.Generator | int | None = None,
    initial_parities: int = 0,
    codec=None,
) -> MCResult:
    """Integrated FEC 2: NAK-driven parity rounds spaced ``Delta + T``.

    ``codec`` (optional) enables end-to-end payload verification of the
    first-burst erasure patterns through the real batched decode path —
    see :func:`_make_verifier`; statistics are unchanged.
    """
    _validate_integrated(k, initial_parities)
    if replications < 1:
        raise ValueError("need at least one replication")
    rng = resolve_rng(rng)
    verifier = _make_verifier(codec, k, initial_parities)
    samples = sample_chunk_rounds(
        loss_model,
        timing,
        itertools.repeat(rng, replications),
        k=k,
        initial_parities=initial_parities,
        verifier=verifier,
    )
    return summarize(samples)
