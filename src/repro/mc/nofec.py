"""Monte-Carlo estimate of E[M] for plain ARQ (no FEC).

One packet is (re)transmitted — successive attempts spaced ``Delta + T``
apart per Figure 13 — until every receiver has a copy.  Works with *any*
:class:`repro.sim.loss.LossModel`: independent, shared-tree and burst loss
all flow through the model's incremental sampler, which is the whole point
(the closed forms only cover the independent cases).
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.mc._common import MCResult, PAPER_TIMING, Timing, resolve_rng, summarize
from repro.sim.loss import LossModel

__all__ = ["simulate_nofec", "sample_chunk"]

#: Attempts per incremental sampling chunk.
_CHUNK = 16
#: Give up (and fail loudly) after this many attempts for one packet.
_MAX_ATTEMPTS = 100_000


def _one_replication(
    loss_model: LossModel, timing: Timing, rng: np.random.Generator
) -> float:
    """Number of transmissions until all receivers hold the packet."""
    sampler = loss_model.start(rng)
    missing = np.ones(loss_model.n_receivers, dtype=bool)
    spacing = timing.packet_interval + timing.round_gap
    attempts = 0
    base = 0.0
    while attempts < _MAX_ATTEMPTS:
        times = base + np.arange(_CHUNK) * spacing
        lost = sampler.sample(times)  # (R, _CHUNK)
        # per receiver: first successful attempt within the chunk (if any)
        received = ~lost & missing[:, None]
        got = received.any(axis=1)
        missing &= ~got
        if not missing.any():
            # last receiver completes at the latest first-success column
            first_success = np.where(
                received.any(axis=1), received.argmax(axis=1), -1
            )
            last_needed = int(first_success.max())
            return attempts + last_needed + 1
        attempts += _CHUNK
        base = times[-1] + spacing
    raise RuntimeError(
        f"packet not delivered to all receivers within {_MAX_ATTEMPTS} attempts"
    )


def sample_chunk(
    loss_model: LossModel,
    timing: Timing,
    rngs: Iterable[np.random.Generator],
) -> np.ndarray:
    """Chunk-shaped kernel: one no-FEC E[M] sample per rng in ``rngs``.

    The sharded engine hands each replication its own seed-tree generator;
    the serial front-end repeats one shared generator (legacy stream).
    """
    return np.array(
        [_one_replication(loss_model, timing, rng) for rng in rngs],
        dtype=float,
    )


def simulate_nofec(
    loss_model: LossModel,
    replications: int = 200,
    timing: Timing = PAPER_TIMING,
    rng: np.random.Generator | int | None = None,
) -> MCResult:
    """Estimate E[M] for ARQ without FEC under ``loss_model``."""
    if replications < 1:
        raise ValueError("need at least one replication")
    rng = resolve_rng(rng)
    samples = sample_chunk(loss_model, timing, itertools.repeat(rng, replications))
    return summarize(samples)
