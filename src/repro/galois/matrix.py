"""Matrix algebra over GF(2^m).

Provides exactly what a systematic MDS erasure code needs:

* Vandermonde matrix construction (the polynomial-evaluation view of RSE
  coding used in the paper's Section 2.1),
* Gauss-Jordan inversion and linear solving,
* systematisation of a generator matrix (the Rizzo construction: multiply an
  ``n x k`` Vandermonde by the inverse of its top ``k x k`` block so that the
  first ``k`` rows become the identity and the code stays MDS).

Matrices are plain 2-D numpy arrays of the field's dtype; the field instance
is passed explicitly so these functions stay stateless and easy to test.
"""

from __future__ import annotations

import numpy as np

from repro.galois.field import GaloisField

__all__ = [
    "SingularMatrixError",
    "vandermonde",
    "matmul",
    "identity",
    "invert",
    "solve",
    "systematic_generator",
]


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular.

    For a correctly-constructed MDS generator matrix this indicates a bug or
    a decode attempt with duplicated packet indices.
    """


def identity(field: GaloisField, size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over ``field``."""
    return np.eye(size, dtype=field.dtype)


def vandermonde(field: GaloisField, n_rows: int, n_cols: int, points: list[int] | None = None) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = x_i ** j`` over the field.

    The default evaluation points are ``alpha**i`` (alpha the primitive
    element), which guarantees the points are distinct for
    ``n_rows < 2^m - 1`` and therefore that every ``n_cols x n_cols``
    sub-matrix is invertible — the MDS property the decoder relies on.
    """
    if points is None:
        # alpha^0 .. alpha^(2^m - 2) are the 2^m - 1 distinct nonzero elements
        if n_rows > field.order - 1:
            raise ValueError(
                f"cannot pick {n_rows} distinct alpha powers in GF(2^{field.m})"
            )
        points = [field.alpha_power(i) for i in range(n_rows)]
    if len(points) != n_rows:
        raise ValueError("need exactly one evaluation point per row")
    if len(set(points)) != len(points):
        raise ValueError("evaluation points must be distinct for MDS codes")
    matrix = np.zeros((n_rows, n_cols), dtype=field.dtype)
    for i, x in enumerate(points):
        for j in range(n_cols):
            matrix[i, j] = field.power(x, j)
    return matrix


def matmul(
    field: GaloisField, a: np.ndarray, b: np.ndarray, backend=None
) -> np.ndarray:
    """Matrix product over the field.

    ``a`` is ``(r, s)``; ``b`` is ``(s, c)`` (or ``(s,)`` for a vector).
    Delegates to the batched :meth:`GaloisField.matmul` kernel; ``backend``
    optionally pins a GF-kernel backend (registry name or instance, see
    :mod:`repro.galois.backends`) instead of the process-wide selection.
    """
    a = np.asarray(a, dtype=field.dtype)
    b = np.asarray(b, dtype=field.dtype)
    if a.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return field.matmul(a, b, backend=backend)


def invert(field: GaloisField, matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix with Gauss-Jordan elimination over the field."""
    matrix = np.asarray(matrix, dtype=field.dtype)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix is not square: {matrix.shape}")
    work = matrix.copy()
    inverse = identity(field, size)

    for col in range(size):
        pivot_row = col
        while pivot_row < size and work[pivot_row, col] == 0:
            pivot_row += 1
        if pivot_row == size:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]

        pivot_inv = field.inverse(int(work[col, col]))
        work[col] = field.scale(pivot_inv, work[col])
        inverse[col] = field.scale(pivot_inv, inverse[col])

        # Eliminate the whole column at once: rows with a zero factor (and
        # the pivot row, masked below) pick up an all-zero outer-product row.
        factors = work[:, col].copy()
        factors[col] = 0
        work ^= field.multiply_outer(factors, work[col])
        inverse ^= field.multiply_outer(factors, inverse[col])
    return inverse


def solve(field: GaloisField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` over the field (b may be a matrix of columns)."""
    return matmul(field, invert(field, a), b)


def systematic_generator(field: GaloisField, k: int, n: int) -> np.ndarray:
    """Systematic MDS generator matrix ``G`` of shape ``(n, k)``.

    Construction (Rizzo '97): start from an ``n x k`` Vandermonde ``V`` whose
    every ``k x k`` sub-matrix is invertible, then right-multiply by the
    inverse of the top ``k x k`` block.  The result has the identity as its
    first ``k`` rows (data packets pass through unchanged) and retains the
    any-k-of-n decodability of the original.

    Row ``k + j`` gives the coefficients of parity packet ``j``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > field.order - 1:
        raise ValueError(
            f"block length n={n} exceeds GF(2^{field.m}) code length limit "
            f"{field.order - 1}"
        )
    v = vandermonde(field, n, k)
    top_inverse = invert(field, v[:k])
    generator = matmul(field, v, top_inverse)
    # The construction guarantees this, but it is cheap to assert once at
    # build time rather than debug a corrupted decode later.
    if not np.array_equal(generator[:k], identity(field, k)):
        raise AssertionError("systematisation failed to produce identity rows")
    return generator
