"""Discrete-log tables for the binary extension fields GF(2^m).

The RSE codec (:mod:`repro.fec.rse`) multiplies field elements millions of
times per encoded block, so multiplication is driven entirely by table
lookups.  This module builds, for a given symbol width ``m`` and primitive
polynomial, the classic pair of tables:

``exp``
    ``exp[i] = alpha**i`` for ``i`` in ``[0, 2^m - 2]``, where ``alpha`` is
    the primitive element (the polynomial ``x``).  The table is stored twice
    over so that ``exp[log[a] + log[b]]`` never needs an explicit modulo.

``log``
    The inverse map, ``log[alpha**i] = i``; ``log[0]`` is a sentinel that is
    never read by correct code.

Primitive polynomials are the standard ones used by McAuley's and Rizzo's
erasure coders, so codewords produced here are bit-compatible with those
implementations for the same generator-matrix construction.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Standard primitive polynomials, indexed by symbol width m.  The value is
#: the full polynomial including the x^m term, e.g. 0x11D = x^8+x^4+x^3+x^2+1.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0x7,
    3: 0xB,
    4: 0x13,
    5: 0x25,
    6: 0x43,
    7: 0x89,
    8: 0x11D,
    9: 0x211,
    10: 0x409,
    11: 0x805,
    12: 0x1053,
    13: 0x201B,
    14: 0x4443,
    15: 0x8003,
    16: 0x1100B,
}

#: Widths for which we are willing to build tables.  Above 16 bits the exp
#: table alone would need gigabytes.
SUPPORTED_WIDTHS = tuple(sorted(PRIMITIVE_POLYNOMIALS))


class FieldTableError(ValueError):
    """Raised when tables are requested for an unsupported configuration."""


def _dtype_for_width(m: int) -> np.dtype:
    """Smallest unsigned integer dtype that holds a GF(2^m) symbol."""
    if m <= 8:
        return np.dtype(np.uint8)
    if m <= 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def build_exp_log(m: int, primitive_poly: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Build the (doubled) ``exp`` and ``log`` tables for GF(2^m).

    Parameters
    ----------
    m:
        Symbol width in bits, ``2 <= m <= 16``.
    primitive_poly:
        Full primitive polynomial including the ``x^m`` term.  Defaults to the
        standard polynomial from :data:`PRIMITIVE_POLYNOMIALS`.

    Returns
    -------
    (exp, log):
        ``exp`` has length ``2 * (2^m - 1)`` (the cycle repeated twice) and
        ``log`` has length ``2^m``.  Both are numpy arrays of the smallest
        sufficient unsigned dtype for symbols / int32 for logs.
    """
    if m not in PRIMITIVE_POLYNOMIALS:
        raise FieldTableError(
            f"unsupported symbol width m={m}; supported: {SUPPORTED_WIDTHS}"
        )
    poly = PRIMITIVE_POLYNOMIALS[m] if primitive_poly is None else primitive_poly
    order = 1 << m
    if poly >> m != 1:
        raise FieldTableError(
            f"primitive polynomial {poly:#x} does not have degree m={m}"
        )

    n_nonzero = order - 1
    exp = np.zeros(2 * n_nonzero, dtype=_dtype_for_width(m))
    log = np.zeros(order, dtype=np.int32)

    value = 1
    for i in range(n_nonzero):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & order:
            value ^= poly
    if value != 1:
        raise FieldTableError(
            f"polynomial {poly:#x} is not primitive over GF(2^{m})"
        )
    exp[n_nonzero:] = exp[:n_nonzero]
    log[0] = -1  # sentinel; multiplication routines special-case zero
    return exp, log


@lru_cache(maxsize=None)
def _cached_exp_log(m: int, poly: int | None) -> tuple[np.ndarray, np.ndarray]:
    exp, log = build_exp_log(m, poly)
    exp.setflags(write=False)
    log.setflags(write=False)
    return exp, log


def exp_log_tables(m: int, primitive_poly: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Cached, read-only view of the tables for GF(2^m)."""
    return _cached_exp_log(m, primitive_poly)


@lru_cache(maxsize=4)
def full_multiplication_table(m: int) -> np.ndarray:
    """Dense ``(2^m, 2^m)`` multiplication table.

    Only sensible for small fields: GF(256) costs 64 KiB which is the sweet
    spot used by the fast encode path (a row of this table turns a
    constant-times-vector multiply into a single fancy-index).
    """
    if m > 8:
        raise FieldTableError(
            f"dense multiplication table for m={m} would need "
            f"{(1 << (2 * m)) / 2**20:.0f} MiB; use exp/log tables instead"
        )
    exp, log = exp_log_tables(m)
    order = 1 << m
    table = np.zeros((order, order), dtype=exp.dtype)
    nz = np.arange(1, order)
    logs = log[nz]
    table[1:, 1:] = exp[logs[:, None] + logs[None, :]]
    table.setflags(write=False)
    return table
