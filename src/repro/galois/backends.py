"""Pluggable GF-kernel backends behind a string-keyed registry.

The RSE hot path is one operation: the batched field matrix product
``(r, s) @ (B, s, c) -> (B, r, c)`` (see :meth:`GaloisField.matmul`).
This module makes the *kernel* that computes it swappable the same way
``repro.fec.registry`` makes the erasure code swappable: backends are
registered under plain string names, selected process-wide (``set_backend``,
the ``REPRO_GF_BACKEND`` environment variable, the experiments CLI's
``--gf-backend`` flag) or per call (``field.matmul(..., backend=...)``), and
every registered backend is held to bit-identity with the ``numpy``
reference oracle by the conformance suite in
``tests/property/test_prop_gf_backends.py``.

Backends
--------
``numpy``
    The PR-1 reference path: the shape heuristic over the table-gather and
    nibble-sliced kernels that live on :class:`GaloisField`.  This is the
    *oracle* — every other backend must reproduce its outputs bit for bit.
``bitsliced``
    Cache-blocked bitsliced kernel: the right operand is decomposed into
    ``m`` bit planes (built by branch-free doubling), and each output row
    is a pure word-wide XOR of the plane rows selected by the set bits of
    the coefficient matrix.  No per-element table gathers and no 16x
    nibble-table materialisation, which wins decisively in the paper's
    operating regime (parity rows ``h`` well below ``k``).
``table``
    Full product-table ``np.take`` path: one flat dense-table lookup per
    product term.  Only defined for ``m <= 8`` (the table is ``4^m``
    entries); structurally the simplest kernel, kept as a second
    independent implementation for differential testing.
``numba``
    Optional JIT kernel, auto-detected at import: registered always,
    *available* only when numba is importable.  Selecting it without numba
    raises :exc:`BackendUnavailableError`.

The oracle contract (DESIGN.md section 16): backends may differ in speed,
never in value.  A backend that cannot handle a field (``table`` and
``numba`` for ``m > 8``) says so via :meth:`GFBackend.supports`, and
:meth:`GaloisField.matmul` silently falls back to the oracle for that call
(counted on ``galois.backend_fallbacks``) — selection must never change
results or raise mid-encode.
"""

from __future__ import annotations

import abc
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, ClassVar, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.galois.field import GaloisField

try:  # the optional compiled backend; absence is a supported configuration
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-free hosts
    _numba = None

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "BackendUnavailableError",
    "GFBackend",
    "register_backend",
    "backend_names",
    "available_backend_names",
    "get_backend_class",
    "backend",
    "active_backend",
    "set_backend",
    "reset_backend",
    "use_backend",
    "temporary_backend",
]

#: Backend used when nothing is selected (the PR-1 reference oracle).
DEFAULT_BACKEND = "numpy"

#: Environment variable consulted by :func:`active_backend` when no backend
#: has been selected programmatically.  Crosses process boundaries, so
#: campaign / sharded-MC workers inherit the supervisor's selection.
ENV_BACKEND = "REPRO_GF_BACKEND"


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run here (missing optional dependency)."""


_REGISTRY: dict[str, type["GFBackend"]] = {}
_INSTANCES: dict[str, "GFBackend"] = {}

#: Explicit process-wide selection; ``None`` defers to :data:`ENV_BACKEND`.
_ACTIVE: "GFBackend | None" = None


class GFBackend(abc.ABC):
    """One implementation of the batched GF matrix-product kernel.

    Subclasses implement :meth:`matmul_blocks` over *validated* operands:
    ``a`` is a C-ordered ``(r, s)`` coefficient matrix and ``b3`` a
    ``(B, s, c)`` symbol batch, both already of ``field.dtype`` and in
    range.  Shape normalisation (vector / matrix / batch), observability
    and fallback all live in :meth:`GaloisField.matmul`; backends contain
    arithmetic only.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current process."""
        return True

    def supports(self, field: "GaloisField") -> bool:
        """Whether this backend implements kernels for ``field``.

        Unsupported fields silently fall back to the oracle at the call
        site — the selection knob must never change results.
        """
        return True

    @abc.abstractmethod
    def matmul_blocks(
        self, field: "GaloisField", a: np.ndarray, b3: np.ndarray
    ) -> np.ndarray:
        """``(r, s) @ (B, s, c) -> (B, r, c)`` over ``field``."""

    def scale_accumulate(
        self, field: "GaloisField", acc: np.ndarray, c: int, v: np.ndarray
    ) -> None:
        """In-place ``acc ^= c * v``; default delegates to the field tables.

        Backends with a cheaper constant-times-vector path override this;
        the conformance suite holds every override to bit-identity with
        the oracle.
        """
        field._scale_accumulate_reference(acc, c, v)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<GFBackend {self.name}>"


def register_backend(cls: type[GFBackend]) -> type[GFBackend]:
    """Class decorator: register ``cls`` under its :attr:`~GFBackend.name`.

    Re-registering the same class is a no-op (module reloads); claiming an
    existing name with a different class is an error.  Unavailable backends
    (e.g. ``numba`` without numba) are registered too — they show up in
    :func:`backend_names` but not :func:`available_backend_names`, and
    selecting them raises :exc:`BackendUnavailableError`.
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(
            f"backend class {cls.__name__} must define a non-empty `name`"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"backend name {name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def backend_names() -> list[str]:
    """Sorted names of every registered backend (available or not)."""
    return sorted(_REGISTRY)


def available_backend_names() -> list[str]:
    """Sorted names of the backends that can run in this process."""
    return sorted(name for name, cls in _REGISTRY.items() if cls.available())


def get_backend_class(name: str) -> type[GFBackend]:
    """The backend class registered under ``name`` (typo-friendly KeyError)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown GF backend {name!r}; registered backends: "
            f"{backend_names()}"
        ) from None


def backend(name: str) -> GFBackend:
    """The shared instance of backend ``name`` (constructed on first use).

    Raises
    ------
    KeyError
        For a name that was never registered.
    BackendUnavailableError
        For a registered backend whose optional dependency is missing.
    """
    cls = get_backend_class(name)
    if not cls.available():
        raise BackendUnavailableError(
            f"GF backend {name!r} is registered but unavailable here "
            f"(missing optional dependency); available: "
            f"{available_backend_names()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None or type(instance) is not cls:
        instance = cls()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> GFBackend:
    """The backend hot calls use when none is passed explicitly.

    Resolution order: a programmatic :func:`set_backend` selection, then
    the :data:`ENV_BACKEND` environment variable, then :data:`DEFAULT_BACKEND`.
    A bad environment value fails loudly here rather than silently running
    the wrong kernel.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    name = os.environ.get(ENV_BACKEND, "").strip() or DEFAULT_BACKEND
    _ACTIVE = backend(name)
    return _ACTIVE


def set_backend(name: str) -> GFBackend:
    """Select the process-wide backend; returns the instance selected."""
    global _ACTIVE
    _ACTIVE = backend(name)
    return _ACTIVE


def reset_backend() -> None:
    """Drop the programmatic selection (environment/default applies again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_backend(name: str) -> Iterator[GFBackend]:
    """Select backend ``name`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


@contextmanager
def temporary_backend(cls: type[GFBackend]) -> Iterator[type[GFBackend]]:
    """Register ``cls`` for the duration of a ``with`` block (tests only).

    The conformance suite uses this to prove it has teeth: a deliberately
    broken backend is registered, the battery is run against it, and the
    registry is restored afterwards even if the battery (correctly) fails.
    """
    name = cls.name
    previous = _REGISTRY.get(name)
    if previous is not None and previous is not cls:
        raise ValueError(f"backend name {name!r} already registered")
    register_backend(cls)
    try:
        yield cls
    finally:
        if previous is None:
            _REGISTRY.pop(name, None)
        else:
            _REGISTRY[name] = previous
        _INSTANCES.pop(name, None)
        global _ACTIVE
        if _ACTIVE is not None and _ACTIVE.name == name:
            _ACTIVE = None


# ----------------------------------------------------------------------
# numpy: the PR-1 reference oracle
# ----------------------------------------------------------------------
@register_backend
class NumpyBackend(GFBackend):
    """The reference path: PR 1's shape heuristic over gather / nibble-sliced.

    Every other backend is conformance-tested against this one, and every
    unsupported-field call falls back to it, so its outputs define
    correctness for the whole registry.
    """

    name = "numpy"

    def matmul_blocks(
        self, field: "GaloisField", a: np.ndarray, b3: np.ndarray
    ) -> np.ndarray:
        r, s = a.shape
        n_batch, _, c = b3.shape
        # The sliced kernel pays a fixed cost (bit planes + nibble tables)
        # per call; it only wins once the r*s*B selection work amortises it
        # and the rows are long enough for word-wide XORs to matter.
        row_bytes = c * field.dtype.itemsize
        if r >= 4 and row_bytes >= 256 and r * s * n_batch >= 48:
            return field._matmul_sliced(a, b3)
        return field._matmul_gather(a, b3)


# ----------------------------------------------------------------------
# bitsliced: cache-blocked bit-plane kernel
# ----------------------------------------------------------------------
@register_backend
class BitslicedBackend(GFBackend):
    """Cache-blocked bitsliced kernel (pure XOR selection over bit planes).

    The right operand is flattened to ``(s, B * c)`` and decomposed into
    ``m`` bit planes by repeated field doubling — branch-free shift/XOR
    passes, no gathers.  Output row ``j`` is then the XOR of the plane rows
    picked out by the set bits of ``a[j]``: one fancy row-gather plus one
    XOR reduction per output row, touching ``popcount(a[j]) ~ m/2 * s``
    payload rows.  Columns are processed in cache-sized blocks so the
    planes a selection reads are still resident from the build pass.

    Versus the nibble-sliced oracle kernel this skips the 16x nibble-table
    materialisation entirely, which is the dominant cost whenever the
    output is much shorter than the input (``r << s`` — exactly the
    paper's encode regime, ``h`` parities from ``k >> h`` data packets).
    """

    name = "bitsliced"

    #: Upper bound on the bytes of one column block's bit planes
    #: (``m * s * block``); sized to keep the planes L2-resident while the
    #: ``r`` selection passes re-read them.
    _PLANE_BLOCK_BYTES = 1 << 21

    def matmul_blocks(
        self, field: "GaloisField", a: np.ndarray, b3: np.ndarray
    ) -> np.ndarray:
        m = field.m
        dtype = field.dtype
        itemsize = dtype.itemsize
        r, s = a.shape
        n_batch, _, c = b3.shape
        if r == 0 or s == 0 or c == 0 or n_batch == 0:
            return np.zeros((n_batch, r, c), dtype=dtype)

        # flatten the batch onto the column axis and pad to whole uint64
        # words so every selection XOR is word-wide
        symbols_per_word = 8 // itemsize
        total = n_batch * c
        total_pad = -(-total // symbols_per_word) * symbols_per_word
        flat = np.zeros((s, total_pad), dtype=dtype)
        flat[:, :total] = b3.transpose(1, 0, 2).reshape(s, total)

        # per-output-row selection index lists into the (m * s) plane rows;
        # bit b of a[j, i] selects plane row  b * s + i
        bits = ((a[:, None, :].astype(np.uint32) >> np.arange(m)[None, :, None]) & 1).astype(bool)
        selections = [np.flatnonzero(bits[j]) for j in range(r)]

        words_total = total_pad * itemsize // 8
        out64 = np.zeros((r, words_total), dtype=np.uint64)
        flat64 = flat.view(np.uint64)

        block_words = max(
            512, self._PLANE_BLOCK_BYTES // max(1, m * s * 8)
        )
        mask = dtype.type(field.order - 1)
        reduce_term = dtype.type(field.primitive_poly & (field.order - 1))
        top_shift = m - 1
        for w0 in range(0, words_total, block_words):
            block = np.ascontiguousarray(flat64[:, w0:w0 + block_words])
            block_sym = block.view(dtype)  # (s, block columns as symbols)
            # bit planes by doubling: x*2 = (x << 1) ^ (reduce if top bit)
            planes = np.empty((m,) + block_sym.shape, dtype=dtype)
            planes[0] = block_sym
            for bit in range(1, m):
                prev = planes[bit - 1]
                doubled = planes[bit]
                np.left_shift(prev, 1, out=doubled)
                doubled &= mask
                doubled ^= (prev >> top_shift) * reduce_term
            plane_rows = planes.reshape(m * s, -1).view(np.uint64)
            for j in range(r):
                chosen = selections[j]
                if chosen.size:
                    out64[j, w0:w0 + block_words] = np.bitwise_xor.reduce(
                        plane_rows[chosen], axis=0
                    )
        out = (
            out64.view(dtype)[:, :total]
            .reshape(r, n_batch, c)
            .transpose(1, 0, 2)
        )
        return np.ascontiguousarray(out)


# ----------------------------------------------------------------------
# table: full product-table np.take kernel
# ----------------------------------------------------------------------
@register_backend
class TableBackend(GFBackend):
    """Dense product-table kernel: one flat ``np.take`` per product term.

    The full ``2^m x 2^m`` multiplication table is flattened once and every
    product becomes ``table[a * 2^m + b]`` — no logs, no zero masking, no
    modulo.  The reduction axis is chunked to bound the scratch tensor,
    mirroring the oracle's gather kernel.  Only defined for ``m <= 8``
    (the table is ``4^m`` entries); wider fields fall back to the oracle
    at the call site via :meth:`supports`.
    """

    name = "table"

    #: Scratch elements allowed for one index/product tensor (~4 MiB).
    _SCRATCH = 1 << 22

    def supports(self, field: "GaloisField") -> bool:
        return field.m <= 8

    def matmul_blocks(
        self, field: "GaloisField", a: np.ndarray, b3: np.ndarray
    ) -> np.ndarray:
        flat_table = field._mul_table.reshape(-1)
        r, s = a.shape
        n_batch, _, c = b3.shape
        out = np.zeros((n_batch, r, c), dtype=field.dtype)
        shifted = a.astype(np.intp) << field.m  # row index -> flat offset
        chunk = max(1, self._SCRATCH // max(1, n_batch * r * c))
        for s0 in range(0, s, chunk):
            index = (
                shifted[None, :, s0:s0 + chunk, None]
                + b3[:, None, s0:s0 + chunk, :]
            )
            products = flat_table.take(index)
            out ^= np.bitwise_xor.reduce(products, axis=2)
        return out

    def scale_accumulate(
        self, field: "GaloisField", acc: np.ndarray, c: int, v: np.ndarray
    ) -> None:
        if field.m > 8:
            field._scale_accumulate_reference(acc, c, v)
            return
        if c == 0:
            return
        v = np.asarray(v, dtype=field.dtype)
        if c == 1:
            np.bitwise_xor(acc, v, out=acc)
            return
        flat_table = field._mul_table.reshape(-1)
        # widen before the offset add: the flat index (c << m) + v does not
        # fit the symbol dtype
        index = v.astype(np.intp) + (c << field.m)
        np.bitwise_xor(acc, flat_table.take(index), out=acc)


# ----------------------------------------------------------------------
# numba: optional JIT kernel (auto-detected at import)
# ----------------------------------------------------------------------
_NUMBA_KERNEL = None


def _numba_kernel():
    """Compile (once) and return the JIT matmul kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        @_numba.njit(cache=False, nogil=True)
        def kernel(a, b3, table, out):  # pragma: no cover - requires numba
            r, s = a.shape
            n_batch, _, c = b3.shape
            for batch in range(n_batch):
                for j in range(r):
                    for i in range(s):
                        coeff = a[j, i]
                        if coeff == 0:
                            continue
                        row = table[coeff]
                        for col in range(c):
                            out[batch, j, col] ^= row[b3[batch, i, col]]

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


@register_backend
class NumbaBackend(GFBackend):
    """JIT-compiled scalar-loop kernel (optional; needs numba installed).

    The loop nest a C coder would write, compiled by numba: per-batch,
    per-output-row accumulation through the dense multiplication table with
    explicit zero-coefficient skips.  Registered unconditionally so the
    name is always discoverable; :meth:`available` is False without numba
    and selection then raises :exc:`BackendUnavailableError`.  ``m <= 8``
    only (the dense table); wider fields fall back to the oracle.
    """

    name = "numba"

    def __init__(self) -> None:
        if _numba is None:  # pragma: no cover - constructor guarded upstream
            raise BackendUnavailableError(
                "the numba backend needs the optional `numba` package"
            )

    @classmethod
    def available(cls) -> bool:
        return _numba is not None

    def supports(self, field: "GaloisField") -> bool:
        return field.m <= 8

    def matmul_blocks(
        self, field: "GaloisField", a: np.ndarray, b3: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        r, s = a.shape
        n_batch, _, c = b3.shape
        out = np.zeros((n_batch, r, c), dtype=field.dtype)
        if r and s and c and n_batch:
            _numba_kernel()(
                np.ascontiguousarray(a),
                np.ascontiguousarray(b3),
                field._mul_table,
                out,
            )
        return out
