"""Arithmetic in the binary extension fields GF(2^m).

:class:`GaloisField` wraps the tables from :mod:`repro.galois.tables` with
scalar and numpy-vectorised operations.  The class is deliberately *not* an
element wrapper — elements are plain Python ints or numpy arrays of the
field's dtype, which keeps the hot encode/decode loops allocation-free.

Example
-------
>>> gf = GF256
>>> gf.multiply(0x57, 0x83)
193
>>> gf.divide(gf.multiply(7, 11), 11)
7
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.galois.tables import (
    PRIMITIVE_POLYNOMIALS,
    FieldTableError,
    _dtype_for_width,
    exp_log_tables,
    full_multiplication_table,
)

__all__ = ["GaloisField", "GF16", "GF256", "GF65536", "field_for_width"]


class GaloisField:
    """The finite field GF(2^m) with table-driven arithmetic.

    Parameters
    ----------
    m:
        Symbol width in bits (2..16).
    primitive_poly:
        Optional override of the field's primitive polynomial (full form,
        including the ``x^m`` term).

    Notes
    -----
    Addition and subtraction are both XOR.  Multiplication and division use
    discrete-log tables; for ``m <= 8`` a dense multiplication table is also
    available and used by :meth:`scale` for constant-times-vector products.
    """

    __slots__ = ("m", "order", "primitive_poly", "dtype", "_exp", "_log", "_mul_table")

    def __init__(self, m: int, primitive_poly: int | None = None):
        if m not in PRIMITIVE_POLYNOMIALS:
            raise FieldTableError(
                f"unsupported symbol width m={m}; "
                f"supported widths: {sorted(PRIMITIVE_POLYNOMIALS)}"
            )
        self.m = m
        self.order = 1 << m
        self.primitive_poly = (
            PRIMITIVE_POLYNOMIALS[m] if primitive_poly is None else primitive_poly
        )
        self.dtype = _dtype_for_width(m)
        self._exp, self._log = exp_log_tables(m, primitive_poly)
        self._mul_table = full_multiplication_table(m) if m <= 8 else None

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition (== subtraction == XOR)."""
        return a ^ b

    subtract = add

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication of two scalars."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        diff = int(self._log[a]) - int(self._log[b])
        return int(self._exp[diff % (self.order - 1)])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a nonzero scalar."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(self._exp[(self.order - 1) - int(self._log[a])])

    def power(self, a: int, exponent: int) -> int:
        """``a ** exponent`` in the field (exponent may be any integer)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        log_a = int(self._log[a])
        return int(self._exp[(log_a * exponent) % (self.order - 1)])

    def alpha_power(self, exponent: int) -> int:
        """``alpha ** exponent`` for the primitive element alpha."""
        return int(self._exp[exponent % (self.order - 1)])

    # ------------------------------------------------------------------
    # vector operations (numpy)
    # ------------------------------------------------------------------
    def _as_symbols(self, a: np.ndarray | int) -> np.ndarray:
        arr = np.asarray(a, dtype=self.dtype)
        return arr

    def multiply_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field product of two symbol arrays (broadcasting)."""
        a = self._as_symbols(a)
        b = self._as_symbols(b)
        logs = self._log[a] + self._log[b]
        out = self._exp[logs % (self.order - 1)]
        zero = (a == 0) | (b == 0)
        if zero.any():
            out = np.where(zero, self.dtype.type(0), out)
        return out.astype(self.dtype, copy=False)

    def scale(self, c: int, v: np.ndarray) -> np.ndarray:
        """Constant-times-vector product ``c * v`` over the field.

        This is the inner operation of RSE encoding; for small fields it is a
        single fancy-index into the dense multiplication table.
        """
        v = self._as_symbols(v)
        if c == 0:
            return np.zeros_like(v)
        if c == 1:
            return v.copy()
        if self._mul_table is not None:
            return self._mul_table[c][v]
        log_c = int(self._log[c])
        out = self._exp[(self._log[v] + log_c) % (self.order - 1)]
        out = np.where(v == 0, self.dtype.type(0), out)
        return out.astype(self.dtype, copy=False)

    def scale_accumulate(
        self, acc: np.ndarray, c: int, v: np.ndarray, backend=None
    ) -> None:
        """In-place ``acc ^= c * v`` — the encode/decode hot loop.

        Dispatches through the selected GF backend (see
        :mod:`repro.galois.backends`); every backend is conformance-tested
        to produce bit-identical accumulations.
        """
        self._resolve_backend(backend)[0].scale_accumulate(self, acc, c, v)

    def _scale_accumulate_reference(
        self, acc: np.ndarray, c: int, v: np.ndarray
    ) -> None:
        """The table-driven reference accumulation (the backend oracle)."""
        if c == 0:
            return
        if c == 1:
            np.bitwise_xor(acc, self._as_symbols(v), out=acc)
            return
        np.bitwise_xor(acc, self.scale(c, v), out=acc)

    def dot(self, coefficients: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """GF inner product: ``sum_i coefficients[i] * vectors[i]``.

        ``vectors`` has shape ``(len(coefficients), symbols)``; the result has
        shape ``(symbols,)``.
        """
        vectors = self._as_symbols(vectors)
        acc = np.zeros(vectors.shape[1:], dtype=self.dtype)
        for c, row in zip(coefficients, vectors):
            self.scale_accumulate(acc, int(c), row)
        return acc

    # ------------------------------------------------------------------
    # batched kernels
    # ------------------------------------------------------------------
    # These replace the per-row Python loops of the RSE hot path with one
    # table gather plus an XOR reduction.  For m <= 8 the dense
    # multiplication table makes zero handling implicit (row/column 0 of
    # the table are zero); the exp/log path masks zeros explicitly, using
    # the same ``% (order - 1)`` idiom as :meth:`multiply_vec` to keep the
    # ``log[0] = -1`` sentinel out of range trouble.

    def _products(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise products of two broadcastable symbol arrays."""
        if self._mul_table is not None:
            return self._mul_table[a, b]
        logs = self._log[a] + self._log[b]
        out = self._exp[logs % (self.order - 1)]
        zero = (a == 0) | (b == 0)
        return np.where(zero, self.dtype.type(0), out).astype(self.dtype, copy=False)

    def multiply_outer(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Field outer product: ``out[i, j] = u[i] * v[j]``.

        The batched building block of Gauss-Jordan elimination: one call
        eliminates a whole column instead of one row at a time.
        """
        u = self._as_symbols(u)
        v = self._as_symbols(v)
        return self._products(u[:, None], v[None, :])

    def scale_accumulate_many(
        self, acc: np.ndarray, coefficients: np.ndarray, vectors: np.ndarray
    ) -> None:
        """In-place ``acc ^= sum_i coefficients[i] * vectors[i]`` (batched).

        ``coefficients`` has shape ``(t,)`` and ``vectors`` ``(t, S)``; the
        whole linear combination is one table gather and one XOR reduction
        instead of ``t`` Python-level :meth:`scale_accumulate` calls.
        """
        coefficients = self._as_symbols(coefficients)
        vectors = self._as_symbols(vectors)
        if coefficients.shape[0] == 0:
            return
        products = self._products(coefficients[:, None], vectors)
        np.bitwise_xor(acc, np.bitwise_xor.reduce(products, axis=0), out=acc)

    #: Scratch elements allowed for one matmul gather tensor (~4 MiB of
    #: uint8); the reduction axis is chunked to stay under this.
    _MATMUL_SCRATCH = 1 << 22
    #: Largest batch slab (bytes of right-operand payload) the nibble-sliced
    #: kernel materialises tables for at once.
    _SLICED_SLAB = 1 << 24

    def _resolve_backend(self, backend):
        """``(backend instance, fell_back)`` for a knob value.

        ``backend`` may be ``None`` (use the process-wide selection), a
        registry name, or a live :class:`~repro.galois.backends.GFBackend`.
        A backend that does not support this field falls back to the
        ``numpy`` oracle — selection must never change results or raise
        mid-encode (the oracle contract, DESIGN.md section 16).
        """
        from repro.galois import backends as _backends

        if backend is None:
            chosen = _backends.active_backend()
        elif isinstance(backend, str):
            chosen = _backends.backend(backend)
        else:
            chosen = backend
        if not chosen.supports(self):
            return _backends.backend("numpy"), True
        return chosen, False

    def matmul(self, a: np.ndarray, b: np.ndarray, backend=None) -> np.ndarray:
        """Matrix product over the field, vectorised.

        ``a`` has shape ``(r, s)``; ``b`` may be a vector ``(s,)``, a matrix
        ``(s, c)`` or a batch of matrices ``(B, s, c)`` (one product per
        batch entry, as used by :meth:`repro.fec.rse.RSECodec.encode_blocks`).

        The kernel comes from the pluggable backend registry
        (:mod:`repro.galois.backends`): ``backend`` may be a registry name
        or instance, and defaults to the process-wide selection
        (``set_backend`` / ``REPRO_GF_BACKEND``, falling back to the
        ``numpy`` reference oracle).  Every registered backend is
        conformance-tested to bit-identity with the oracle, so this knob
        changes speed, never values.

        The oracle itself selects between two kernels by problem shape:

        * a *gather* kernel — one multiplication-table lookup per product
          term, reduction axis chunked to keep the scratch tensor small;
        * a *nibble-sliced* kernel for packet-sized payloads (the
          gf-complete "split table" trick): the ``2^b * row`` multiples of
          ``b`` are built once, the 15 nonzero nibble multiples derived
          from them by XOR (GF(2^m) scaling is linear), and each output row
          is then a pure word-wide XOR of selected rows — no per-element
          table gathers in the ``r * s``-sized inner loop at all.
        """
        a = self._as_symbols(a)
        b = self._as_symbols(b)
        if a.ndim != 2:
            raise ValueError(f"left operand must be 2-D, got shape {a.shape}")
        vector = b.ndim == 1
        if vector:
            b = b[:, None]
        batched = b.ndim == 3
        b3 = b if batched else b[None]
        r, s = a.shape
        n_batch, s_b, c = b3.shape
        if s != s_b:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")

        chosen, fell_back = self._resolve_backend(backend)
        telemetry = obs.is_enabled()
        started = time.perf_counter() if telemetry else 0.0
        out = chosen.matmul_blocks(self, a, b3)
        if telemetry:
            obs.counter(
                "galois.matmul_calls", m=self.m, backend=chosen.name
            ).inc()
            obs.counter("galois.product_terms", m=self.m).inc(
                r * s * c * n_batch
            )
            obs.histogram(
                "galois.kernel_seconds", backend=chosen.name
            ).observe(time.perf_counter() - started)
            if fell_back:
                obs.counter("galois.backend_fallbacks", m=self.m).inc()
        if batched:
            return out
        return out[0, :, 0] if vector else out[0]

    def _matmul_gather(self, a: np.ndarray, b3: np.ndarray) -> np.ndarray:
        """Table-gather product kernel: ``(r, s) @ (B, s, c) -> (B, r, c)``."""
        r, s = a.shape
        n_batch, _, c = b3.shape
        out = np.zeros((n_batch, r, c), dtype=self.dtype)
        chunk = max(1, self._MATMUL_SCRATCH // max(1, n_batch * r * c))
        for s0 in range(0, s, chunk):
            a_chunk = a[None, :, s0:s0 + chunk, None]     # (1, r, t, 1)
            b_chunk = b3[:, None, s0:s0 + chunk, :]       # (B, 1, t, c)
            products = self._products(a_chunk, b_chunk)   # (B, r, t, c)
            out ^= np.bitwise_xor.reduce(products, axis=2)
        return out

    def _matmul_sliced(self, a: np.ndarray, b3: np.ndarray) -> np.ndarray:
        """Nibble-sliced product kernel: ``(r, s) @ (B, s, c) -> (B, r, c)``."""
        n_batch, s, c = b3.shape
        out = np.empty((n_batch, a.shape[0], c), dtype=self.dtype)
        rows_per_slab = max(1, self._SLICED_SLAB // max(1, 16 * s * c))
        for b0 in range(0, n_batch, rows_per_slab):
            out[b0:b0 + rows_per_slab] = self._matmul_sliced_slab(
                a, b3[b0:b0 + rows_per_slab]
            )
        return out

    def _matmul_sliced_slab(self, a: np.ndarray, b3: np.ndarray) -> np.ndarray:
        r, s = a.shape
        n_batch, _, c = b3.shape
        itemsize = self.dtype.itemsize
        # pad rows to a whole number of 8-byte words for the uint64 view
        symbols_per_word = 8 // itemsize
        c_pad = -(-c // symbols_per_word) * symbols_per_word
        words = c_pad * itemsize // 8

        # bit multiples: planes[bit] = (2^bit) * row for every row of b,
        # built by repeated doubling — x*2 = (x << 1) ^ (reduce if x's top
        # bit is set) — which is branch-free SIMD arithmetic, no gathers
        flat = np.zeros((s * n_batch, c_pad), dtype=self.dtype)
        flat[:, :c] = b3.transpose(1, 0, 2).reshape(s * n_batch, c)
        planes = np.empty((self.m, s * n_batch, c_pad), dtype=self.dtype)
        planes[0] = flat
        mask = self.dtype.type(self.order - 1)
        reduce = self.dtype.type(self.primitive_poly & (self.order - 1))
        top_shift = self.m - 1
        for bit in range(1, self.m):
            prev = planes[bit - 1]
            doubled = planes[bit]
            np.left_shift(prev, 1, out=doubled)
            doubled &= mask
            doubled ^= (prev >> top_shift) * reduce
        planes64 = planes.view(np.uint64).reshape(self.m, s, n_batch, words)

        # nibble multiples by linearity: (u ^ v) * x == u*x ^ v*x
        n_positions = -(-self.m // 4)
        tables = np.zeros((n_positions, 16, s, n_batch, words), dtype=np.uint64)
        for position in range(n_positions):
            for value in range(1, 16):
                low_bit = value & -value
                rest = tables[position, value ^ low_bit]
                bit = 4 * position + low_bit.bit_length() - 1
                if bit < self.m:
                    tables[position, value] = rest ^ planes64[bit]
                else:
                    tables[position, value] = rest

        nibbles = np.stack(
            [(a >> (4 * q)) & 15 for q in range(n_positions)]
        ).astype(np.intp)  # (positions, r, s)
        row_index = np.arange(s)
        out64 = np.empty((n_batch, r, words), dtype=np.uint64)
        for j in range(r):
            selected = tables[0][nibbles[0, j], row_index]  # (s, B, words)
            for position in range(1, n_positions):
                selected ^= tables[position][nibbles[position, j], row_index]
            out64[:, j] = np.bitwise_xor.reduce(selected, axis=0)
        out = out64.view(self.dtype).reshape(n_batch, r, c_pad)
        return np.ascontiguousarray(out[:, :, :c])

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def elements(self) -> np.ndarray:
        """All field elements ``0 .. 2^m - 1`` as a symbol array."""
        return np.arange(self.order, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GaloisField(2^{self.m}, poly={self.primitive_poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GaloisField)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


#: The fields used in practice.  GF256 matches Rizzo's software coder
#: (m = 8); GF65536 matches McAuley's large-symbol hardware proposal.
GF16 = GaloisField(4)
GF256 = GaloisField(8)
GF65536 = GaloisField(16)

_STANDARD_FIELDS = {4: GF16, 8: GF256, 16: GF65536}


def field_for_width(m: int) -> GaloisField:
    """Return the shared field instance for width ``m`` (building if needed)."""
    if m in _STANDARD_FIELDS:
        return _STANDARD_FIELDS[m]
    return GaloisField(m)
