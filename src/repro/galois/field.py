"""Arithmetic in the binary extension fields GF(2^m).

:class:`GaloisField` wraps the tables from :mod:`repro.galois.tables` with
scalar and numpy-vectorised operations.  The class is deliberately *not* an
element wrapper — elements are plain Python ints or numpy arrays of the
field's dtype, which keeps the hot encode/decode loops allocation-free.

Example
-------
>>> gf = GF256
>>> gf.multiply(0x57, 0x83)
193
>>> gf.divide(gf.multiply(7, 11), 11)
7
"""

from __future__ import annotations

import numpy as np

from repro.galois.tables import (
    PRIMITIVE_POLYNOMIALS,
    FieldTableError,
    _dtype_for_width,
    exp_log_tables,
    full_multiplication_table,
)

__all__ = ["GaloisField", "GF16", "GF256", "GF65536", "field_for_width"]


class GaloisField:
    """The finite field GF(2^m) with table-driven arithmetic.

    Parameters
    ----------
    m:
        Symbol width in bits (2..16).
    primitive_poly:
        Optional override of the field's primitive polynomial (full form,
        including the ``x^m`` term).

    Notes
    -----
    Addition and subtraction are both XOR.  Multiplication and division use
    discrete-log tables; for ``m <= 8`` a dense multiplication table is also
    available and used by :meth:`scale` for constant-times-vector products.
    """

    __slots__ = ("m", "order", "primitive_poly", "dtype", "_exp", "_log", "_mul_table")

    def __init__(self, m: int, primitive_poly: int | None = None):
        if m not in PRIMITIVE_POLYNOMIALS:
            raise FieldTableError(
                f"unsupported symbol width m={m}; "
                f"supported widths: {sorted(PRIMITIVE_POLYNOMIALS)}"
            )
        self.m = m
        self.order = 1 << m
        self.primitive_poly = (
            PRIMITIVE_POLYNOMIALS[m] if primitive_poly is None else primitive_poly
        )
        self.dtype = _dtype_for_width(m)
        self._exp, self._log = exp_log_tables(m, primitive_poly)
        self._mul_table = full_multiplication_table(m) if m <= 8 else None

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition (== subtraction == XOR)."""
        return a ^ b

    subtract = add

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication of two scalars."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[int(self._log[a]) + int(self._log[b])])

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError for b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        diff = int(self._log[a]) - int(self._log[b])
        return int(self._exp[diff % (self.order - 1)])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a nonzero scalar."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(self._exp[(self.order - 1) - int(self._log[a])])

    def power(self, a: int, exponent: int) -> int:
        """``a ** exponent`` in the field (exponent may be any integer)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        log_a = int(self._log[a])
        return int(self._exp[(log_a * exponent) % (self.order - 1)])

    def alpha_power(self, exponent: int) -> int:
        """``alpha ** exponent`` for the primitive element alpha."""
        return int(self._exp[exponent % (self.order - 1)])

    # ------------------------------------------------------------------
    # vector operations (numpy)
    # ------------------------------------------------------------------
    def _as_symbols(self, a: np.ndarray | int) -> np.ndarray:
        arr = np.asarray(a, dtype=self.dtype)
        return arr

    def multiply_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field product of two symbol arrays (broadcasting)."""
        a = self._as_symbols(a)
        b = self._as_symbols(b)
        logs = self._log[a] + self._log[b]
        out = self._exp[logs % (self.order - 1)]
        zero = (a == 0) | (b == 0)
        if zero.any():
            out = np.where(zero, self.dtype.type(0), out)
        return out.astype(self.dtype, copy=False)

    def scale(self, c: int, v: np.ndarray) -> np.ndarray:
        """Constant-times-vector product ``c * v`` over the field.

        This is the inner operation of RSE encoding; for small fields it is a
        single fancy-index into the dense multiplication table.
        """
        v = self._as_symbols(v)
        if c == 0:
            return np.zeros_like(v)
        if c == 1:
            return v.copy()
        if self._mul_table is not None:
            return self._mul_table[c][v]
        log_c = int(self._log[c])
        out = self._exp[(self._log[v] + log_c) % (self.order - 1)]
        out = np.where(v == 0, self.dtype.type(0), out)
        return out.astype(self.dtype, copy=False)

    def scale_accumulate(self, acc: np.ndarray, c: int, v: np.ndarray) -> None:
        """In-place ``acc ^= c * v`` — the encode/decode hot loop."""
        if c == 0:
            return
        if c == 1:
            np.bitwise_xor(acc, self._as_symbols(v), out=acc)
            return
        np.bitwise_xor(acc, self.scale(c, v), out=acc)

    def dot(self, coefficients: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """GF inner product: ``sum_i coefficients[i] * vectors[i]``.

        ``vectors`` has shape ``(len(coefficients), symbols)``; the result has
        shape ``(symbols,)``.
        """
        vectors = self._as_symbols(vectors)
        acc = np.zeros(vectors.shape[1:], dtype=self.dtype)
        for c, row in zip(coefficients, vectors):
            self.scale_accumulate(acc, int(c), row)
        return acc

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def elements(self) -> np.ndarray:
        """All field elements ``0 .. 2^m - 1`` as a symbol array."""
        return np.arange(self.order, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GaloisField(2^{self.m}, poly={self.primitive_poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GaloisField)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


#: The fields used in practice.  GF256 matches Rizzo's software coder
#: (m = 8); GF65536 matches McAuley's large-symbol hardware proposal.
GF16 = GaloisField(4)
GF256 = GaloisField(8)
GF65536 = GaloisField(16)

_STANDARD_FIELDS = {4: GF16, 8: GF256, 16: GF65536}


def field_for_width(m: int) -> GaloisField:
    """Return the shared field instance for width ``m`` (building if needed)."""
    if m in _STANDARD_FIELDS:
        return _STANDARD_FIELDS[m]
    return GaloisField(m)
