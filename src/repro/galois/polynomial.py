"""Polynomials over GF(2^m) — the paper's Section 2.1, verbatim.

The paper defines RSE coding through the polynomial view::

    F(X) = d_1 + d_2 X + ... + d_k X^(k-1)            (Equation 1)
    p_j  = F(alpha^(j-1)),  j = 1 .. n-k

with the data packets as coefficients and parities as evaluations at
powers of the primitive element.  :class:`GFPolynomial` implements the
algebra (Horner evaluation, arithmetic, Lagrange interpolation) and
:class:`PolynomialCodec` implements exactly that coding scheme.

This is the *non-systematic-parity* ancestor of the production codec in
:mod:`repro.fec.rse` (which post-multiplies a Vandermonde matrix to make
the data rows an identity).  It is retained for fidelity to the paper's
math and as an independent correctness oracle: both codecs must agree
that any k of the n packets reconstruct the data.
"""

from __future__ import annotations

import numpy as np

from repro.galois.field import GF256, GaloisField
from repro.galois.matrix import invert, matmul

__all__ = ["GFPolynomial", "PolynomialCodec"]


class GFPolynomial:
    """A polynomial with coefficients in GF(2^m).

    Coefficients are stored low-degree first; ``coefficients[i]`` is the
    coefficient of ``X^i``.  Trailing zeros are trimmed, so the zero
    polynomial has an empty coefficient vector and degree -1.
    """

    def __init__(self, field: GaloisField, coefficients):
        self.field = field
        coeffs = [int(c) for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        if any(not 0 <= c < field.order for c in coeffs):
            raise ValueError("coefficient out of field range")
        self.coefficients = coeffs

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def __call__(self, x: int) -> int:
        """Evaluate by Horner's rule."""
        result = 0
        for coefficient in reversed(self.coefficients):
            result = self.field.multiply(result, x) ^ coefficient
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFPolynomial)
            and other.field == self.field
            and other.coefficients == self.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.field, tuple(self.coefficients)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GFPolynomial({self.coefficients})"

    # ------------------------------------------------------------------
    def __add__(self, other: "GFPolynomial") -> "GFPolynomial":
        self._check(other)
        longer, shorter = self.coefficients, other.coefficients
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        out = list(longer)
        for i, c in enumerate(shorter):
            out[i] ^= c
        return GFPolynomial(self.field, out)

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "GFPolynomial | int") -> "GFPolynomial":
        if isinstance(other, int):
            return GFPolynomial(
                self.field,
                [self.field.multiply(other, c) for c in self.coefficients],
            )
        self._check(other)
        if not self.coefficients or not other.coefficients:
            return GFPolynomial(self.field, [])
        out = [0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(other.coefficients):
                out[i + j] ^= self.field.multiply(a, b)
        return GFPolynomial(self.field, out)

    __rmul__ = __mul__

    def _check(self, other: "GFPolynomial") -> None:
        if other.field != self.field:
            raise ValueError("polynomials over different fields")

    # ------------------------------------------------------------------
    @classmethod
    def interpolate(
        cls, field: GaloisField, points: list[tuple[int, int]]
    ) -> "GFPolynomial":
        """Lagrange interpolation: the unique polynomial of degree
        < len(points) passing through the given (x, y) pairs."""
        xs = [x for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x")
        result = cls(field, [])
        for i, (x_i, y_i) in enumerate(points):
            if y_i == 0:
                continue
            basis = cls(field, [1])
            denominator = 1
            for j, (x_j, _) in enumerate(points):
                if i == j:
                    continue
                basis = basis * cls(field, [x_j, 1])  # (X - x_j) == (X + x_j)
                denominator = field.multiply(denominator, x_i ^ x_j)
            scale = field.multiply(y_i, field.inverse(denominator))
            result = result + basis * scale
        return result


class PolynomialCodec:
    """Equation (1) as a codec: data = coefficients, parities = F(alpha^j).

    Packets are byte strings interpreted symbol-wise (GF(2^8) only, for
    simplicity — this class exists for fidelity/oracle purposes, the
    production path is :class:`repro.fec.rse.RSECodec`).

    Block layout matches the paper: indices ``0..k-1`` carry the data
    packets ``d_1..d_k`` themselves, index ``k + j`` carries the parity
    ``p_{j+1} = F(alpha^j)``.
    """

    def __init__(self, k: int, h: int, field: GaloisField = GF256):
        if k < 1 or h < 0:
            raise ValueError("need k >= 1 and h >= 0")
        if k + h > field.order - 1:
            raise ValueError("block longer than the field supports")
        self.k = k
        self.h = h
        self.n = k + h
        self.field = field
        #: evaluation points alpha^0 .. alpha^(h-1), as in the paper
        self.points = [field.alpha_power(j) for j in range(h)]

    # ------------------------------------------------------------------
    def encode(self, data: list[bytes]) -> list[bytes]:
        """Parities ``p_j = F(alpha^(j-1))``, computed per symbol column."""
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data packets")
        lengths = {len(packet) for packet in data}
        if len(lengths) != 1:
            raise ValueError("packets must have equal length")
        matrix = np.vstack([np.frombuffer(p, dtype=np.uint8) for p in data])
        parities = []
        for x in self.points:
            # Horner over the packet axis, vectorised
            acc = np.zeros(matrix.shape[1], dtype=np.uint8)
            for row in matrix[::-1]:
                acc = self.field.scale(x, acc) ^ row
            parities.append(acc.tobytes())
        return parities

    # ------------------------------------------------------------------
    def decode(self, received: dict[int, bytes]) -> list[bytes]:
        """Reconstruct all data packets from any ``k`` block packets.

        Received data packets give coefficients directly; received
        parities give evaluations.  The mixed system is solved once as a
        k x k GF linear system (rows: unit vectors for known coefficients,
        Vandermonde rows for evaluations), then applied to every symbol
        column.
        """
        if len(received) < self.k:
            raise ValueError(f"need at least {self.k} packets")
        indices = sorted(received)[: self.k]
        if indices[-1] >= self.n or indices[0] < 0:
            raise ValueError("packet index out of range")

        rows = np.zeros((self.k, self.k), dtype=self.field.dtype)
        for row, index in enumerate(indices):
            if index < self.k:
                rows[row, index] = 1
            else:
                x = self.points[index - self.k]
                for power in range(self.k):
                    rows[row, power] = self.field.power(x, power)
        inverse = invert(self.field, rows)

        stacked = np.vstack(
            [np.frombuffer(received[i], dtype=np.uint8) for i in indices]
        )
        coefficients = matmul(self.field, inverse, stacked)
        return [coefficients[i].tobytes() for i in range(self.k)]

    def decode_by_interpolation(self, evaluations: dict[int, bytes]) -> list[bytes]:
        """Pure-Lagrange decode from ``k`` *parity* packets only.

        Interpolates F symbol-column by symbol-column — the textbook path,
        quadratic per column and used as a cross-check oracle in tests.
        """
        if len(evaluations) < self.k:
            raise ValueError(f"need at least {self.k} evaluations")
        chosen = sorted(evaluations)[: self.k]
        if any(not self.k <= i < self.n for i in chosen):
            raise ValueError("interpolation decode takes parity indices only")
        columns = np.vstack(
            [np.frombuffer(evaluations[i], dtype=np.uint8) for i in chosen]
        )
        xs = [self.points[i - self.k] for i in chosen]
        length = columns.shape[1]
        out = np.zeros((self.k, length), dtype=np.uint8)
        for s in range(length):
            points = [(x, int(columns[row, s])) for row, x in enumerate(xs)]
            poly = GFPolynomial.interpolate(self.field, points)
            coefficients = poly.coefficients + [0] * (
                self.k - len(poly.coefficients)
            )
            out[:, s] = coefficients[: self.k]
        return [out[i].tobytes() for i in range(self.k)]
