"""Galois-field arithmetic substrate for the RSE erasure codec.

Public surface:

* :class:`repro.galois.GaloisField` plus the shared instances
  :data:`GF16`, :data:`GF256`, :data:`GF65536`;
* matrix helpers in :mod:`repro.galois.matrix` (Vandermonde construction,
  inversion, systematic generator matrices);
* raw table builders in :mod:`repro.galois.tables`;
* the pluggable kernel-backend registry in :mod:`repro.galois.backends`
  (``numpy`` oracle, ``bitsliced``, ``table``, optional ``numba``),
  selected via :func:`set_backend` / :func:`use_backend` or the
  ``REPRO_GF_BACKEND`` environment variable.
"""

from repro.galois.backends import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    GFBackend,
    active_backend,
    available_backend_names,
    backend_names,
    register_backend,
    reset_backend,
    set_backend,
    use_backend,
)
from repro.galois.field import GF16, GF256, GF65536, GaloisField, field_for_width
from repro.galois.polynomial import GFPolynomial, PolynomialCodec
from repro.galois.matrix import (
    SingularMatrixError,
    identity,
    invert,
    matmul,
    solve,
    systematic_generator,
    vandermonde,
)
from repro.galois.tables import (
    PRIMITIVE_POLYNOMIALS,
    SUPPORTED_WIDTHS,
    FieldTableError,
    build_exp_log,
    exp_log_tables,
    full_multiplication_table,
)

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "GFBackend",
    "active_backend",
    "available_backend_names",
    "backend_names",
    "register_backend",
    "reset_backend",
    "set_backend",
    "use_backend",
    "GaloisField",
    "GF16",
    "GF256",
    "GF65536",
    "field_for_width",
    "GFPolynomial",
    "PolynomialCodec",
    "SingularMatrixError",
    "identity",
    "invert",
    "matmul",
    "solve",
    "systematic_generator",
    "vandermonde",
    "PRIMITIVE_POLYNOMIALS",
    "SUPPORTED_WIDTHS",
    "FieldTableError",
    "build_exp_log",
    "exp_log_tables",
    "full_multiplication_table",
]
