"""Registry of every reproduced figure: id -> runner + provenance.

``python -m repro.experiments`` (see ``__main__.py``) and the benchmark
suite both drive figures through this table, so adding an experiment in one
place wires it up everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.experiments import (
    ablations,
    figures_analysis,
    figures_codec,
    figures_failure,
    figures_mc,
)
from repro.experiments.series import FigureResult

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper figure."""

    figure_id: str
    paper_caption: str
    method: str  # "analysis" | "simulation" | "measurement"
    runner: Callable[..., FigureResult]
    expected_shape: str  # prose description of the claim being reproduced


EXPERIMENTS: dict[str, Experiment] = {
    exp.figure_id: exp
    for exp in [
        Experiment(
            "fig01",
            "Coding and decoding rates vs redundancy h/k and TG size k",
            "measurement",
            figures_codec.fig01,
            "rate falls roughly as 1/(h*k); k=7 fastest, k=100 slowest",
        ),
        Experiment(
            "fig03",
            "Non-FEC versus layered FEC with h=2 for k=7,20,100, p=0.01",
            "analysis",
            figures_analysis.fig03,
            "layered beats no-FEC at large R; k=100 with only h=2 is worst",
        ),
        Experiment(
            "fig04",
            "Non-FEC versus layered FEC with h=7 for k=7,20,100, p=0.01",
            "analysis",
            figures_analysis.fig04,
            "k=100 with h=7 best for R in 1..2e5",
        ),
        Experiment(
            "fig05",
            "E[M] vs R for TG size 7: layered vs integrated FEC",
            "analysis",
            figures_analysis.fig05,
            "integrated << layered << no-FEC at all R",
        ),
        Experiment(
            "fig06",
            "Integrated FEC, k=7, for h=1,2,3,inf",
            "analysis",
            figures_analysis.fig06,
            "3 parities reach the lower bound up to ~1e5 receivers",
        ),
        Experiment(
            "fig07",
            "Influence of R on integrated FEC for k=7,20,100",
            "analysis",
            figures_analysis.fig07,
            "larger k drives E[M] toward 1 even at R=1e6",
        ),
        Experiment(
            "fig08",
            "Influence of p on integrated FEC for k=7,20,100 (R=1000)",
            "analysis",
            figures_analysis.fig08,
            "integrated FEC insensitive to p for large k",
        ),
        Experiment(
            "fig09",
            "Heterogeneous receivers without FEC",
            "analysis",
            figures_analysis.fig09,
            "1% high-loss receivers double E[M] at R=1e6",
        ),
        Experiment(
            "fig10",
            "Heterogeneous receivers with integrated FEC (k=7)",
            "analysis",
            figures_analysis.fig10,
            "same high-loss domination, lower absolute E[M]",
        ),
        Experiment(
            "fig11",
            "Layered FEC vs non-FEC, independent vs FBT shared loss",
            "simulation",
            figures_mc.fig11,
            "shared loss lowers E[M]; layered pays off only for R>~60 on FBT",
        ),
        Experiment(
            "fig12",
            "Integrated FEC vs non-FEC, independent vs FBT shared loss",
            "simulation",
            figures_mc.fig12,
            "integrated still wins under shared loss, by a smaller margin",
        ),
        Experiment(
            "fig14",
            "Burst-length distribution, no-burst vs b=2 (p=0.01)",
            "simulation",
            figures_mc.fig14,
            "both tails geometric; burst channel much heavier",
        ),
        Experiment(
            "fig15",
            "Burst loss: layered FEC (7+1), (7+3) vs no FEC",
            "simulation",
            figures_mc.fig15,
            "layered FEC WORSE than no FEC under burst loss",
        ),
        Experiment(
            "fig16",
            "Burst loss: integrated FEC 1 vs 2 for k=7,20,100",
            "simulation",
            figures_mc.fig16,
            "large k restores performance; FEC2 beats FEC1 only at k=7",
        ),
        Experiment(
            "fig17",
            "Processing rates at sender and receiver, N2 vs NP (k=20)",
            "analysis",
            figures_analysis.fig17,
            "NP receiver high and flat; NP sender encoding-bound",
        ),
        Experiment(
            "fig18",
            "Throughput of N2 vs NP with and without pre-encoding",
            "analysis",
            figures_analysis.fig18,
            "NP pre-encode up to ~3x N2 at large R",
        ),
        # ------- ablations beyond the paper (method = "extension") -------
        Experiment(
            "abl_proactive",
            "Proactive parities a>0: bandwidth vs feedback silence",
            "extension",
            ablations.abl_proactive,
            "silence improves monotonically in a; bandwidth floor (k+a)/k",
        ),
        Experiment(
            "abl_suppression",
            "NAK suppression slot size Ts vs feedback volume",
            "extension",
            ablations.abl_suppression,
            "wider slots damp more NAKs at completion-time cost",
        ),
        Experiment(
            "abl_symbol_size",
            "GF symbol width m vs codec rate and block capacity",
            "extension",
            ablations.abl_symbol_size,
            "m=8 is the sweet spot: table-fast and n<=255",
        ),
        Experiment(
            "abl_validation",
            "Three-way E[M] validation: analysis vs MC vs protocol NP",
            "extension",
            ablations.abl_validation,
            "MC within ~3% of closed forms; NP within ~15% of the bound",
        ),
        Experiment(
            "abl_adaptive",
            "Adaptive proactive redundancy vs reactive NP",
            "extension",
            ablations.abl_adaptive,
            "most NAK traffic removed for a bounded bandwidth premium",
        ),
        Experiment(
            "abl_bursty_tree",
            "Combined shared+burst loss (Gilbert chains at tree nodes)",
            "extension",
            ablations.abl_bursty_tree,
            "the paper's conclusions survive combined correlation",
        ),
        Experiment(
            "abl_latency",
            "Completion latency per scheme: delay models vs simulation",
            "extension",
            ablations.abl_latency,
            "FEC1 is the latency floor; N2 model is a strict lower bound",
        ),
        Experiment(
            "fail01",
            "Correlated domain outages vs independent loss of equal mean",
            "extension",
            figures_failure.fail01,
            "correlated E[M] below the rate-matched independent curve: "
            "domain-scoped losses share repairs",
        ),
    ]
}


def experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment (figures + ablations)."""
    return sorted(EXPERIMENTS)


def run_experiment(figure_id: str, **kwargs) -> FigureResult:
    """Run one experiment by id, forwarding runner-specific kwargs.

    Each run is wrapped in an obs span (``figure.<id>``), so with
    telemetry enabled figure wall-times land in the exported registry —
    including runs inside campaign workers, whose snapshots merge into
    the supervisor's rollup.
    """
    try:
        experiment = EXPERIMENTS[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {figure_id!r}; known: {experiment_ids()}"
        ) from None
    with obs.span(f"figure.{figure_id}", method=experiment.method):
        return experiment.runner(**kwargs)
