"""Figure 13 — the timing diagram of the four recovery schemes, in ASCII.

Figure 13 is the paper's only non-quantitative evaluation figure: it shows
*when* each scheme transmits originals and parities relative to the packet
spacing ``Delta`` and the feedback delay ``T``.  This module renders the
same diagram from actual :class:`repro.mc.Timing` values, keeping the
documentation honest about what the simulators implement:

* **no FEC** — retransmissions of the same packet spaced ``Delta + T``;
* **layered FEC** — full blocks of ``k + h``, blocks spaced ``Delta + T``;
* **integrated FEC 1** — data then parities, all at ``Delta``;
* **integrated FEC 2** — data, then NAK-round parity batches ``T`` apart.

>>> print(render_timing_diagram(k=4, h=1))  # doctest: +SKIP
"""

from __future__ import annotations

from repro.mc._common import PAPER_TIMING, Timing

__all__ = ["scheme_timelines", "render_timing_diagram"]

#: characters per Delta in the rendering
_CELL = 2


def scheme_timelines(
    k: int = 4,
    h: int = 2,
    repair_counts: tuple[int, ...] = (2, 1),
    timing: Timing = PAPER_TIMING,
) -> dict[str, list[tuple[float, str]]]:
    """(time, symbol) transmission sequences for the four schemes.

    ``symbol`` is ``"o"`` for an original packet, ``"p"`` for a parity.
    ``repair_counts`` gives the per-round repair volume for the
    feedback-driven schemes (the figure's illustrative scenario).
    """
    if k < 1 or h < 0:
        raise ValueError("need k >= 1 and h >= 0")
    delta, gap = timing.packet_interval, timing.round_gap
    timelines: dict[str, list[tuple[float, str]]] = {}

    # no FEC: one packet, retransmitted once per round
    t, events = 0.0, []
    for _ in range(1 + len(repair_counts)):
        events.append((t, "o"))
        t += delta + gap
    timelines["no FEC"] = events

    # layered FEC: whole blocks of k data + h parities per round
    t, events = 0.0, []
    for _ in range(1 + len(repair_counts)):
        for i in range(k):
            events.append((t + i * delta, "o"))
        for j in range(h):
            events.append((t + (k + j) * delta, "p"))
        t += (k + h) * delta + gap
    timelines["layered FEC"] = events

    # integrated FEC 1: data then a continuous parity tail at Delta
    events = [(i * delta, "o") for i in range(k)]
    total_parities = sum(repair_counts)
    events += [((k + j) * delta, "p") for j in range(total_parities)]
    timelines["integrated FEC 1"] = events

    # integrated FEC 2: data, then per-round parity batches T apart
    events = [(i * delta, "o") for i in range(k)]
    t = k * delta + gap
    for count in repair_counts:
        for j in range(count):
            events.append((t + j * delta, "p"))
        t += count * delta + gap
    timelines["integrated FEC 2"] = events
    return timelines


def render_timing_diagram(
    k: int = 4,
    h: int = 2,
    repair_counts: tuple[int, ...] = (2, 1),
    timing: Timing = PAPER_TIMING,
) -> str:
    """ASCII rendition of Figure 13 (``o`` original, ``p`` parity)."""
    timelines = scheme_timelines(k, h, repair_counts, timing)
    delta = timing.packet_interval
    horizon = max(t for events in timelines.values() for t, _ in events)
    width = int(round(horizon / delta)) * _CELL + 1

    label_width = max(len(name) for name in timelines) + 2
    lines = [
        f"{'':<{label_width}}(one column = Delta = "
        f"{delta * 1000:g} ms; T = {timing.round_gap * 1000:g} ms; "
        f"o = original, p = parity)"
    ]
    for name, events in timelines.items():
        row = [" "] * (width + 2 * len(events))  # headroom for nudges
        for t, symbol in sorted(events):
            position = int(round(t / delta)) * _CELL
            # T is generally not a multiple of Delta: nudge right on
            # rounding collisions rather than overwrite a symbol
            while row[position] != " ":
                position += 1
            row[position] = symbol
        lines.append(f"{name:<{label_width}}{''.join(row).rstrip()}")
    return "\n".join(lines)
