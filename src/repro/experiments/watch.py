"""``watch`` — a polling terminal dashboard for a live run.

Reads two optional sources on an interval and renders one screen:

* ``--journal PATH`` — the campaign journal, through the same read-only
  torn-tail-tolerant reader ``--status`` uses (never takes the writer
  lock, safe against a live runner).
* ``--metrics SOURCE`` — live metrics, either scraped from a running
  endpoint (``http://host:port/metrics`` or bare ``host:port``, parsed
  with :func:`repro.obs.parse_openmetrics`) or folded from a telemetry
  NDJSON file a :class:`~repro.obs.TelemetryFlusher` is appending to.

The dashboard shows rolling goodput (counter deltas between polls, not
lifetime averages), NAK/retry rates, net sessions by outcome, ejections
and churn, and the drift-SLO gauges with any breached alerts — the
operator's live view of "is this run tracking the paper's model".

``--count N`` renders N frames and exits (what the tests and the CI
smoke use); without it the loop runs until Ctrl-C, which exits 0.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request

from repro.obs.metrics import MetricsSnapshot

__all__ = ["main", "render_dashboard", "MetricsSource"]

_SCRAPE_TIMEOUT = 5.0


class MetricsSource:
    """One ``--metrics`` argument, resolved to a snapshot-producing poll.

    ``http://…`` (or bare ``host:port``) scrapes OpenMetrics text;
    anything else is read as a telemetry NDJSON file.  A poll that fails
    (endpoint gone, file not written yet) returns the previous snapshot
    so the dashboard degrades to stale data, never to a crash.
    """

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.url: str | None = None
        self.path: str | None = None
        if spec.startswith(("http://", "https://")):
            self.url = spec
        elif self._looks_like_hostport(spec):
            self.url = f"http://{spec}/metrics"
        else:
            self.path = spec
        self.last_error: str | None = None
        self._previous = MetricsSnapshot()
        self._alerts: list[dict] = []

    @staticmethod
    def _looks_like_hostport(spec: str) -> bool:
        host, sep, port = spec.rpartition(":")
        return bool(sep) and bool(host) and port.isdigit() and "/" not in spec

    def poll(self) -> tuple[MetricsSnapshot, list[dict]]:
        """``(snapshot, alert rows)`` — stale-but-sane on any failure."""
        try:
            if self.url is not None:
                with urllib.request.urlopen(
                    self.url, timeout=_SCRAPE_TIMEOUT
                ) as response:
                    text = response.read().decode("utf-8", "replace")
                from repro.obs.export import parse_openmetrics

                self._previous = parse_openmetrics(text)
            else:
                from repro.obs.export import read_telemetry

                self._previous, self._alerts = read_telemetry(self.path)
            self.last_error = None
        except (OSError, urllib.error.URLError, ValueError) as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
        return self._previous, list(self._alerts)


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k/s"
    return f"{value:.1f}/s"


def _fmt_bytes_rate(value: float) -> str:
    for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}/s"
    return f"{value:.0f} B/s"


def _totals(snapshot: MetricsSnapshot, name: str) -> dict[tuple, int]:
    """Counter values of one family keyed by labels tuple."""
    return {
        labels: value
        for (family, labels), value in snapshot.counter_values().items()
        if family == name
    }


def _total(snapshot: MetricsSnapshot, name: str) -> int:
    return sum(_totals(snapshot, name).values())


def _gauges(snapshot: MetricsSnapshot, name: str) -> dict[tuple, float]:
    out: dict[tuple, float] = {}
    for entry in snapshot.to_json()["instruments"]:
        if (
            entry["type"] == "gauge"
            and entry["name"] == name
            and entry["value"] is not None
        ):
            out[tuple(sorted(entry["labels"].items()))] = entry["value"]
    return out


def _rate(
    current: MetricsSnapshot, previous: MetricsSnapshot, name: str, dt: float
) -> float:
    if dt <= 0:
        return 0.0
    return max(0, _total(current, name) - _total(previous, name)) / dt


def render_dashboard(
    snapshot: MetricsSnapshot,
    previous: MetricsSnapshot,
    dt: float,
    alerts: list[dict] | None = None,
    status=None,
    now: float | None = None,
    source_error: str | None = None,
) -> str:
    """One dashboard frame as text (pure function of its inputs)."""
    now = time.time() if now is None else now
    lines = [f"repro watch — {time.strftime('%H:%M:%S', time.localtime(now))}"]
    if source_error:
        lines.append(f"  [metrics source stale: {source_error}]")

    # -- throughput -----------------------------------------------------
    goodput = _gauges(snapshot, "net.goodput_bytes_per_s")
    payload_rate = _rate(snapshot, previous, "transfer.payload_bytes", dt)
    frame_rate = _rate(snapshot, previous, "net.frames_tx", dt)
    row = []
    if goodput:
        row.append(f"net goodput {_fmt_bytes_rate(max(goodput.values()))}")
    if payload_rate:
        row.append(f"payload {_fmt_bytes_rate(payload_rate)} rolling")
    if frame_rate:
        row.append(f"frames tx {_fmt_rate(frame_rate)}")
    lines.append("throughput: " + ("  ".join(row) or "(no traffic yet)"))

    # -- recovery pressure ---------------------------------------------
    row = []
    for label, name in (
        ("naks", "transfer.naks_sent"),
        ("nak retries", "net.nak_retries"),
        ("retransmissions", "transfer.retransmissions_sent"),
        ("task retries", "campaign.retries"),
    ):
        total = _total(snapshot, name)
        if total or _totals(snapshot, name):
            rate = _rate(snapshot, previous, name, dt)
            row.append(f"{label} {total} ({_fmt_rate(rate)})")
    lines.append("recovery:   " + ("  ".join(row) or "(quiet)"))

    # -- sessions & membership -----------------------------------------
    sessions = _totals(snapshot, "net.sessions")
    if sessions:
        by_outcome = "  ".join(
            f"{dict(labels).get('outcome', '?')}={value}"
            for labels, value in sorted(sessions.items())
        )
        lines.append(f"sessions:   {by_outcome}")
    ejected = _total(snapshot, "net.members_ejected")
    churn = _totals(snapshot, "churn.receivers_affected")
    if ejected or churn:
        row = [f"ejected={ejected}"]
        row.extend(
            f"churn[{dict(labels).get('generator', '?')}/"
            f"{dict(labels).get('mode', '?')}]={value}"
            for labels, value in sorted(churn.items())
        )
        lines.append("membership: " + "  ".join(row))

    # -- paper-model drift ---------------------------------------------
    ratios = _gauges(snapshot, "slo.ratio")
    observed = _gauges(snapshot, "slo.observed")
    predicted = _gauges(snapshot, "slo.predicted")
    for labels in sorted(ratios):
        slo = dict(labels).get("slo", "?")
        lines.append(
            f"drift:      {slo}: observed {observed.get(labels, float('nan')):.4g}"
            f" vs predicted {predicted.get(labels, float('nan')):.4g}"
            f" (ratio {ratios[labels]:.3f})"
        )
    breached = [
        row
        for row in (alerts or ())
        if row.get("record") == "alert" and row.get("breached")
    ]
    if breached:
        seen: dict[str, dict] = {str(r.get("slo")): r for r in breached}
        for name in sorted(seen):
            row = seen[name]
            lines.append(
                f"ALERT:      {name} ratio {row.get('ratio', float('nan')):.3f}"
                f" outside ±{100 * float(row.get('tolerance', 0)):.0f}%"
            )

    # -- campaign ------------------------------------------------------
    if status is not None:
        from repro.campaign.status import render_status

        lines.append("")
        lines.append(render_status(status, now=now))
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments watch",
        description="Polling terminal dashboard over a live run's journal "
        "and metrics endpoint / telemetry stream.",
    )
    parser.add_argument(
        "--journal", metavar="PATH", help="campaign journal to watch"
    )
    parser.add_argument(
        "--metrics",
        metavar="SOURCE",
        help="metrics source: http://host:port/metrics, host:port, "
        "or a telemetry NDJSON file",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval (default %(default)s)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    return parser


def main(argv: list[str]) -> int:
    """Entry point for the ``watch`` verb; returns an exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.journal is None and args.metrics is None:
        parser.print_usage(sys.stderr)
        print("error: give --journal PATH and/or --metrics SOURCE",
              file=sys.stderr)
        return 2
    if args.interval < 0:
        parser.print_usage(sys.stderr)
        print("error: --interval must be >= 0", file=sys.stderr)
        return 2
    source = None if args.metrics is None else MetricsSource(args.metrics)
    previous = MetricsSnapshot()
    last_poll: float | None = None
    frames = 0
    clear = sys.stdout.isatty()
    try:
        while args.count is None or frames < args.count:
            if frames:
                time.sleep(args.interval)
            snapshot, alerts = (
                (MetricsSnapshot(), []) if source is None else source.poll()
            )
            status = None
            if args.journal is not None:
                from repro.campaign import JournalError, campaign_status

                try:
                    status = campaign_status(args.journal)
                except (OSError, JournalError) as exc:
                    print(
                        f"error: cannot read journal {args.journal}: {exc}",
                        file=sys.stderr,
                    )
                    return 2
            now = time.monotonic()
            dt = 0.0 if last_poll is None else now - last_poll
            last_poll = now
            frame = render_dashboard(
                snapshot,
                previous,
                dt,
                alerts=alerts,
                status=status,
                source_error=None if source is None else source.last_error,
            )
            if clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            previous = snapshot
            frames += 1
    except KeyboardInterrupt:
        print()  # leave the shell prompt on its own line
    return 0
