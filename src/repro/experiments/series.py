"""Result containers for the figure-reproduction harness.

A paper figure is a set of labelled series over a shared x-axis.  The
containers here are deliberately dumb — benchmarks print them, tests assert
on them, examples plot them as ASCII — so every figure runner returns plain
data instead of side effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Series", "FigureResult"]


@dataclass
class Series:
    """One labelled curve: ``y[i]`` measured at ``x[i]``.

    ``errors`` optionally carries Monte-Carlo standard errors (same length
    as ``y``) for simulated curves.
    """

    label: str
    x: list[float]
    y: list[float]
    errors: list[float] | None = None
    #: Monte-Carlo replications actually spent per point (adaptive runs
    #: stop early, so this is measured output, not an input echo).
    replications: list[int] | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )
        if self.errors is not None and len(self.errors) != len(self.y):
            raise ValueError(f"series {self.label!r}: errors length mismatch")
        if self.replications is not None and len(self.replications) != len(
            self.y
        ):
            raise ValueError(
                f"series {self.label!r}: replications length mismatch"
            )

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "x": list(self.x),
            "y": list(self.y),
            "errors": None if self.errors is None else list(self.errors),
            "replications": (
                None if self.replications is None else list(self.replications)
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Series":
        errors = data.get("errors")
        replications = data.get("replications")
        return cls(
            label=data["label"],
            x=list(data["x"]),
            y=list(data["y"]),
            errors=None if errors is None else list(errors),
            replications=(
                None if replications is None else list(replications)
            ),
        )

    def value_at(self, x: float) -> float:
        """The y value measured at exactly ``x`` (KeyError style lookup)."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class FigureResult:
    """A reproduced figure: metadata plus its series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        available = [s.label for s in self.series]
        raise KeyError(f"no series {label!r}; available: {available}")

    @property
    def labels(self) -> list[str]:
        return [series.label for series in self.series]

    def to_json(self) -> dict:
        """JSON-serializable dict (campaign journals persist figures this
        way, so a resumed campaign can rebuild results without re-running)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [series.to_json() for series in self.series],
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FigureResult":
        return cls(
            figure_id=data["figure_id"],
            title=data.get("title", ""),
            x_label=data.get("x_label", ""),
            y_label=data.get("y_label", ""),
            series=[Series.from_json(s) for s in data.get("series", ())],
            notes=data.get("notes", ""),
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict]:
        """Long-format rows, one per (series, point): for CSV/printing."""
        rows = []
        for series in self.series:
            errors = series.errors or [math.nan] * len(series)
            replications = series.replications or [None] * len(series)
            for xi, yi, ei, ri in zip(series.x, series.y, errors, replications):
                row = {
                    "figure": self.figure_id,
                    "series": series.label,
                    "x": xi,
                    "y": yi,
                    "stderr": ei,
                }
                # only sharded/adaptive MC points carry a measured spend;
                # plain rows keep their legacy shape
                if ri is not None:
                    row["replications"] = ri
                rows.append(row)
        return rows

    def to_csv(self) -> str:
        # the replications column only appears when a series measured it
        # (sharded/adaptive MC runs) so analytic-only figures keep the
        # legacy 5-column layout byte for byte
        with_reps = any(s.replications is not None for s in self.series)
        header = "figure,series,x,y,stderr"
        if with_reps:
            header += ",replications"
        lines = [header]
        for row in self.to_rows():
            stderr = "" if math.isnan(row["stderr"]) else f"{row['stderr']:.6g}"
            line = (
                f"{row['figure']},{row['series']},{row['x']:.6g},"
                f"{row['y']:.6g},{stderr}"
            )
            if with_reps:
                reps = row.get("replications")
                line += f",{'' if reps is None else reps}"
            lines.append(line)
        return "\n".join(lines) + "\n"

    def render_table(self, float_format: str = "{:.3f}") -> str:
        """Wide-format text table: one row per x, one column per series."""
        xs: list[float] = sorted({xi for s in self.series for xi in s.x})
        header = [self.x_label] + self.labels
        rows = [header]
        for xi in xs:
            row = [f"{xi:g}"]
            for series in self.series:
                try:
                    row.append(float_format.format(series.value_at(xi)))
                except KeyError:
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        lines = [
            f"{self.figure_id}: {self.title}",
            f"(y = {self.y_label})",
        ]
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)
