"""Figure runners driven by Monte-Carlo simulation (Figures 11, 12, 14-16).

These cover the correlated-loss experiments where no closed form exists:
shared loss on a full binary tree (Section 4.1) and two-state Markov burst
loss (Section 4.2).  Independent-loss companion curves come from the
closed forms, exactly as the paper plots analysis and simulation together.

All runners accept ``replications`` and a ``rng`` seed; the defaults trade
a few percent of Monte-Carlo noise for benchmark-friendly runtimes, and the
replication count is scaled down as R grows (max-statistics concentrate).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fbt, integrated, layered, nofec
from repro.experiments.series import FigureResult, Series
from repro.mc import (
    PAPER_TIMING,
    burst_length_histogram,
    simulate_integrated_immediate,
    simulate_integrated_rounds,
    simulate_layered,
    simulate_nofec,
)
from repro.mc._common import resolve_rng
from repro.sim.loss import FullBinaryTreeLoss, GilbertLoss

__all__ = ["fig11", "fig12", "fig14", "fig15", "fig16"]

DEFAULT_P = 0.01


def _scaled_reps(base: int, n_receivers: int) -> int:
    """Fewer replications for huge trees: the estimator variance shrinks
    and the per-replication cost grows linearly with R."""
    if n_receivers >= 2**14:
        return max(10, base // 8)
    if n_receivers >= 2**10:
        return max(20, base // 4)
    return base


def fig11(
    p: float = DEFAULT_P,
    k: int = 7,
    h: int = 1,
    depths: list[int] | None = None,
    replications: int = 120,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 11: layered FEC vs no FEC under independent and FBT shared loss."""
    rng = resolve_rng(rng)
    depths = list(range(0, 18, 2)) if depths is None else depths
    sizes = [2**d for d in depths]
    xs = list(map(float, sizes))

    nofec_indep = [nofec.expected_transmissions(p, r) for r in sizes]
    layered_indep = [layered.expected_transmissions(k, k + h, p, r) for r in sizes]

    nofec_fbt, nofec_err, layered_fbt, layered_err = [], [], [], []
    for depth, size in zip(depths, sizes):
        reps = _scaled_reps(replications, size)
        model = FullBinaryTreeLoss(depth, p)
        r_nofec = simulate_nofec(model, reps, rng=rng)
        r_layered = simulate_layered(model, k, h, reps, rng=rng)
        nofec_fbt.append(r_nofec.mean)
        nofec_err.append(r_nofec.stderr)
        layered_fbt.append(r_layered.mean)
        layered_err.append(r_layered.stderr)

    nofec_fbt_exact = [
        fbt.expected_transmissions_nofec(depth, p) for depth in depths
    ]
    return FigureResult(
        figure_id="fig11",
        title=f"Layered FEC, p = {p}, k = {k}, h = {h}: independent vs FBT loss",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("non-FEC indep. loss", xs, nofec_indep),
            Series("layered FEC indep. loss", xs, layered_indep),
            Series("non-FEC FBT loss", xs, nofec_fbt, nofec_err),
            Series("layered FEC FBT loss", xs, layered_fbt, layered_err),
            Series("non-FEC FBT exact", xs, nofec_fbt_exact),
        ],
        notes="independent-loss and FBT-exact curves analytical; "
        "FBT loss curves simulated",
    )


def fig12(
    p: float = DEFAULT_P,
    k: int = 7,
    depths: list[int] | None = None,
    replications: int = 120,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 12: integrated FEC vs no FEC, independent vs FBT shared loss."""
    rng = resolve_rng(rng)
    depths = list(range(0, 18, 2)) if depths is None else depths
    sizes = [2**d for d in depths]
    xs = list(map(float, sizes))

    nofec_indep = [nofec.expected_transmissions(p, r) for r in sizes]
    integrated_indep = [
        integrated.expected_transmissions_lower_bound(k, p, r) for r in sizes
    ]

    nofec_fbt, nofec_err, integ_fbt, integ_err = [], [], [], []
    for depth, size in zip(depths, sizes):
        reps = _scaled_reps(replications, size)
        model = FullBinaryTreeLoss(depth, p)
        r_nofec = simulate_nofec(model, reps, rng=rng)
        r_integ = simulate_integrated_immediate(model, k, reps, rng=rng)
        nofec_fbt.append(r_nofec.mean)
        nofec_err.append(r_nofec.stderr)
        integ_fbt.append(r_integ.mean)
        integ_err.append(r_integ.stderr)

    nofec_fbt_exact = [
        fbt.expected_transmissions_nofec(depth, p) for depth in depths
    ]
    integ_fbt_exact = [
        fbt.expected_transmissions_integrated(depth, p, k) for depth in depths
    ]
    return FigureResult(
        figure_id="fig12",
        title=f"Integrated FEC, p = {p}, k = {k}: independent vs FBT loss",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("non-FEC indep. loss", xs, nofec_indep),
            Series("integrated FEC indep. loss", xs, integrated_indep),
            Series("non-FEC FBT loss", xs, nofec_fbt, nofec_err),
            Series("integrated FEC FBT loss", xs, integ_fbt, integ_err),
            Series("non-FEC FBT exact", xs, nofec_fbt_exact),
            Series("integrated FEC FBT exact", xs, integ_fbt_exact),
        ],
        notes="independent-loss and FBT-exact curves analytical; "
        "FBT loss curves simulated",
    )


def fig14(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    n_packets: int = 1_000_000,
    max_length: int = 15,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 14: burst-length distribution, Bernoulli vs Markov channel."""
    rng = resolve_rng(rng)
    bursty = burst_length_histogram(p, n_packets, mean_burst, rng=rng)
    independent = burst_length_histogram(p, n_packets, None, rng=rng)

    def pad(histogram) -> list[float]:
        counts = dict(histogram.as_rows())
        return [float(counts.get(length, 0)) for length in range(1, max_length + 1)]

    xs = list(map(float, range(1, max_length + 1)))
    return FigureResult(
        figure_id="fig14",
        title=f"Burst length distribution, p = {p}",
        x_label="burst length",
        y_label="occurrences",
        series=[
            Series("no burst loss", xs, pad(independent)),
            Series(f"burst loss, b = {mean_burst:g}", xs, pad(bursty)),
        ],
        notes=f"{n_packets} packets at Delta = 40 ms through one receiver",
    )


def _burst_model(n_receivers: int, p: float, mean_burst: float) -> GilbertLoss:
    return GilbertLoss.from_loss_and_burst(
        n_receivers, p, mean_burst, PAPER_TIMING.packet_interval
    )


def fig15(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    sizes: list[int] | None = None,
    replications: int = 150,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 15: burst loss — layered FEC (7+1), (7+3) vs no FEC."""
    rng = resolve_rng(rng)
    sizes = sizes or [1, 10, 100, 1000, 10000]
    xs = list(map(float, sizes))
    series = {
        "no FEC": ([], []),
        "FEC layer (7+1)": ([], []),
        "FEC layer (7+3)": ([], []),
    }
    for size in sizes:
        reps = _scaled_reps(replications, size)
        model = _burst_model(size, p, mean_burst)
        r = simulate_nofec(model, reps, rng=rng)
        series["no FEC"][0].append(r.mean)
        series["no FEC"][1].append(r.stderr)
        for h, label in ((1, "FEC layer (7+1)"), (3, "FEC layer (7+3)")):
            r = simulate_layered(model, 7, h, reps, rng=rng)
            series[label][0].append(r.mean)
            series[label][1].append(r.stderr)
    return FigureResult(
        figure_id="fig15",
        title=f"Burst loss and FEC layer, p = {p}, b = {mean_burst:g}",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series(label, xs, values, errors)
            for label, (values, errors) in series.items()
        ],
    )


def fig16(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    sizes: list[int] | None = None,
    group_sizes: tuple[int, ...] = (7, 20, 100),
    replications: int = 150,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 16: burst loss — integrated FEC 1 vs FEC 2 for k = 7, 20, 100."""
    rng = resolve_rng(rng)
    sizes = sizes or [1, 10, 100, 1000, 10000]
    xs = list(map(float, sizes))
    result = FigureResult(
        figure_id="fig16",
        title=f"Burst loss and integrated FEC, p = {p}, b = {mean_burst:g}",
        x_label="R",
        y_label="transmissions E[M]",
    )
    nofec_values, nofec_errors = [], []
    for size in sizes:
        reps = _scaled_reps(replications, size)
        r = simulate_nofec(_burst_model(size, p, mean_burst), reps, rng=rng)
        nofec_values.append(r.mean)
        nofec_errors.append(r.stderr)
    result.series.append(Series("no FEC", xs, nofec_values, nofec_errors))

    for k in group_sizes:
        for scheme, label in (
            (simulate_integrated_immediate, f"integrated FEC 1, k={k}"),
            (simulate_integrated_rounds, f"integrated FEC 2, k={k}"),
        ):
            values, errors = [], []
            for size in sizes:
                reps = _scaled_reps(replications, size)
                r = scheme(_burst_model(size, p, mean_burst), k, reps, rng=rng)
                values.append(r.mean)
                errors.append(r.stderr)
            result.series.append(Series(label, xs, values, errors))
    return result
