"""Figure runners driven by Monte-Carlo simulation (Figures 11, 12, 14-16).

These cover the correlated-loss experiments where no closed form exists:
shared loss on a full binary tree (Section 4.1) and two-state Markov burst
loss (Section 4.2).  Independent-loss companion curves come from the
closed forms, exactly as the paper plots analysis and simulation together.

All runners accept ``replications`` and a ``rng`` seed; the defaults trade
a few percent of Monte-Carlo noise for benchmark-friendly runtimes, and the
replication count is scaled down as R grows (max-statistics concentrate).

The MC figures (11, 12, 15, 16) additionally accept the sharded-execution
knobs ``mc_jobs`` / ``target_ci`` / ``chunk_size``: setting any of them
routes every simulated point through :func:`repro.mc.run_sharded` — chunked
streaming execution, optional process fan-out, optional adaptive stopping —
with each point rooted at its own deterministic branch of the figure seed
(sharded results do not depend on ``mc_jobs``).  The defaults keep the
original serial path, and its numbers, untouched.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.analysis import fbt, integrated, layered, nofec
from repro.experiments.series import FigureResult, Series
from repro.mc import (
    PAPER_TIMING,
    burst_length_histogram,
    run_sharded,
    simulate_integrated_immediate,
    simulate_integrated_rounds,
    simulate_layered,
    simulate_nofec,
)
from repro.fec.registry import DEFAULT_CODEC, get_codec
from repro.mc._common import resolve_rng
from repro.sim.loss import FullBinaryTreeLoss, GilbertLoss

__all__ = ["fig11", "fig12", "fig14", "fig15", "fig16"]

DEFAULT_P = 0.01


def _effective_h(codec: str, k: int, h: int) -> int:
    """Clamp a requested parity count onto the codec's supported lattice.

    The figure grids were designed for RSE's any-``h`` geometry; constrained
    codes (``xor``: h = 1, ``rect``: h = rows + cols) substitute their
    nearest supported count so per-scheme sweeps stay runnable.  The default
    codec passes through untouched.
    """
    if codec == DEFAULT_CODEC:
        return h
    return get_codec(codec).nearest_h(k, h)


def _scaled_reps(base: int, n_receivers: int) -> int:
    """Fewer replications for huge trees: the estimator variance shrinks
    and the per-replication cost grows linearly with R."""
    if n_receivers >= 2**14:
        return max(10, base // 8)
    if n_receivers >= 2**10:
        return max(20, base // 4)
    return base


class _ShardedFigure:
    """Per-figure adapter from figure seeds to sharded point runs.

    Each simulated point gets its own root in the replication seed tree,
    addressed by ``(figure entropy, crc32("label/x"))`` — deterministic,
    independent of evaluation order, and stable when a figure adds or
    drops points.
    """

    def __init__(
        self,
        figure_id: str,
        rng: np.random.Generator | int | None,
        mc_jobs: int,
        target_ci: float | None,
        chunk_size: int | None,
    ):
        if isinstance(rng, np.random.Generator):
            entropy = int(rng.integers(2**63 - 1))
        elif rng is None:
            entropy = np.random.SeedSequence().entropy
        else:
            entropy = int(rng)
        self.figure_id = figure_id
        self.entropy = entropy
        self.mc_jobs = mc_jobs
        self.target_ci = target_ci
        self.chunk_size = chunk_size

    def point(self, simulator, model, params, label, x, cap):
        key = zlib.crc32(f"{self.figure_id}/{label}/{x:g}".encode())
        root = np.random.SeedSequence(
            entropy=self.entropy, spawn_key=(key,)
        )
        return run_sharded(
            simulator,
            model,
            params=params,
            replications=cap,
            chunk_size=self.chunk_size,
            jobs=self.mc_jobs,
            target_ci=self.target_ci,
            rng=root,
        )


def _sharded_requested(mc_jobs, target_ci, chunk_size) -> bool:
    return mc_jobs != 1 or target_ci is not None or chunk_size is not None


def fig11(
    p: float = DEFAULT_P,
    k: int = 7,
    h: int = 1,
    depths: list[int] | None = None,
    replications: int = 120,
    rng: np.random.Generator | int | None = 0,
    mc_jobs: int = 1,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    codec: str = DEFAULT_CODEC,
) -> FigureResult:
    """Figure 11: layered FEC vs no FEC under independent and FBT shared loss.

    ``codec`` selects the erasure code driving per-receiver decodability
    (registry name; see :mod:`repro.fec.registry`).  The default ``rse``
    takes the legacy ideal-MDS path unchanged; other codecs clamp ``h``
    onto their supported lattice and simulate with honest (possibly
    non-MDS) recoverability.
    """
    sharded = _sharded_requested(mc_jobs, target_ci, chunk_size)
    if sharded:
        engine = _ShardedFigure("fig11", rng, mc_jobs, target_ci, chunk_size)
    else:
        rng = resolve_rng(rng)
    use_codec = codec != DEFAULT_CODEC
    h_eff = _effective_h(codec, k, h)
    layered_label = (
        f"layered FEC [{codec} {k}+{h_eff}] FBT loss"
        if use_codec
        else "layered FEC FBT loss"
    )
    depths = list(range(0, 18, 2)) if depths is None else depths
    sizes = [2**d for d in depths]
    xs = list(map(float, sizes))

    nofec_indep = [nofec.expected_transmissions(p, r) for r in sizes]
    layered_indep = [
        layered.expected_transmissions(k, k + h_eff, p, r) for r in sizes
    ]

    nofec_fbt, nofec_err, nofec_reps = [], [], []
    layered_fbt, layered_err, layered_reps = [], [], []
    for depth, size in zip(depths, sizes):
        reps = _scaled_reps(replications, size)
        model = FullBinaryTreeLoss(depth, p)
        if sharded:
            r_nofec = engine.point(
                "nofec", model, {}, "non-FEC FBT loss", size, reps
            )
            params = {"k": k, "h": h_eff}
            if use_codec:
                params["codec"] = codec
            r_layered = engine.point(
                "layered",
                model,
                params,
                layered_label,
                size,
                reps,
            )
        else:
            r_nofec = simulate_nofec(model, reps, rng=rng)
            r_layered = simulate_layered(
                model, k, h_eff, reps, rng=rng, codec=codec if use_codec else None
            )
        nofec_fbt.append(r_nofec.mean)
        nofec_err.append(r_nofec.stderr)
        nofec_reps.append(r_nofec.replications)
        layered_fbt.append(r_layered.mean)
        layered_err.append(r_layered.stderr)
        layered_reps.append(r_layered.replications)

    nofec_fbt_exact = [
        fbt.expected_transmissions_nofec(depth, p) for depth in depths
    ]
    notes = (
        "independent-loss and FBT-exact curves analytical; "
        "FBT loss curves simulated"
    )
    if use_codec:
        notes += (
            f"; codec = {codec} (requested h={h} -> effective h={h_eff}; "
            "indep. curve assumes ideal MDS at the effective geometry)"
        )
    return FigureResult(
        figure_id="fig11",
        title=f"Layered FEC, p = {p}, k = {k}, h = {h_eff}: "
        "independent vs FBT loss",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("non-FEC indep. loss", xs, nofec_indep),
            Series("layered FEC indep. loss", xs, layered_indep),
            Series(
                "non-FEC FBT loss",
                xs,
                nofec_fbt,
                nofec_err,
                nofec_reps if sharded else None,
            ),
            Series(
                layered_label,
                xs,
                layered_fbt,
                layered_err,
                layered_reps if sharded else None,
            ),
            Series("non-FEC FBT exact", xs, nofec_fbt_exact),
        ],
        notes=notes,
    )


def fig12(
    p: float = DEFAULT_P,
    k: int = 7,
    depths: list[int] | None = None,
    replications: int = 120,
    rng: np.random.Generator | int | None = 0,
    mc_jobs: int = 1,
    target_ci: float | None = None,
    chunk_size: int | None = None,
) -> FigureResult:
    """Figure 12: integrated FEC vs no FEC, independent vs FBT shared loss."""
    sharded = _sharded_requested(mc_jobs, target_ci, chunk_size)
    if sharded:
        engine = _ShardedFigure("fig12", rng, mc_jobs, target_ci, chunk_size)
    else:
        rng = resolve_rng(rng)
    depths = list(range(0, 18, 2)) if depths is None else depths
    sizes = [2**d for d in depths]
    xs = list(map(float, sizes))

    nofec_indep = [nofec.expected_transmissions(p, r) for r in sizes]
    integrated_indep = [
        integrated.expected_transmissions_lower_bound(k, p, r) for r in sizes
    ]

    nofec_fbt, nofec_err, nofec_reps = [], [], []
    integ_fbt, integ_err, integ_reps = [], [], []
    for depth, size in zip(depths, sizes):
        reps = _scaled_reps(replications, size)
        model = FullBinaryTreeLoss(depth, p)
        if sharded:
            r_nofec = engine.point(
                "nofec", model, {}, "non-FEC FBT loss", size, reps
            )
            r_integ = engine.point(
                "integrated_immediate",
                model,
                {"k": k},
                "integrated FEC FBT loss",
                size,
                reps,
            )
        else:
            r_nofec = simulate_nofec(model, reps, rng=rng)
            r_integ = simulate_integrated_immediate(model, k, reps, rng=rng)
        nofec_fbt.append(r_nofec.mean)
        nofec_err.append(r_nofec.stderr)
        nofec_reps.append(r_nofec.replications)
        integ_fbt.append(r_integ.mean)
        integ_err.append(r_integ.stderr)
        integ_reps.append(r_integ.replications)

    nofec_fbt_exact = [
        fbt.expected_transmissions_nofec(depth, p) for depth in depths
    ]
    integ_fbt_exact = [
        fbt.expected_transmissions_integrated(depth, p, k) for depth in depths
    ]
    return FigureResult(
        figure_id="fig12",
        title=f"Integrated FEC, p = {p}, k = {k}: independent vs FBT loss",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("non-FEC indep. loss", xs, nofec_indep),
            Series("integrated FEC indep. loss", xs, integrated_indep),
            Series(
                "non-FEC FBT loss",
                xs,
                nofec_fbt,
                nofec_err,
                nofec_reps if sharded else None,
            ),
            Series(
                "integrated FEC FBT loss",
                xs,
                integ_fbt,
                integ_err,
                integ_reps if sharded else None,
            ),
            Series("non-FEC FBT exact", xs, nofec_fbt_exact),
            Series("integrated FEC FBT exact", xs, integ_fbt_exact),
        ],
        notes="independent-loss and FBT-exact curves analytical; "
        "FBT loss curves simulated",
    )


def fig14(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    n_packets: int = 1_000_000,
    max_length: int = 15,
    rng: np.random.Generator | int | None = 0,
) -> FigureResult:
    """Figure 14: burst-length distribution, Bernoulli vs Markov channel."""
    rng = resolve_rng(rng)
    bursty = burst_length_histogram(p, n_packets, mean_burst, rng=rng)
    independent = burst_length_histogram(p, n_packets, None, rng=rng)

    def pad(histogram) -> list[float]:
        counts = dict(histogram.as_rows())
        return [float(counts.get(length, 0)) for length in range(1, max_length + 1)]

    xs = list(map(float, range(1, max_length + 1)))
    return FigureResult(
        figure_id="fig14",
        title=f"Burst length distribution, p = {p}",
        x_label="burst length",
        y_label="occurrences",
        series=[
            Series("no burst loss", xs, pad(independent)),
            Series(f"burst loss, b = {mean_burst:g}", xs, pad(bursty)),
        ],
        notes=f"{n_packets} packets at Delta = 40 ms through one receiver",
    )


def _burst_model(n_receivers: int, p: float, mean_burst: float) -> GilbertLoss:
    return GilbertLoss.from_loss_and_burst(
        n_receivers, p, mean_burst, PAPER_TIMING.packet_interval
    )


def fig15(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    sizes: list[int] | None = None,
    replications: int = 150,
    rng: np.random.Generator | int | None = 0,
    mc_jobs: int = 1,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    codec: str = DEFAULT_CODEC,
) -> FigureResult:
    """Figure 15: burst loss — layered FEC (7+1), (7+3) vs no FEC.

    ``codec`` selects the erasure code (registry name).  The default
    ``rse`` keeps the legacy (7+1)/(7+3) ideal-MDS pair; other codecs
    clamp each requested parity count onto their supported lattice and
    deduplicate geometries that coincide (e.g. ``xor`` collapses both to
    a single 7+1 series, ``rect`` to a single 7+6 series).
    """
    sharded = _sharded_requested(mc_jobs, target_ci, chunk_size)
    if sharded:
        engine = _ShardedFigure("fig15", rng, mc_jobs, target_ci, chunk_size)
    else:
        rng = resolve_rng(rng)
    use_codec = codec != DEFAULT_CODEC
    k = 7
    geometries: list[tuple[int, str]] = []
    for h_req in (1, 3):
        h_eff = _effective_h(codec, k, h_req)
        if any(h_eff == existing for existing, _ in geometries):
            continue
        label = (
            f"FEC layer {codec} ({k}+{h_eff})"
            if use_codec
            else f"FEC layer ({k}+{h_eff})"
        )
        geometries.append((h_eff, label))
    sizes = sizes or [1, 10, 100, 1000, 10000]
    xs = list(map(float, sizes))
    series = {"no FEC": ([], [], [])}
    for _, label in geometries:
        series[label] = ([], [], [])

    def record(label, result):
        series[label][0].append(result.mean)
        series[label][1].append(result.stderr)
        series[label][2].append(result.replications)

    for size in sizes:
        reps = _scaled_reps(replications, size)
        model = _burst_model(size, p, mean_burst)
        if sharded:
            record("no FEC", engine.point("nofec", model, {}, "no FEC", size, reps))
        else:
            record("no FEC", simulate_nofec(model, reps, rng=rng))
        for h, label in geometries:
            if sharded:
                params = {"k": k, "h": h}
                if use_codec:
                    params["codec"] = codec
                record(
                    label,
                    engine.point("layered", model, params, label, size, reps),
                )
            else:
                record(
                    label,
                    simulate_layered(
                        model,
                        k,
                        h,
                        reps,
                        rng=rng,
                        codec=codec if use_codec else None,
                    ),
                )
    title = f"Burst loss and FEC layer, p = {p}, b = {mean_burst:g}"
    if use_codec:
        title += f", codec = {codec}"
    return FigureResult(
        figure_id="fig15",
        title=title,
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series(
                label, xs, values, errors, reps_used if sharded else None
            )
            for label, (values, errors, reps_used) in series.items()
        ],
    )


def fig16(
    p: float = DEFAULT_P,
    mean_burst: float = 2.0,
    sizes: list[int] | None = None,
    group_sizes: tuple[int, ...] = (7, 20, 100),
    replications: int = 150,
    rng: np.random.Generator | int | None = 0,
    mc_jobs: int = 1,
    target_ci: float | None = None,
    chunk_size: int | None = None,
) -> FigureResult:
    """Figure 16: burst loss — integrated FEC 1 vs FEC 2 for k = 7, 20, 100."""
    sharded = _sharded_requested(mc_jobs, target_ci, chunk_size)
    if sharded:
        engine = _ShardedFigure("fig16", rng, mc_jobs, target_ci, chunk_size)
    else:
        rng = resolve_rng(rng)
    sizes = sizes or [1, 10, 100, 1000, 10000]
    xs = list(map(float, sizes))
    result = FigureResult(
        figure_id="fig16",
        title=f"Burst loss and integrated FEC, p = {p}, b = {mean_burst:g}",
        x_label="R",
        y_label="transmissions E[M]",
    )
    nofec_values, nofec_errors, nofec_reps = [], [], []
    for size in sizes:
        reps = _scaled_reps(replications, size)
        model = _burst_model(size, p, mean_burst)
        if sharded:
            r = engine.point("nofec", model, {}, "no FEC", size, reps)
        else:
            r = simulate_nofec(model, reps, rng=rng)
        nofec_values.append(r.mean)
        nofec_errors.append(r.stderr)
        nofec_reps.append(r.replications)
    result.series.append(
        Series(
            "no FEC",
            xs,
            nofec_values,
            nofec_errors,
            nofec_reps if sharded else None,
        )
    )

    schemes = (
        (simulate_integrated_immediate, "integrated_immediate", "integrated FEC 1"),
        (simulate_integrated_rounds, "integrated_rounds", "integrated FEC 2"),
    )
    for k in group_sizes:
        for scheme, simulator, prefix in schemes:
            label = f"{prefix}, k={k}"
            values, errors, reps_used = [], [], []
            for size in sizes:
                reps = _scaled_reps(replications, size)
                model = _burst_model(size, p, mean_burst)
                if sharded:
                    r = engine.point(
                        simulator, model, {"k": k}, label, size, reps
                    )
                else:
                    r = scheme(model, k, reps, rng=rng)
                values.append(r.mean)
                errors.append(r.stderr)
                reps_used.append(r.replications)
            result.series.append(
                Series(
                    label,
                    xs,
                    values,
                    errors,
                    reps_used if sharded else None,
                )
            )
    return result
