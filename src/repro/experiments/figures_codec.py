"""Figure 1: RSE encode/decode throughput vs redundancy.

The paper measured Rizzo's C coder on a Pentium 133 (1 KB packets, m = 8):
~8000 data packets/s at k = 7, h = 1, falling roughly as ``1/(h k)``.  We
re-measure our own codec on the current host.  Absolute rates differ by 25+
years of hardware; the figure's claim — throughput inversely proportional
to ``h * k``, redundancy on the x-axis — is what the reproduction checks.

Two measurement paths:

* ``path="batched"`` (default) — the production codec: one table-driven GF
  matrix product per block plus the erasure-pattern inverse cache.  This is
  what a deployment gets, but its fixed per-call cost and word-wide XOR
  selection *flatten* the paper's ``1/(h k)`` law for small configurations.
* ``path="scalar"`` — the retained row-by-row reference loops
  (:meth:`RSECodec.encode_symbols_scalar` /
  :meth:`RSECodec.decode_symbols_scalar`), structurally equivalent to
  Rizzo's coder.  The paper's scaling shape is asserted on this path;
  ``benchmarks/test_perf_codec_batch.py`` pins the batched kernels'
  speedup over it.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro import obs
from repro.experiments.series import FigureResult, Series
from repro.fec.rse import RSECodec

__all__ = ["fig01", "measure_codec_rates"]

_PATHS = ("batched", "scalar")


def _timed(fn, min_duration: float, label: str = "codec") -> float:
    """Calls per second of ``fn`` over at least ``min_duration`` seconds.

    The measurement window is an obs span, so with telemetry enabled the
    time spent benchmarking shows up in the exported registry instead of
    dying in a local; disabled, the span is a bare monotonic timer.
    """
    calls = 0
    with obs.span(f"codec_rate.{label}") as timer:
        while True:
            fn()
            calls += 1
            elapsed = timer.elapsed
            if elapsed >= min_duration:
                break
    return calls / elapsed


def measure_codec_rates(
    k: int,
    h: int,
    packet_size: int = 1024,
    min_duration: float = 0.05,
    path: str = "batched",
) -> tuple[float, float]:
    """(encode, decode) rates in *data packets per second* for one (k, h).

    Encoding rate counts original packets processed while producing ``h``
    parities per group of ``k``.  Decoding rate counts data packets
    reconstructed when ``h`` of every ``k`` originals are lost (the paper's
    definition; requires ``h <= k``); decode input uses parities in place
    of the lost originals.  ``path`` selects the production batched codec
    or the scalar reference loops (see module docstring).
    """
    if path not in _PATHS:
        raise ValueError(f"path must be one of {_PATHS}, got {path!r}")
    codec = RSECodec(k, h)
    lost = min(h, k)

    if path == "scalar":
        symbols = np.frombuffer(
            os.urandom(k * packet_size), dtype=np.uint8
        ).reshape(k, packet_size).copy()
        parities = codec.encode_symbols_scalar(symbols)
        received = {i: symbols[i] for i in range(lost, k)}
        received.update({k + j: parities[j] for j in range(lost)})

        out = codec.decode_symbols_scalar(dict(received))
        assert all(np.array_equal(out[i], symbols[i]) for i in range(k)), (
            "decode produced wrong packets during measurement"
        )
        encode_rate = k * _timed(
            lambda: codec.encode_symbols_scalar(symbols),
            min_duration,
            label="encode_scalar",
        )
        decode_rate = (
            lost * _timed(
                lambda: codec.decode_symbols_scalar(dict(received)),
                min_duration,
                label="decode_scalar",
            )
            if lost
            else math.inf
        )
        _observe_rates(path, k, h, encode_rate, decode_rate)
        return encode_rate, decode_rate

    data = [os.urandom(packet_size) for _ in range(k)]
    parities = codec.encode(data)
    received = {i: data[i] for i in range(lost, k)}
    received.update({k + j: parities[j] for j in range(lost)})

    assert codec.decode(received) == data, (
        "decode produced wrong packets during measurement"
    )
    encode_rate = k * _timed(
        lambda: codec.encode(data), min_duration, label="encode"
    )
    decode_rate = (
        lost * _timed(
            lambda: codec.decode(received), min_duration, label="decode"
        )
        if lost
        else math.inf
    )
    _observe_rates(path, k, h, encode_rate, decode_rate)
    return encode_rate, decode_rate


def _observe_rates(
    path: str, k: int, h: int, encode_rate: float, decode_rate: float
) -> None:
    """Measured rates as max-gauges in the registry (telemetry on only)."""
    if not obs.is_enabled():
        return
    obs.gauge("codec.encode_rate_pps", path=path, k=k, h=h).observe(encode_rate)
    if math.isfinite(decode_rate):
        obs.gauge(
            "codec.decode_rate_pps", path=path, k=k, h=h
        ).observe(decode_rate)


def fig01(
    group_sizes: tuple[int, ...] = (7, 20, 100),
    redundancies: tuple[float, ...] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    packet_size: int = 1024,
    min_duration: float = 0.05,
    path: str = "batched",
) -> FigureResult:
    """Figure 1: coding and decoding rates vs redundancy ``h/k``."""
    result = FigureResult(
        figure_id="fig01",
        title="RSE encoding/decoding speed vs redundancy",
        x_label="redundancy [%]",
        y_label="rate [data packets/s]",
        notes=f"P = {packet_size} bytes, GF(2^8), {path} path, this host",
    )
    for k in group_sizes:
        xs, encode_rates, decode_rates = [], [], []
        for redundancy in redundancies:
            h = max(1, round(redundancy * k))
            encode_rate, decode_rate = measure_codec_rates(
                k, h, packet_size, min_duration, path
            )
            xs.append(100.0 * h / k)
            encode_rates.append(encode_rate)
            decode_rates.append(decode_rate)
        result.series.append(Series(f"encoding k = {k}", xs, encode_rates))
        result.series.append(Series(f"decoding k = {k}", xs, decode_rates))
    return result
