"""Figure 1: RSE encode/decode throughput vs redundancy.

The paper measured Rizzo's C coder on a Pentium 133 (1 KB packets, m = 8):
~8000 data packets/s at k = 7, h = 1, falling roughly as ``1/(h k)``.  We
re-measure our own codec on the current host.  Absolute rates differ by 25+
years of hardware; the figure's claim — throughput inversely proportional
to ``h * k``, redundancy on the x-axis — is what the reproduction checks.
"""

from __future__ import annotations

import math
import os
import time

from repro.experiments.series import FigureResult, Series
from repro.fec.rse import RSECodec

__all__ = ["fig01", "measure_codec_rates"]


def measure_codec_rates(
    k: int,
    h: int,
    packet_size: int = 1024,
    min_duration: float = 0.05,
) -> tuple[float, float]:
    """(encode, decode) rates in *data packets per second* for one (k, h).

    Encoding rate counts original packets processed while producing ``h``
    parities per group of ``k``.  Decoding rate counts data packets
    reconstructed when ``h`` of every ``k`` originals are lost (the paper's
    definition; requires ``h <= k``); decode input uses parities in place
    of the lost originals.
    """
    codec = RSECodec(k, h)
    data = [os.urandom(packet_size) for _ in range(k)]
    parities = codec.encode(data)

    # --- encode ---
    blocks = 0
    start = time.perf_counter()
    while True:
        codec.encode(data)
        blocks += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_duration:
            break
    encode_rate = blocks * k / elapsed

    # --- decode: h lost data packets reconstructed from h parities ---
    lost = min(h, k)
    received = {i: data[i] for i in range(lost, k)}
    received.update({k + j: parities[j] for j in range(lost)})
    blocks = 0
    start = time.perf_counter()
    while True:
        out = codec.decode(received)
        blocks += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_duration:
            break
    assert out == data, "decode produced wrong packets during measurement"
    decode_rate = blocks * lost / elapsed if lost else math.inf
    return encode_rate, decode_rate


def fig01(
    group_sizes: tuple[int, ...] = (7, 20, 100),
    redundancies: tuple[float, ...] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    packet_size: int = 1024,
    min_duration: float = 0.05,
) -> FigureResult:
    """Figure 1: coding and decoding rates vs redundancy ``h/k``."""
    result = FigureResult(
        figure_id="fig01",
        title="RSE encoding/decoding speed vs redundancy",
        x_label="redundancy [%]",
        y_label="rate [data packets/s]",
        notes=f"P = {packet_size} bytes, GF(2^8), this host",
    )
    for k in group_sizes:
        xs, encode_rates, decode_rates = [], [], []
        for redundancy in redundancies:
            h = max(1, round(redundancy * k))
            encode_rate, decode_rate = measure_codec_rates(
                k, h, packet_size, min_duration
            )
            xs.append(100.0 * h / k)
            encode_rates.append(encode_rate)
            decode_rates.append(decode_rate)
        result.series.append(Series(f"encoding k = {k}", xs, encode_rates))
        result.series.append(Series(f"decoding k = {k}", xs, decode_rates))
    return result
