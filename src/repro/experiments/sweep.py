"""Generic parameter sweeps producing :class:`FigureResult` objects.

The figure runners hard-code the paper's parameter choices; this module is
the open-ended counterpart for exploring beyond them::

    from repro.experiments.sweep import sweep
    from repro.analysis import integrated

    result = sweep(
        lambda k, R: integrated.expected_transmissions_lower_bound(k, 0.01, R),
        x=("R", [10, 100, 1000, 10**4]),
        series=("k", [7, 20, 100]),
        figure_id="my_sweep",
        y_label="E[M]",
    )
    print(result.render_table())

``sweep`` evaluates the callable on the cartesian product of one x-axis
parameter and one series parameter; ``sweep_many`` fans several callables
over a shared x-axis.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.experiments.series import FigureResult, Series

__all__ = ["sweep", "sweep_many"]


def sweep(
    fn: Callable[..., float],
    x: tuple[str, Sequence],
    series: tuple[str, Sequence] | None = None,
    figure_id: str = "sweep",
    title: str = "",
    y_label: str = "value",
    label_format: str = "{name} = {value}",
    **fixed,
) -> FigureResult:
    """Evaluate ``fn`` over a grid and package the curves.

    Parameters
    ----------
    fn:
        Called as ``fn(**{x_name: x_value, series_name: series_value},
        **fixed)``; must return a number.
    x:
        ``(parameter_name, values)`` for the x-axis.
    series:
        Optional ``(parameter_name, values)`` producing one curve per
        value; omitted -> a single curve named after the callable.
    fixed:
        Extra keyword arguments forwarded verbatim to every call.
    """
    x_name, x_values = x
    x_floats = [float(v) for v in x_values]
    if not x_floats:
        raise ValueError("x values must be non-empty")

    result = FigureResult(
        figure_id=figure_id,
        title=title or f"{y_label} vs {x_name}",
        x_label=x_name,
        y_label=y_label,
    )
    if series is None:
        values = [float(fn(**{x_name: xv}, **fixed)) for xv in x_values]
        label = getattr(fn, "__name__", "series")
        if label == "<lambda>":
            label = "series"
        result.series.append(Series(label, x_floats, values))
        return result

    series_name, series_values = series
    if not list(series_values):
        raise ValueError("series values must be non-empty")
    for sv in series_values:
        values = [
            float(fn(**{x_name: xv, series_name: sv}, **fixed))
            for xv in x_values
        ]
        label = label_format.format(name=series_name, value=sv)
        result.series.append(Series(label, x_floats, values))
    return result


def sweep_many(
    functions: dict[str, Callable[..., float]],
    x: tuple[str, Sequence],
    figure_id: str = "sweep",
    title: str = "",
    y_label: str = "value",
    **fixed,
) -> FigureResult:
    """Fan several labelled callables over one shared x-axis."""
    x_name, x_values = x
    if not functions:
        raise ValueError("need at least one function")
    result = FigureResult(
        figure_id=figure_id,
        title=title or f"{y_label} vs {x_name}",
        x_label=x_name,
        y_label=y_label,
    )
    x_floats = [float(v) for v in x_values]
    for label, fn in functions.items():
        values = [float(fn(**{x_name: xv}, **fixed)) for xv in x_values]
        result.series.append(Series(label, x_floats, values))
    return result
