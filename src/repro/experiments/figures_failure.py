"""Correlated-failure experiments: domain outages vs independent loss.

The paper's loss models treat receivers as independent (or correlated
only through the shared backbone link); real deployments fail in
*domains* — a rack switch reboot takes out every machine under it at
once.  :mod:`repro.sim.failure` supplies the seeded availability worlds
and the site/rack/machine tree; this module asks what that correlation
costs the NP protocol:

* :func:`fail01` — the headline figure: E[M] under
  :class:`~repro.sim.failure.DomainOutageLoss` versus an independent
  :class:`~repro.sim.loss.BernoulliLoss` matched to the *same mean
  marginal loss rate*, so any gap is attributable to the correlation
  structure alone, not to the loss volume.
* :func:`failure_em` — one (generator, protocol) cell of the campaign's
  ``failure_em`` sweep grid: churned transfers driven by
  :func:`~repro.sim.failure.churn_fault_plan`, reporting E[M] and the
  degraded-completion count.

Both keep the availability worlds on simulator timescale: the canned
generators are parameterised in "minutes" while a small transfer lasts
about a second of sim time, so every duration is shrunk by
:data:`SIM_TIME_SCALE` to land a handful of outages inside a transfer.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.series import FigureResult, Series
from repro.protocols.harness import TransferReport, run_transfer
from repro.protocols.np_protocol import NPConfig
from repro.resilience.errors import TransferError
from repro.sim.failure import (
    DomainOutageLoss,
    DomainTree,
    churn_fault_plan,
    named_generator,
)
from repro.sim.loss import BernoulliLoss

__all__ = ["SIM_TIME_SCALE", "fail01", "failure_em", "failure_transfers"]

#: shrink factor from the canned generators' "minutes" to sim seconds
SIM_TIME_SCALE = 0.05


def _sim_config() -> NPConfig:
    """Small-transfer protocol config shared by every failure experiment.

    Short packet interval and watchdog so an outage of a few hundredths
    of a sim-second spans several packets but stays recoverable within
    the retry budget; ``eject`` degradation keeps a doomed receiver from
    stalling the whole cell.
    """
    return NPConfig(
        k=4,
        h=8,
        packet_size=64,
        packet_interval=0.005,
        slot_time=0.02,
        nak_watchdog=0.3,
        watchdog_retry_limit=12,
        max_rounds=60,
    )


def _payload(seed: int, n_groups: int = 24, k: int = 4, size: int = 64) -> bytes:
    return np.random.default_rng(seed).bytes(n_groups * k * size)


def failure_transfers(
    failure: str = "weibull",
    protocol: str = "np",
    n_receivers: int = 8,
    replications: int = 4,
    seed: int = 0,
    p: float = 0.02,
    horizon: float = 8.0,
) -> list[TransferReport | None]:
    """``replications`` churned transfers of one (generator, protocol) cell.

    Each replication derives its own availability world from the base
    seed, realises it as a :func:`~repro.sim.failure.churn_fault_plan`
    over a (2, 2) site/rack tree, and runs one small transfer under
    independent link loss plus the plan.  The NP protocol gets
    ``mode="crash"`` (it has crash/rejoin hooks); the others get
    ``mode="outage"`` (partition only, state kept).

    A replication whose transfer dies outright (stall/timeout under a
    brutal schedule — layered RM has no NAK watchdog, so a partition
    spanning a poll round is unrecoverable) yields ``None`` instead of a
    report: in a failure sweep that outcome is data, not an error.
    """
    tree = DomainTree(n_receivers, branching=(2, 2))
    mode = "crash" if protocol == "np" else "outage"
    config = _sim_config()
    reports = []
    for i in range(replications):
        generator = named_generator(
            failure,
            seed=seed * 1009 + i,
            horizon=horizon,
            time_scale=SIM_TIME_SCALE,
        )
        plan = churn_fault_plan(tree, generator, mode=mode)
        try:
            reports.append(
                run_transfer(
                    protocol,
                    _payload(seed * 1013 + i),
                    BernoulliLoss(n_receivers, p),
                    config=config,
                    rng=seed * 1019 + i,
                    fault_plan=plan,
                    domains=tree,
                )
            )
        except TransferError:
            reports.append(None)
    return reports


def failure_em(
    failure: str = "weibull",
    protocol: str = "np",
    receivers: tuple[int, ...] = (4, 8),
    replications: int = 3,
    seed: int = 0,
) -> FigureResult:
    """One ``failure_em`` sweep cell: E[M] vs R under one churn world."""
    values, errors, completion = [], [], []
    degraded = crashes = failed = 0
    for receiver_count in receivers:
        reports = failure_transfers(
            failure,
            protocol,
            n_receivers=receiver_count,
            replications=replications,
            seed=seed,
        )
        completed = [r for r in reports if r is not None]
        failed += len(reports) - len(completed)
        completion.append(len(completed) / len(reports))
        ems = [report.transmissions_per_packet for report in completed]
        values.append(float(np.mean(ems)) if ems else float("nan"))
        errors.append(
            float(np.std(ems) / np.sqrt(len(ems))) if ems else float("nan")
        )
        degraded += sum(1 for r in completed if r.resilience.degraded)
        crashes += sum(r.resilience.crashes for r in completed)
    total = len(receivers) * replications
    return FigureResult(
        figure_id=f"failure_em_{failure}_{protocol}",
        title=f"E[M] under {failure} churn, protocol={protocol}",
        x_label="R",
        y_label="E[M]",
        series=[
            Series(
                f"{protocol} / {failure}",
                list(map(float, receivers)),
                values,
                errors,
            ),
            # an all-stalled point has no E[M] (NaN) but still carries
            # data: the completion rate is the robustness headline for
            # watchdog-free protocols under partitions
            Series(
                "completion rate",
                list(map(float, receivers)),
                completion,
            ),
        ],
        notes=(
            f"{degraded}/{total} transfers degraded, {failed}/{total} died "
            f"outright, {crashes} receiver crashes survived"
        ),
    )


def fail01(
    failure: str = "weibull",
    receivers: tuple[int, ...] = (4, 8, 16),
    replications: int = 6,
    seed: int = 0,
    p: float = 0.02,
    horizon: float = 2.0,
) -> FigureResult:
    """F1 — correlated domain outages vs independent loss of equal mean.

    The correlated series runs NP transfers under
    :class:`~repro.sim.failure.DomainOutageLoss` (link loss OR
    any-ancestor-down on a (2, 2) domain tree, availability world
    ``failure``); the independent series re-runs each replication with a
    Bernoulli model whose rate equals that replication's mean correlated
    marginal.  The horizon is kept close to the transfer duration so the
    matched rate reflects the loss actually seen in flight.
    """
    config = _sim_config()
    cor_y, cor_err, ind_y, ind_err = [], [], [], []
    for receiver_count in receivers:
        tree = DomainTree(receiver_count, branching=(2, 2))
        cor, ind = [], []
        for i in range(replications):
            generator = named_generator(
                failure,
                seed=seed * 1009 + i,
                horizon=horizon,
                time_scale=SIM_TIME_SCALE,
            )
            model = DomainOutageLoss(
                BernoulliLoss(receiver_count, p), tree, generator
            )
            matched = BernoulliLoss(
                receiver_count,
                float(np.mean(model.marginal_loss_probability())),
            )
            data = _payload(seed * 1013 + i)
            cor.append(
                run_transfer(
                    "np", data, model, config=config, rng=seed * 1019 + i
                ).transmissions_per_packet
            )
            ind.append(
                run_transfer(
                    "np", data, matched, config=config, rng=seed * 1019 + i
                ).transmissions_per_packet
            )
        cor_y.append(float(np.mean(cor)))
        cor_err.append(float(np.std(cor) / np.sqrt(len(cor))))
        ind_y.append(float(np.mean(ind)))
        ind_err.append(float(np.std(ind) / np.sqrt(len(ind))))
    xs = list(map(float, receivers))
    return FigureResult(
        figure_id="fail01",
        title=f"Correlated ({failure}) vs independent loss of equal mean",
        x_label="R",
        y_label="E[M]",
        series=[
            Series(f"correlated ({failure} domains)", xs, cor_y, cor_err),
            Series("independent (matched mean)", xs, ind_y, ind_err),
        ],
        notes=(
            f"NP, k=4 h=8, base p={p:g}, horizon={horizon:g}s, "
            f"{replications} replications/point; equal mean marginal per "
            f"replication, so the gap is the correlation structure"
        ),
    )
