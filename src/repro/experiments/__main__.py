"""Command-line driver: regenerate paper figures as tables / CSV.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig05 fig18
    python -m repro.experiments --all --csv results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce figures from 'Parity-Based Loss Recovery for "
        "Reliable Multicast Transmission' (SIGCOMM '97).",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. fig05")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <DIR>/<figure>.csv for each figure run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for figure_id in experiment_ids():
            experiment = EXPERIMENTS[figure_id]
            print(f"{figure_id}  [{experiment.method:11s}]  {experiment.paper_caption}")
        return 0

    targets = experiment_ids() if args.all else args.figures
    if not targets:
        parser.print_usage()
        print("error: give figure ids, --all, or --list", file=sys.stderr)
        return 2

    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)

    for figure_id in targets:
        if figure_id == "fig13":
            # the timing diagram: rendered, not computed
            from repro.experiments.fig13_timing import render_timing_diagram

            print("fig13: timing of the different approaches")
            print(render_timing_diagram())
            print()
            continue
        start = time.perf_counter()
        result = run_experiment(figure_id)
        elapsed = time.perf_counter() - start
        print(result.render_table())
        print(f"[{figure_id} completed in {elapsed:.1f}s]")
        print()
        if csv_dir is not None:
            path = csv_dir / f"{figure_id}.csv"
            path.write_text(result.to_csv())
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
