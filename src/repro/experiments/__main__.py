"""Command-line driver: regenerate paper figures as tables / CSV.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig05 fig18
    python -m repro.experiments --all --csv results/

Campaign mode (supervised, parallel, crash-safe; see
:mod:`repro.campaign`) engages whenever any of ``--jobs``, ``--timeout``,
``--retries``, ``--journal`` or ``--resume`` is given::

    python -m repro.experiments --all --jobs 4 --journal campaign.jsonl
    python -m repro.experiments --resume campaign.jsonl

Transport mode (the real UDP transport; see :mod:`repro.net`) engages
when the first positional is ``serve`` or ``fetch``::

    python -m repro.experiments serve --bind 127.0.0.1:9000 --size 65536
    python -m repro.experiments fetch --connect 127.0.0.1:9000 --out f.bin

Watching a live run (read-only; see DESIGN.md section 17)::

    python -m repro.experiments --status campaign.jsonl --follow
    python -m repro.experiments watch --journal campaign.jsonl \
        --metrics 127.0.0.1:9200

Each task then runs in its own spawned process with a wall-clock budget
and a retry allowance; completed work is journaled so a killed campaign
resumes where it stopped.  The exit status is 0 only when every requested
figure produced a result — failed or quarantined figure ids are printed
and reflected in a nonzero exit code.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.series import FigureResult


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce figures from 'Parity-Based Loss Recovery for "
        "Reliable Multicast Transmission' (SIGCOMM '97).",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. fig05")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write <DIR>/<figure>.csv for each figure run",
    )
    campaign = parser.add_argument_group(
        "campaign mode (supervised subprocess execution)"
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="run figures as a campaign with N parallel workers",
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-task wall-clock budget (campaign mode; default 600)",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help="re-runs allowed per failed task before quarantine (default 1)",
    )
    campaign.add_argument(
        "--journal",
        metavar="PATH",
        help="append-only JSONL journal for crash-safe resume",
    )
    campaign.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a campaign from its journal (skips completed tasks)",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="SEED",
        help="base seed forwarded to simulation figure runners (default 0)",
    )
    mc = parser.add_argument_group(
        "sharded Monte-Carlo (figures 11/12/15/16; see repro.mc.sharded)"
    )
    mc.add_argument(
        "--mc-jobs",
        type=int,
        metavar="N",
        help="worker processes per simulated figure point "
        "(statistics identical to --mc-jobs 1)",
    )
    mc.add_argument(
        "--target-ci",
        type=float,
        metavar="HW",
        help="adaptive stopping: run each point until its 95%% CI "
        "half-width reaches HW (or the replication cap)",
    )
    mc.add_argument(
        "--mc-replications",
        type=int,
        metavar="N",
        help="replications per point (the cap, with --target-ci)",
    )
    from repro.fec.registry import codec_names

    mc.add_argument(
        "--codec",
        choices=codec_names(),
        metavar="NAME",
        help="erasure code for layered-FEC figures (11/15): one of "
        f"{{{', '.join(codec_names())}}}; non-default codecs clamp h onto "
        "their supported geometry (default: rse)",
    )
    from repro.galois.backends import backend_names

    mc.add_argument(
        "--gf-backend",
        choices=backend_names(),
        metavar="NAME",
        help="GF-kernel backend for all field matrix products: one of "
        f"{{{', '.join(backend_names())}}}; also exported as "
        "REPRO_GF_BACKEND so campaign and sharded-MC workers inherit it "
        "(default: numpy, or the REPRO_GF_BACKEND environment variable)",
    )
    from repro.sim.failure import GENERATOR_NAMES

    mc.add_argument(
        "--failure",
        choices=GENERATOR_NAMES,
        metavar="WORLD",
        help="availability world for the correlated-failure figure "
        f"(fail01): one of {{{', '.join(GENERATOR_NAMES)}}} "
        "(default: weibull)",
    )
    observability = parser.add_argument_group(
        "observability (repro.obs; see DESIGN.md section 12)"
    )
    observability.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="enable telemetry and write the merged metric registry to "
        "PATH on exit (.csv for CSV, anything else NDJSON); campaign and "
        "sharded-MC workers ship their metrics home for the merge",
    )
    observability.add_argument(
        "--status",
        metavar="PATH",
        help="print the current state of the campaign journal at PATH "
        "(read-only, works while a runner is live) and exit",
    )
    observability.add_argument(
        "--follow",
        action="store_true",
        help="with --status: re-render on --interval until Ctrl-C "
        "(read-only; a live runner keeps appending undisturbed)",
    )
    observability.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval for --status --follow (default %(default)s)",
    )
    observability.add_argument(
        "--telemetry",
        metavar="PATH",
        help="with --status: also read drift alerts from this telemetry "
        "NDJSON stream (written by --telemetry-out)",
    )
    observability.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="campaign mode: serve live OpenMetrics on "
        "http://127.0.0.1:PORT/metrics while the campaign runs "
        "(0 picks a free port; implies telemetry capture)",
    )
    observability.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="campaign mode: append delta NDJSON telemetry (plus drift "
        "alerts) to PATH while the campaign runs (implies capture)",
    )
    return parser


def _mc_kwargs(args: argparse.Namespace) -> dict:
    """Sharded-MC knobs as runner kwargs (only the ones actually given)."""
    kwargs = {}
    if args.mc_jobs is not None:
        kwargs["mc_jobs"] = args.mc_jobs
    if args.target_ci is not None:
        kwargs["target_ci"] = args.target_ci
    if args.mc_replications is not None:
        kwargs["replications"] = args.mc_replications
    if args.codec is not None:
        kwargs["codec"] = args.codec
    if args.failure is not None:
        kwargs["failure"] = args.failure
    return kwargs


def _accepted_kwargs(runner, kwargs: dict) -> dict:
    """The subset of ``kwargs`` that ``runner`` accepts by signature."""
    import inspect

    params = inspect.signature(runner).parameters
    return {key: value for key, value in kwargs.items() if key in params}


def _campaign_mode(args: argparse.Namespace) -> bool:
    return any(
        value is not None
        for value in (
            args.jobs,
            args.timeout,
            args.retries,
            args.journal,
            args.resume,
        )
    )


def _render_fig13() -> None:
    # the timing diagram: rendered, not computed
    from repro.experiments.fig13_timing import render_timing_diagram

    print("fig13: timing of the different approaches")
    print(render_timing_diagram())
    print()


def _write_csv(csv_dir: pathlib.Path, figure_id: str, result) -> None:
    path = csv_dir / f"{figure_id}.csv"
    path.write_text(result.to_csv())
    print(f"wrote {path}")


def _run_sequential(
    targets: list[str], csv_dir: pathlib.Path | None, mc_kwargs: dict
) -> int:
    """The classic in-process path; now failure-aware (nonzero exit)."""
    failed: list[str] = []
    for figure_id in targets:
        if figure_id == "fig13":
            _render_fig13()
            continue
        start = time.perf_counter()
        try:
            result = run_experiment(
                figure_id,
                **_accepted_kwargs(EXPERIMENTS[figure_id].runner, mc_kwargs),
            )
        except Exception as exc:  # noqa: BLE001 - collected and reported
            elapsed = time.perf_counter() - start
            print(
                f"[{figure_id} FAILED after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            failed.append(figure_id)
            continue
        elapsed = time.perf_counter() - start
        print(result.render_table())
        print(f"[{figure_id} completed in {elapsed:.1f}s]")
        print()
        if csv_dir is not None:
            _write_csv(csv_dir, figure_id, result)
    if failed:
        print(f"failed figures: {' '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _run_campaign(
    args: argparse.Namespace,
    targets: list[str],
    csv_dir: pathlib.Path | None,
) -> int:
    from repro.campaign import (
        CampaignRunner,
        RetryPolicy,
        deserialize_result,
        tasks_from_registry,
    )

    capture = args.metrics_out is not None
    telemetry = {}
    if args.metrics_port is not None:
        telemetry["metrics_port"] = args.metrics_port
    if args.telemetry_out is not None:
        telemetry["telemetry_path"] = args.telemetry_out
    if args.resume:
        overrides = dict(telemetry)
        if args.jobs is not None:
            overrides["jobs"] = args.jobs
        if args.timeout is not None:
            overrides["timeout"] = args.timeout
        if args.retries is not None:
            overrides["retry"] = RetryPolicy(retries=args.retries)
        if capture:
            overrides["capture_metrics"] = True
        runner = CampaignRunner.resume(args.resume, **overrides)
    else:
        if "fig13" in targets:
            # rendered, not computed: satisfy it inline, supervise the rest
            _render_fig13()
            targets = [t for t in targets if t != "fig13"]
            if not targets:
                return 0
        tasks = tasks_from_registry(targets, seed=args.seed, **_mc_kwargs(args))
        runner = CampaignRunner(
            tasks,
            jobs=args.jobs if args.jobs is not None else 1,
            timeout=args.timeout if args.timeout is not None else 600.0,
            retry=RetryPolicy(
                retries=args.retries if args.retries is not None else 1
            ),
            journal_path=args.journal,
            seed=args.seed,
            campaign_id="experiments",
            capture_metrics=capture,
            **telemetry,
        )
    if runner.metrics_port is not None or runner.telemetry_path is not None:
        # the supervisor process records too (campaign.* instruments),
        # so the live exports cover both sides of the worker boundary
        from repro import obs

        obs.enable()
    report = runner.run()
    if capture:
        from repro import obs

        obs.merge_snapshot(runner.worker_metrics)
    print(report.render_table())
    if csv_dir is not None:
        for task_id, payload in sorted(runner.results.items()):
            result = deserialize_result(payload)
            if isinstance(result, FigureResult):
                _write_csv(csv_dir, task_id, result)
    if report.status != "ok":
        print(
            f"failed figures: {' '.join(report.quarantined)}", file=sys.stderr
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("serve", "fetch"):
        # transport verbs (repro.net): serve a payload / fetch one
        from repro.net.cli import main as net_main

        return net_main(argv)
    if argv and argv[0] == "watch":
        # live dashboard over a journal + metrics endpoint
        from repro.experiments.watch import main as watch_main

        return watch_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for figure_id in experiment_ids():
            experiment = EXPERIMENTS[figure_id]
            print(f"{figure_id}  [{experiment.method:11s}]  {experiment.paper_caption}")
        return 0

    if args.status:
        from repro.campaign import JournalError, campaign_status, render_status

        def render_once() -> str:
            alerts = None
            if args.telemetry is not None:
                from repro.obs import read_alerts

                alerts = read_alerts(args.telemetry)
            return render_status(campaign_status(args.status), alerts=alerts)

        try:
            if not args.follow:
                print(render_once())
                return 0
            # --follow: same read-only reader on a loop; Ctrl-C exits 0
            while True:
                frame = render_once()
                if sys.stdout.isatty():
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(frame, flush=True)
                time.sleep(max(0.0, args.interval))
        except KeyboardInterrupt:
            print()
            return 0
        except (OSError, JournalError) as exc:
            print(f"error: cannot read journal {args.status}: {exc}",
                  file=sys.stderr)
            return 2
        return 0

    if args.metrics_out:
        from repro import obs

        obs.enable()

    if args.gf_backend is not None:
        import os

        from repro.galois.backends import BackendUnavailableError, set_backend

        try:
            set_backend(args.gf_backend)
        except BackendUnavailableError as exc:
            print(f"error: --gf-backend {args.gf_backend}: {exc}",
                  file=sys.stderr)
            return 2
        # campaign / sharded-MC workers are spawned processes: they do not
        # inherit the in-process selection, only the environment
        os.environ["REPRO_GF_BACKEND"] = args.gf_backend

    if args.resume:
        if args.figures or args.all:
            parser.print_usage()
            print(
                "error: --resume takes its task list from the journal; "
                "do not pass figure ids",
                file=sys.stderr,
            )
            return 2
        targets: list[str] = []
    else:
        targets = experiment_ids() if args.all else args.figures
        if not targets:
            parser.print_usage()
            print("error: give figure ids, --all, or --list", file=sys.stderr)
            return 2
        unknown = [
            figure_id
            for figure_id in targets
            if figure_id != "fig13" and figure_id not in EXPERIMENTS
        ]
        if unknown:
            parser.print_usage()
            print(
                f"error: unknown experiment(s) {' '.join(unknown)}; "
                f"known: {' '.join(experiment_ids())}",
                file=sys.stderr,
            )
            return 2

    csv_dir = pathlib.Path(args.csv) if args.csv else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)

    if _campaign_mode(args):
        status = _run_campaign(args, targets, csv_dir)
    else:
        status = _run_sequential(targets, csv_dir, _mc_kwargs(args))

    if args.metrics_out:
        from repro import obs

        written = obs.export_metrics(args.metrics_out)
        print(f"wrote {written} instruments to {args.metrics_out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
