"""Experiment harness: one runner per paper figure.

Usage::

    from repro.experiments import run_experiment
    result = run_experiment("fig05")
    print(result.render_table())

or from the command line::

    python -m repro.experiments fig05 fig07
    python -m repro.experiments --all --csv out/
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    experiment_ids,
    run_experiment,
)
from repro.experiments.series import FigureResult, Series

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "FigureResult",
    "Series",
]
