"""Ablation experiments beyond the paper's figures.

Each runner returns a :class:`repro.experiments.series.FigureResult`, the
same contract as the figure runners, so the CLI and the benchmark suite
drive them identically.  The questions and headline results are catalogued
in EXPERIMENTS.md; the benchmark modules add the shape assertions.
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs

from repro.analysis import integrated
from repro.analysis._series import max_survival
from repro.analysis.delay import (
    DelayParameters,
    fec1_delay,
    layered_delay,
    n2_delay,
    np_delay,
)
from repro.analysis.integrated import LrDistribution
from repro.experiments.series import FigureResult, Series
from repro.fec.rse import RSECodec, max_block_length
from repro.galois.field import GF16, GF256, GF65536
from repro.mc import (
    simulate_integrated_immediate,
    simulate_integrated_rounds,
    simulate_layered,
    simulate_nofec,
)
from repro.protocols.harness import run_transfer
from repro.protocols.np_protocol import NPConfig
from repro.sim.loss import BernoulliLoss, BurstyTreeLoss, GilbertLoss

__all__ = [
    "abl_proactive",
    "abl_suppression",
    "abl_symbol_size",
    "abl_validation",
    "abl_adaptive",
    "abl_bursty_tree",
    "abl_latency",
]


def abl_proactive(
    k: int = 7, p: float = 0.01, n_receivers: int = 10_000,
    a_values: tuple[int, ...] = tuple(range(7)),
) -> FigureResult:
    """A1 — proactive parities: bandwidth vs feedback silence."""
    bandwidth = [
        integrated.expected_transmissions_lower_bound(k, p, n_receivers, a)
        for a in a_values
    ]
    no_round = [
        1.0 - max_survival(LrDistribution(k, p, a).survival(0), n_receivers)
        for a in a_values
    ]
    xs = [float(a) for a in a_values]
    return FigureResult(
        figure_id="abl_proactive",
        title=f"Proactive parities: bandwidth vs silence "
        f"(k={k}, p={p}, R={n_receivers})",
        x_label="a (proactive parities)",
        y_label="E[M] / P(no NAK round)",
        series=[
            Series("E[M]", xs, bandwidth),
            Series("P(no feedback round)", xs, no_round),
        ],
    )


def abl_suppression(
    slots: tuple[float, ...] = (0.005, 0.02, 0.08, 0.32),
    n_receivers: int = 60,
    p: float = 0.05,
    payload_bytes: int = 30_000,
    seed: int = 77,
) -> FigureResult:
    """A2 — NAK slot size Ts vs feedback volume and completion time."""
    from repro.analysis.feedback import expected_first_round_naks

    payload = bytes(range(256)) * (payload_bytes // 256)
    naks, suppression, completion, model = [], [], [], []
    n_groups = None
    for slot in slots:
        config = NPConfig(
            k=7, h=32, packet_size=512, packet_interval=0.01, slot_time=slot
        )
        report = run_transfer(
            "np", payload, BernoulliLoss(n_receivers, p), config, rng=seed
        )
        assert report.verified
        n_groups = report.n_groups
        naks.append(float(report.naks_sent_total))
        suppression.append(report.suppression_ratio)
        completion.append(report.completion_time)
        model.append(
            expected_first_round_naks(7, p, n_receivers, slot, 0.02)
            * report.n_groups
        )
    xs = [s * 1000 for s in slots]
    return FigureResult(
        figure_id="abl_suppression",
        title=f"NAK slot size vs feedback (NP, R={n_receivers}, p={p}, "
        f"{n_groups} groups)",
        x_label="slot Ts [ms]",
        y_label="NAKs sent / suppression ratio / completion [s]",
        series=[
            Series("NAKs sent", xs, naks),
            Series("model: round-1 NAKs x groups", xs, model),
            Series("suppression ratio", xs, suppression),
            Series("completion time [s]", xs, completion),
        ],
    )


def _encode_rate(field, k: int, h: int, packet_size: int = 1024,
                 min_duration: float = 0.05) -> float:
    codec = RSECodec(k, h, field=field)
    data = [os.urandom(packet_size) for _ in range(k)]
    blocks = 0
    # an obs span instead of bare perf_counter: the measured window lands
    # in the exported registry (span.duration_seconds) when telemetry is
    # on, and costs two timer reads when it is off
    with obs.span("ablation.encode_rate", m=field.m, k=k, h=h) as timer:
        while True:
            codec.encode(data)
            blocks += 1
            elapsed = timer.elapsed
            if elapsed >= min_duration:
                break
    rate = blocks * k / elapsed
    if obs.is_enabled():
        obs.gauge("ablation.encode_rate_pps", m=field.m, k=k, h=h).observe(rate)
    return rate


def abl_symbol_size(k: int = 7, h: int = 3) -> FigureResult:
    """A3 — Galois-field symbol width vs codec rate and block capacity."""
    fields = [GF16, GF256, GF65536]
    xs = [4.0, 8.0, 16.0]
    rates = [_encode_rate(field, k, h) for field in fields]
    limits = [float(max_block_length(field)) for field in fields]
    return FigureResult(
        figure_id="abl_symbol_size",
        title=f"Symbol width m vs encode rate (k={k}, h={h}, 1 KB packets)",
        x_label="m [bits]",
        y_label="data packets/s | max block length",
        series=[
            Series("encode rate", xs, rates),
            Series("max block length n", xs, limits),
        ],
    )


def abl_validation(
    k: int = 7, p: float = 0.05, n_receivers: int = 50,
    replications: int = 600, seed: int = 4242,
) -> FigureResult:
    """A4 — analysis vs Monte-Carlo vs the event-driven NP protocol."""
    from repro.analysis import layered, nofec

    rng = np.random.default_rng(seed)
    model = BernoulliLoss(n_receivers, p)

    analysis = [
        nofec.expected_transmissions(p, n_receivers),
        layered.expected_transmissions(k, k + 2, p, n_receivers),
        integrated.expected_transmissions_lower_bound(k, p, n_receivers),
    ]
    monte_carlo = [
        simulate_nofec(model, replications, rng=rng).mean,
        simulate_layered(model, k, 2, replications, rng=rng).mean,
        simulate_integrated_rounds(model, k, replications, rng=rng).mean,
    ]
    payload = bytes(range(256)) * 120
    config = NPConfig(k=k, h=64, packet_size=512, packet_interval=0.005,
                      slot_time=0.01)
    protocol_em = float(np.mean([
        run_transfer("np", payload, BernoulliLoss(n_receivers, p), config,
                     rng=s).transmissions_per_packet
        for s in range(5)
    ]))
    xs = [0.0, 1.0, 2.0]
    return FigureResult(
        figure_id="abl_validation",
        title=f"Analysis vs simulation vs protocol (k={k}, p={p}, "
        f"R={n_receivers})",
        x_label="architecture (0=noFEC, 1=layered, 2=integrated)",
        y_label="E[M]",
        series=[
            Series("analysis", xs, analysis),
            Series("monte carlo", xs, monte_carlo),
            Series("NP protocol", [2.0], [protocol_em]),
        ],
    )


def abl_adaptive(
    n_receivers: int = 120, p: float = 0.05,
    payload_bytes: int = 150_000, seeds: tuple[int, ...] = (0, 1, 2),
) -> FigureResult:
    """A5 — adaptive proactive redundancy vs plain reactive NP."""
    config = NPConfig(k=7, h=32, packet_size=512, packet_interval=0.01)
    payload = os.urandom(payload_bytes)
    reports = {"np": [], "np-adaptive": []}
    for protocol in reports:
        for seed in seeds:
            report = run_transfer(
                protocol, payload, BernoulliLoss(n_receivers, p),
                config, rng=seed,
            )
            assert report.verified
            reports[protocol].append(report)
    xs = [0.0, 1.0]
    protocols = ["np", "np-adaptive"]

    def mean(attribute):
        return [
            float(np.mean([getattr(r, attribute) for r in reports[proto]]))
            for proto in protocols
        ]

    return FigureResult(
        figure_id="abl_adaptive",
        title=f"Adaptive proactivity vs reactive NP "
        f"(R={n_receivers}, p={p})",
        x_label="protocol (0=np, 1=np-adaptive)",
        y_label="metric value",
        series=[
            Series("E[M]", xs, mean("transmissions_per_packet")),
            Series("NAKs sent", xs, mean("naks_sent_total")),
            Series("repair rounds", xs, mean("naks_received")),
        ],
    )


def abl_bursty_tree(
    depths: tuple[int, ...] = (2, 6, 10), p: float = 0.01,
    mean_burst: float = 2.0, packet_interval: float = 0.040,
    replications: int = 150,
) -> FigureResult:
    """A6 — combined spatial+temporal correlation (Gilbert chains at nodes)."""
    xs = [float(2**d) for d in depths]
    series: dict[str, list[float]] = {
        "no FEC, bursty tree": [],
        "integrated k=7, bursty tree": [],
        "integrated k=20, bursty tree": [],
        "no FEC, independent bursts": [],
        "integrated k=7, independent bursts": [],
    }
    for depth in depths:
        r = 2**depth
        tree = BurstyTreeLoss(depth, p, mean_burst, packet_interval)
        flat = GilbertLoss.from_loss_and_burst(r, p, mean_burst, packet_interval)
        series["no FEC, bursty tree"].append(
            simulate_nofec(tree, replications, rng=depth).mean
        )
        series["integrated k=7, bursty tree"].append(
            simulate_integrated_rounds(tree, 7, replications, rng=depth + 50).mean
        )
        series["integrated k=20, bursty tree"].append(
            simulate_integrated_rounds(tree, 20, replications, rng=depth + 100).mean
        )
        series["no FEC, independent bursts"].append(
            simulate_nofec(flat, replications, rng=depth + 150).mean
        )
        series["integrated k=7, independent bursts"].append(
            simulate_integrated_rounds(flat, 7, replications, rng=depth + 200).mean
        )
    return FigureResult(
        figure_id="abl_bursty_tree",
        title=f"Combined shared+burst loss (p={p}, b={mean_burst:g})",
        x_label="R",
        y_label="transmissions E[M]",
        series=[Series(label, xs, values) for label, values in series.items()],
    )


def abl_latency(
    k: int = 7, p: float = 0.05, n_receivers: int = 40,
    replications: int = 25,
) -> FigureResult:
    """A7 — completion latency per scheme: models vs event-driven machines."""
    timing = DelayParameters(packet_interval=0.01, latency=0.02,
                             slot_time=0.02)

    def simulate(protocol: str, h: int) -> float:
        config = NPConfig(k=k, h=h, packet_size=256, packet_interval=0.01,
                          slot_time=0.02)
        payload = os.urandom(k * 256)
        return float(np.mean([
            run_transfer(protocol, payload, BernoulliLoss(n_receivers, p),
                         config, rng=seed,
                         latency=timing.latency).completion_time
            for seed in range(replications)
        ]))

    xs = [0.0, 1.0, 2.0, 3.0]
    model = [
        fec1_delay(k, p, n_receivers, timing),
        np_delay(k, p, n_receivers, timing),
        layered_delay(k, 2, p, n_receivers, timing),
        n2_delay(k, p, n_receivers, timing),
    ]
    simulated = [
        simulate("fec1", 32),
        simulate("np", 32),
        simulate("layered", 2),
        simulate("n2", 32),
    ]
    return FigureResult(
        figure_id="abl_latency",
        title=f"Group completion latency (k={k}, p={p}, R={n_receivers})",
        x_label="scheme (0=fec1, 1=np, 2=layered, 3=n2)",
        y_label="seconds",
        series=[
            Series("model", xs, model),
            Series("simulated", xs, simulated),
        ],
    )
