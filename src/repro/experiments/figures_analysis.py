"""Figure runners driven by the closed-form models (Figures 3-10, 17, 18).

Each ``figNN`` function regenerates the data behind the corresponding paper
figure and returns a :class:`repro.experiments.series.FigureResult` whose
series labels match the paper's legends.
"""

from __future__ import annotations

from repro.analysis import integrated, layered, nofec
from repro.analysis.hetero import (
    TwoClassPopulation,
    integrated_two_class,
    nofec_two_class,
)
from repro.analysis.throughput import PAPER_COSTS, n2_rates, np_rates
from repro.experiments.series import FigureResult, Series

__all__ = [
    "receiver_grid",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig17",
    "fig18",
]

#: Default loss probability of Sections 3-4.
DEFAULT_P = 0.01


def receiver_grid(max_exponent: int = 6, per_decade: tuple[int, ...] = (1, 2, 5)) -> list[int]:
    """Log-spaced receiver counts 1 .. 10^max_exponent, like the figures."""
    grid = []
    for exponent in range(max_exponent):
        grid.extend(m * 10**exponent for m in per_decade)
    grid.append(10**max_exponent)
    return grid


def _layered_figure(figure_id: str, h: int, p: float, grid: list[int]) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=f"Non-FEC versus layered FEC with h={h} parity packets",
        x_label="R",
        y_label="transmissions E[M]",
    )
    result.series.append(
        Series("no FEC", list(map(float, grid)),
               [nofec.expected_transmissions(p, r) for r in grid])
    )
    for k in (7, 20, 100):
        result.series.append(
            Series(
                f"layered FEC, k = {k}",
                list(map(float, grid)),
                [layered.expected_transmissions(k, k + h, p, r) for r in grid],
            )
        )
    return result


def fig03(p: float = DEFAULT_P, grid: list[int] | None = None) -> FigureResult:
    """Figure 3: layered FEC with h = 2 for k = 7, 20, 100 (p = 0.01)."""
    return _layered_figure("fig03", 2, p, grid or receiver_grid())


def fig04(p: float = DEFAULT_P, grid: list[int] | None = None) -> FigureResult:
    """Figure 4: layered FEC with h = 7 for k = 7, 20, 100 (p = 0.01)."""
    return _layered_figure("fig04", 7, p, grid or receiver_grid())


def fig05(p: float = DEFAULT_P, grid: list[int] | None = None) -> FigureResult:
    """Figure 5: layered vs integrated (lower bound) for k = 7."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    k, h = 7, 2
    return FigureResult(
        figure_id="fig05",
        title="E[M] versus R, TG size 7: layered vs integrated FEC",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("no FEC", xs, [nofec.expected_transmissions(p, r) for r in grid]),
            Series(
                "layered",
                xs,
                [layered.expected_transmissions(k, k + h, p, r) for r in grid],
            ),
            Series(
                "integrated",
                xs,
                [
                    integrated.expected_transmissions_lower_bound(k, p, r)
                    for r in grid
                ],
            ),
        ],
        notes=f"layered uses h={h}; integrated is the n=inf lower bound",
    )


def fig06(p: float = DEFAULT_P, grid: list[int] | None = None) -> FigureResult:
    """Figure 6: integrated FEC, k = 7, finite parity budgets n = 8, 9, 10, inf."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    k = 7
    result = FigureResult(
        figure_id="fig06",
        title="Integrated FEC with k = 7 for different parity budgets",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("non-FEC", xs, [nofec.expected_transmissions(p, r) for r in grid])
        ],
    )
    for n in (8, 9, 10):
        result.series.append(
            Series(
                f"(7,{n})",
                xs,
                [integrated.expected_transmissions(k, n, p, r) for r in grid],
            )
        )
    result.series.append(
        Series(
            "(7,inf)",
            xs,
            [integrated.expected_transmissions_lower_bound(k, p, r) for r in grid],
        )
    )
    return result


def fig07(p: float = DEFAULT_P, grid: list[int] | None = None) -> FigureResult:
    """Figure 7: idealised integrated FEC vs R for k = 7, 20, 100."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    result = FigureResult(
        figure_id="fig07",
        title="Influence of k on idealized integrated FEC (p = 0.01)",
        x_label="R",
        y_label="transmissions E[M]",
        series=[
            Series("no FEC", xs, [nofec.expected_transmissions(p, r) for r in grid])
        ],
    )
    for k in (7, 20, 100):
        result.series.append(
            Series(
                f"integr. FEC, k = {k}",
                xs,
                [
                    integrated.expected_transmissions_lower_bound(k, p, r)
                    for r in grid
                ],
            )
        )
    return result


def fig08(
    n_receivers: int = 1000, p_grid: list[float] | None = None
) -> FigureResult:
    """Figure 8: idealised integrated FEC vs loss probability (R = 1000)."""
    if p_grid is None:
        p_grid = [
            m * 10**e for e in (-3, -2) for m in (1, 2, 5)
        ] + [0.1]
    result = FigureResult(
        figure_id="fig08",
        title=f"Influence of k on idealized integrated FEC, R = {n_receivers}",
        x_label="p",
        y_label="transmissions E[M]",
        series=[
            Series(
                "no FEC",
                list(p_grid),
                [nofec.expected_transmissions(p, n_receivers) for p in p_grid],
            )
        ],
    )
    for k in (7, 20, 100):
        result.series.append(
            Series(
                f"integr. FEC, k = {k}",
                list(p_grid),
                [
                    integrated.expected_transmissions_lower_bound(k, p, n_receivers)
                    for p in p_grid
                ],
            )
        )
    return result


_HETERO_FRACTIONS = (0.0, 0.01, 0.05, 0.25)


def fig09(grid: list[int] | None = None) -> FigureResult:
    """Figure 9: two-class heterogeneous populations, no FEC."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    result = FigureResult(
        figure_id="fig09",
        title="Reliable multicast without FEC, heterogeneous receivers",
        x_label="R",
        y_label="transmissions E[M]",
    )
    for fraction in _HETERO_FRACTIONS:
        values = [
            nofec_two_class(TwoClassPopulation(r, fraction)) for r in grid
        ]
        result.series.append(
            Series(f"high loss: {fraction:.0%}", xs, values)
        )
    return result


def fig10(k: int = 7, grid: list[int] | None = None) -> FigureResult:
    """Figure 10: two-class heterogeneous populations, integrated FEC k=7."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    result = FigureResult(
        figure_id="fig10",
        title=f"Integrated FEC (k={k}), heterogeneous receivers",
        x_label="R",
        y_label="transmissions E[M]",
    )
    for fraction in _HETERO_FRACTIONS:
        values = [
            integrated_two_class(TwoClassPopulation(r, fraction), k)
            for r in grid
        ]
        result.series.append(
            Series(f"high loss: {fraction:.0%}", xs, values)
        )
    return result


def fig17(
    k: int = 20, p: float = DEFAULT_P, grid: list[int] | None = None
) -> FigureResult:
    """Figure 17: sender/receiver processing rates, N2 vs NP (pkts/msec)."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    n2_sender, n2_receiver, np_sender, np_receiver = [], [], [], []
    for r in grid:
        n2 = n2_rates(p, r, PAPER_COSTS)
        np_ = np_rates(p, k, r, PAPER_COSTS)
        n2_sender.append(n2.sender_rate / 1000.0)
        n2_receiver.append(n2.receiver_rate / 1000.0)
        np_sender.append(np_.sender_rate / 1000.0)
        np_receiver.append(np_.receiver_rate / 1000.0)
    return FigureResult(
        figure_id="fig17",
        title=f"Processing rates for k = {k}, p = {p}",
        x_label="R",
        y_label="processing rate [pkts/msec]",
        series=[
            Series("N2 sender", xs, n2_sender),
            Series("N2 receiver", xs, n2_receiver),
            Series("NP sender", xs, np_sender),
            Series("NP receiver", xs, np_receiver),
        ],
    )


def fig18(
    k: int = 20, p: float = DEFAULT_P, grid: list[int] | None = None
) -> FigureResult:
    """Figure 18: throughput of N2 vs NP with/without pre-encoding."""
    grid = grid or receiver_grid()
    xs = list(map(float, grid))
    n2_thr, np_thr, np_pre_thr = [], [], []
    for r in grid:
        n2_thr.append(n2_rates(p, r, PAPER_COSTS).throughput / 1000.0)
        np_thr.append(np_rates(p, k, r, PAPER_COSTS).throughput / 1000.0)
        np_pre_thr.append(
            np_rates(p, k, r, PAPER_COSTS, pre_encoded=True).throughput / 1000.0
        )
    return FigureResult(
        figure_id="fig18",
        title=f"Throughput comparison (p={p}, k={k})",
        x_label="R",
        y_label="throughput [pkts/msec]",
        series=[
            Series("N2", xs, n2_thr),
            Series("NP", xs, np_thr),
            Series("NP pre-encode", xs, np_pre_thr),
        ],
    )
