"""Closed-form performance models — every equation in the paper.

Submodules:

* :mod:`repro.analysis.nofec` — plain ARQ baseline;
* :mod:`repro.analysis.layered` — Equations (2)-(3) and (7);
* :mod:`repro.analysis.integrated` — Equations (4)-(6) and (8), finite and
  infinite parity budgets;
* :mod:`repro.analysis.hetero` — two-class populations of Section 3.3;
* :mod:`repro.analysis.rounds` — round counts E[T], E[Tr] (appendix);
* :mod:`repro.analysis.throughput` — N2/NP processing rates, Equations
  (9)-(16).
"""

from repro.analysis import (
    delay,
    fbt,
    feedback,
    hetero,
    integrated,
    layered,
    nofec,
    rounds,
    throughput,
)
from repro.analysis.hetero import TwoClassPopulation
from repro.analysis.throughput import PAPER_COSTS, ProcessingCosts, RateReport

__all__ = [
    "nofec",
    "fbt",
    "delay",
    "feedback",
    "layered",
    "integrated",
    "hetero",
    "rounds",
    "throughput",
    "TwoClassPopulation",
    "ProcessingCosts",
    "PAPER_COSTS",
    "RateReport",
]
