"""Closed-form model of **integrated FEC** / hybrid ARQ (Section 3.2).

The generic protocol: the sender transmits a TG of ``k`` data packets plus
``a`` proactive parities; receivers report how many packets they still need;
the sender multicasts that many *new* parities, repeating until everyone can
decode (or, with a finite FEC block of ``n`` packets, until the parities run
out and the leftovers recurse into a fresh TG).

Key random variables (paper notation):

* ``Lr`` — additional parity transmissions needed by one receiver.  The
  block decodes once ``k`` of the transmissions got through, so ``k + a +
  Lr`` is a negative-binomial waiting time:

  ``P(Lr = 0) = sum_{j<=a} C(k+a, j) p^j (1-p)^(k+a-j)``
  ``P(Lr = m) = C(k+a+m-1, k-1) p^(m+a) (1-p)^k``  for ``m >= 1``.

* ``L = max_r Lr`` over ``R`` independent receivers — Equation (4).
* Unlimited parities (``n = inf``) give the paper's lower bound,
  Equation (6): ``E[M] = (E[L] + k + a) / k``.
* Finite ``n`` adds full-block recursions governed by the layered-FEC
  residual loss ``q(k, n, p)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis._series import expected_max_geometric, max_survival
from repro.analysis.layered import rm_loss_probability

__all__ = [
    "LrDistribution",
    "expected_additional_parities",
    "expected_transmissions_lower_bound",
    "expected_transmissions",
    "expected_transmissions_heterogeneous",
]

_TOLERANCE = 1e-12
_MAX_TERMS = 1_000_000


class LrDistribution:
    """Lazy distribution of ``Lr``, the per-receiver additional-parity count.

    Parameters mirror the generic protocol: TG size ``k``, loss probability
    ``p``, proactive parities ``a``.  Values are built incrementally with
    the stable pmf recursion
    ``pmf(m+1) = pmf(m) * p * (k + a + m) / (a + m + 1)``.

    The class tracks the *survival* function ``P(Lr > m)`` rather than the
    CDF: with a million receivers the max-over-R computation needs survival
    values far below machine epsilon, where ``1 - cdf`` would saturate.
    """

    def __init__(self, k: int, p: float, a: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if a < 0:
            raise ValueError(f"proactive parity count a must be >= 0, got {a}")
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.k = k
        self.p = p
        self.a = a
        # pmf values for m >= 1; _pmf[i] holds pmf(i + 1).
        if p == 0.0:
            self._pmf: list[float] = [0.0]
        else:
            # pmf(1) = C(k+a, k-1) p^(1+a) (1-p)^k, in log space
            log_pmf = (
                math.lgamma(k + a + 1)
                - math.lgamma(k)
                - math.lgamma(a + 2)
                + (1 + a) * math.log(p)
                + k * math.log1p(-p)
            )
            self._pmf = [math.exp(log_pmf)]
        self._survival_cache: dict[int, float] = {}

    def _pmf_at(self, j: int) -> float:
        """``pmf(j)`` for ``j >= 1``, extending the recursion as needed."""
        while len(self._pmf) < j:
            i = len(self._pmf)  # currently holds pmf(i); append pmf(i + 1)
            self._pmf.append(
                self._pmf[-1] * self.p * (self.k + self.a + i) / (self.a + i + 1)
            )
        return self._pmf[j - 1]

    def survival(self, m: int) -> float:
        """``P(Lr > m)`` as a direct tail sum of the pmf.

        Summing ``pmf(m+1) + pmf(m+2) + ...`` involves only additions of
        positive terms, so survivals far below machine epsilon — which the
        R=10^6 max-statistics need — come out exact instead of drowning in
        the cancellation of ``1 - cdf``.  (That the pmf tail sums to the
        true survival is the negative-binomial identity
        ``sum_{j>=1} C(k+j-1, k-1) p^j (1-p)^k = 1 - P(Lr = 0)``.)
        """
        if m < 0:
            return 1.0
        cached = self._survival_cache.get(m)
        if cached is not None:
            return cached
        total = 0.0
        j = m + 1
        while j < _MAX_TERMS:
            term = self._pmf_at(j)
            total += term
            if term <= total * 1e-18 or term < 1e-320:
                break
            j += 1
        value = min(1.0, total)
        self._survival_cache[m] = value
        return value

    def cdf(self, m: int) -> float:
        """``P(Lr <= m)``."""
        return 1.0 - self.survival(m)

    def pmf(self, m: int) -> float:
        """``P(Lr = m)``."""
        if m < 0:
            return 0.0
        return self.survival(m - 1) - self.survival(m)


def _expected_max(survival_fn, population: float) -> float:
    """``E[max over R receivers]`` from a per-receiver survival function."""
    total = 0.0
    for m in range(_MAX_TERMS):
        term = max_survival(survival_fn(m), population)
        total += term
        if term < _TOLERANCE:
            return total
    raise RuntimeError("E[L] series failed to converge")


def expected_additional_parities(
    k: int, p: float, n_receivers: float, a: int = 0
) -> float:
    """``E[L]`` — Equation (5): expected on-demand parity transmissions."""
    if n_receivers <= 0:
        raise ValueError(f"n_receivers must be positive, got {n_receivers}")
    lr = LrDistribution(k, p, a)
    return _expected_max(lr.survival, n_receivers)


def expected_transmissions_lower_bound(
    k: int, p: float, n_receivers: float, a: int = 0
) -> float:
    """Equation (6) with unlimited parities: ``E[M] = (E[L] + k + a) / k``.

    This is the idealised integrated-FEC curve the paper uses in Figures
    5, 7, 8, 10 and 12.
    """
    return (expected_additional_parities(k, p, n_receivers, a) + k + a) / k


def expected_transmissions(
    k: int, n: int, p: float, n_receivers: float, a: int = 0
) -> float:
    """E[M] for integrated FEC with a *finite* FEC block of ``n`` packets.

    Follows the paper's block-recursion argument: the number of FEC blocks
    ``B`` that include an arbitrary packet satisfies ``P(B <= i) =
    (1 - q^i)^R`` with ``q = q(k, n, p)`` from Equation (2); the first
    ``B - 1`` blocks are transmitted in full (``n`` packets), the last block
    costs ``k + a`` packets plus ``L`` extra parities conditioned on the
    block sufficing (``L <= n - k - a``)::

        E[M] = ((E[B] - 1) n + k + a + E[L | L <= n-k-a]) / k

    For ``n = k`` (no parities at all) this collapses to the no-FEC model,
    and as ``n -> inf`` it approaches the lower bound of Equation (6).
    """
    if n < k + a:
        raise ValueError(f"need n >= k + a, got n={n}, k={k}, a={a}")
    if math.isinf(n):
        return expected_transmissions_lower_bound(k, p, n_receivers, a)
    q = rm_loss_probability(k, n, p)
    expected_blocks = expected_max_geometric(q, n_receivers)

    budget = n - k - a  # parities available on demand in a block
    lr = LrDistribution(k, p, a)
    prob_within = 1.0 - max_survival(lr.survival(budget), n_receivers)
    if prob_within <= 0.0:
        conditional_extra = float(budget)
    else:
        # E[L | L <= budget] = sum_{m<budget} (1 - F(m) / F(budget))
        conditional_extra = sum(
            1.0
            - (1.0 - max_survival(lr.survival(m), n_receivers)) / prob_within
            for m in range(budget)
        )
    return ((expected_blocks - 1.0) * n + k + a + conditional_extra) / k


def expected_transmissions_heterogeneous(
    k: int, probabilities, a: int = 0
) -> float:
    """Equations (6)+(8): integrated-FEC lower bound, per-receiver ``p_r``.

    ``P(L <= m) = prod_r P(Lr <= m)`` — receivers with different loss rates
    multiply their CDFs.  Equal classes are collapsed for efficiency.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D vector")
    values, counts = np.unique(probabilities, return_counts=True)
    distributions = [LrDistribution(k, float(p), a) for p in values]

    def survival(m: int) -> float:
        log_sum = 0.0
        for count, dist in zip(counts, distributions):
            per_receiver = dist.survival(m)
            if per_receiver >= 1.0:
                return 1.0
            log_sum += count * math.log1p(-per_receiver)
        return -math.expm1(log_sum)

    total = 0.0
    for m in range(_MAX_TERMS):
        term = survival(m)
        total += term
        if term < _TOLERANCE:
            break
    else:
        raise RuntimeError("heterogeneous E[L] series failed to converge")
    return (total + k + a) / k
