"""First-order completion-latency models (the paper's deferred question).

Section 3 notes that fewer transmissions should usually mean lower latency
but never quantifies it.  These models do, at first order, for one
transmission group delivered to all R receivers.  Ingredients:

* pacing ``Delta`` between transmissions and one-way latency ``L``;
* the expected slot wait ``W`` before the decisive NAK of a round (taken
  as ``Ts / 2`` — the worst-off receiver sits in a low slot);
* round counts from :mod:`repro.analysis.rounds` and transmission counts
  from the E[M] models — for a fixed round structure, the *round
  distribution* of NP and N2 is identical (``P(Tr <= m) = (1 - p^m)^k``),
  so their latency difference is purely the per-round transmission volume.

The models deliberately ignore second-order effects (interleaving of
groups at the sender, slot-quantisation of NAK arrivals, control-plane
latency of polls), so the test suite holds them to the event-driven
simulation within a tolerance band rather than exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import integrated, nofec
from repro.analysis._series import expected_from_survival, power_survival
from repro.analysis.layered import rm_loss_probability
from repro.analysis.rounds import expected_rounds

__all__ = ["DelayParameters", "np_delay", "n2_delay", "fec1_delay",
           "layered_delay"]


@dataclass(frozen=True)
class DelayParameters:
    """Timing inputs shared by the delay models (seconds)."""

    packet_interval: float = 0.040  # Delta
    latency: float = 0.020  # one-way L
    slot_time: float = 0.050  # Ts

    def __post_init__(self) -> None:
        if min(self.packet_interval, self.slot_time) <= 0 or self.latency < 0:
            raise ValueError("timing parameters must be positive (latency >= 0)")

def _round_based_delay(
    k: int,
    rounds: float,
    repairs: float,
    timing: DelayParameters,
) -> float:
    """Shared skeleton of the NP/N2 models.

    * initial round: ``k Delta`` of transmissions plus one propagation leg;
    * per feedback round: two propagation legs plus the decisive NAK's slot
      wait.  The slot index is ``s - l`` (Section 5.1: needier receivers
      answer *earlier*), so after the first round — where ``s = k`` and
      the worst need ``l`` is small — the wait is nearly ``(k - l) Ts``;
      in later rounds ``s`` equals the previous round's repair count and
      the wait collapses to about half a slot;
    * ``Delta`` per repair packet transmitted.
    """
    extra_rounds = max(0.0, rounds - 1.0)
    if extra_rounds > 0:
        mean_need = repairs / extra_rounds
        first_wait = max(0.0, k - mean_need + 0.5) * timing.slot_time
        # the first-round wait only occurs if a second round happens at
        # all (weight ~ E[extra rounds] clamped to 1); further rounds sit
        # in low slots (s ~ previous repair count)
        slot_waits = (
            min(1.0, extra_rounds) * first_wait
            + max(0.0, extra_rounds - 1.0) * 0.5 * timing.slot_time
        )
    else:
        slot_waits = 0.0
    return (
        k * timing.packet_interval
        + timing.latency
        + extra_rounds * 2.0 * timing.latency
        + slot_waits
        + repairs * timing.packet_interval
    )


def np_delay(
    k: int, p: float, n_receivers: float,
    timing: DelayParameters = DelayParameters(),
) -> float:
    """Expected time until the last receiver decodes one NP group."""
    rounds = expected_rounds(p, k, n_receivers)
    repairs = k * (
        integrated.expected_transmissions_lower_bound(k, p, n_receivers) - 1.0
    )
    return _round_based_delay(k, rounds, repairs, timing)


def n2_delay(
    k: int, p: float, n_receivers: float,
    timing: DelayParameters = DelayParameters(),
) -> float:
    """Expected completion time of the same group under no-FEC repair.

    Identical round structure to NP in the aggregate-feedback idealisation
    (the round distribution depends only on per-packet attempts), with the
    per-round repair volume of retransmitting distinct originals:
    ``k (E[M_nofec] - 1)`` in total.  The event-driven N2 runs *slower*
    than this model because its set-based NAKs aggregate imperfectly and
    splinter rounds — which is itself the paper's point about per-TG count
    feedback; the test suite asserts the model as a lower bound for N2.
    """
    rounds = expected_rounds(p, k, n_receivers)
    repairs = k * (nofec.expected_transmissions(p, n_receivers) - 1.0)
    return _round_based_delay(k, rounds, repairs, timing)


def fec1_delay(
    k: int, p: float, n_receivers: float,
    timing: DelayParameters = DelayParameters(),
) -> float:
    """Expected completion time of the feedback-free parity stream.

    The sender never waits: data and the ``E[L]`` on-demand parities all
    flow at ``Delta``.  This is the latency floor of integrated FEC (and
    the reason the scheme exists despite its membership-signalling cost).
    """
    total = k + integrated.expected_additional_parities(k, p, n_receivers)
    return total * timing.packet_interval + timing.latency


def layered_delay(
    k: int, h: int, p: float, n_receivers: float,
    timing: DelayParameters = DelayParameters(),
) -> float:
    """Expected completion time of layered FEC for one group.

    Every block round transmits the full ``n = k + h`` packets; block
    rounds repeat with the residual loss ``q(k, n, p)`` until every
    receiver has recovered every packet of the group, separated by a
    feedback round trip.
    """
    n = k + h
    q = rm_loss_probability(k, n, p)

    def survival(i: int) -> float:
        if i == 0:
            return 1.0
        # a receiver still misses *some* packet of the group after i
        # block rounds with probability 1 - (1 - q^i)^k
        per_receiver = 1.0 - (1.0 - q**i) ** k
        return power_survival(1.0 - per_receiver, n_receivers)

    block_rounds = expected_from_survival(survival)
    feedback_overhead = 2.0 * timing.latency + 0.5 * timing.slot_time
    return (
        block_rounds * n * timing.packet_interval
        + timing.latency
        + (block_rounds - 1.0) * feedback_overhead
    )
