"""Expected NAK volume under slotting-and-damping (Section 5.1's mechanism).

The paper states the design goal — "with our slotting and damping
mechanism the sender will ideally receive a single NAK after every round"
— without quantifying how close the mechanism gets.  This model does, for
the first feedback round of one NP transmission group.

Mechanism recap: after ``POLL(i, s)`` a receiver still needing ``l``
packets draws a timeout uniformly in slot ``s - l`` (width ``Ts``); it
cancels on overhearing a NAK with ``m >= l``.  Feedback therefore comes
from the *neediest* receivers — those with the maximum need ``L`` — who
occupy the earliest populated slot; receivers in later slots hear the
first NAK (one propagation latency away) long before their slot starts,
provided ``Ts`` exceeds the latency.

Within the earliest slot, ties race: a NAK only suppresses peers whose
timer lies more than one suppression delay ``tau`` after it — and since
NAKs are multicast directly among receivers, ``tau`` is a single one-way
latency.
For ``N`` iid uniform timers on ``[0, Ts]``, the expected number that
fire within ``tau`` of the earliest is ``1 + (N - 1) * q`` with
``q = 1 - (1 - min(tau/Ts, 1))^... `` — to first order
``1 + (N - 1) * tau / Ts`` for ``tau << Ts``.  (Exact small-``N``
expression below.)

Combining with the distribution of the maximum need and its tie count:

``E[NAKs] = sum_m [ P(L = m) + (E[ties at m] - P(L = m)) * q ]``

where ``E[ties at m] = R * pmf(m) * F(m)^(R-1)`` (receiver has need m,
everyone else at most m).  Needs are Binomial(k, p); receivers with zero
need never NAK.
"""

from __future__ import annotations

from repro.analysis._series import binomial_pmf

__all__ = [
    "race_window_probability",
    "expected_first_round_naks",
    "suppression_effectiveness",
]


def race_window_probability(tau: float, slot_time: float) -> float:
    """P(a uniform timer lands within ``tau`` of another's) — the pairwise
    probability that a tied receiver fires before suppression reaches it.

    For two iid uniforms on ``[0, Ts]``: ``P(|U1 - U2| < tau)``
    ``= 1 - (1 - tau/Ts)^2`` for ``tau <= Ts``... but what the model needs
    is the probability that a *given* tied receiver beats the window of
    the earliest firer; conditioning on being non-earliest, that is
    ``P(U - U_min < tau)``, well approximated by ``tau/Ts`` for
    ``tau << Ts``.  We use the clamped linear form.
    """
    if slot_time <= 0:
        raise ValueError("slot_time must be positive")
    if tau < 0:
        raise ValueError("tau must be >= 0")
    return min(1.0, tau / slot_time)


def expected_first_round_naks(
    k: int,
    p: float,
    n_receivers: int,
    slot_time: float = 0.050,
    latency: float = 0.020,
    max_need: int | None = None,
) -> float:
    """Expected NAKs actually transmitted in round 1 of one NP group.

    Parameters mirror the protocol: TG size ``k``, per-packet loss ``p``,
    population ``R``, slot width ``Ts`` and one-way ``latency`` — the
    suppression delay between two receivers is one latency on the shared
    feedback multicast.

    Returns 0 when no receiver loses anything (then nobody NAKs).
    """
    if k < 1 or n_receivers < 1:
        raise ValueError("need k >= 1 and n_receivers >= 1")
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1)")
    if p == 0.0:
        return 0.0
    max_need = k if max_need is None else min(max_need, k)
    q = race_window_probability(latency, slot_time)

    # need distribution per receiver: Binomial(k, p); F = cdf
    pmf = [binomial_pmf(k, m, p) for m in range(max_need + 1)]
    cdf = []
    running = 0.0
    for value in pmf:
        running += value
        cdf.append(min(1.0, running))

    expected = 0.0
    for m in range(1, max_need + 1):
        prob_max_at_m = cdf[m] ** n_receivers - cdf[m - 1] ** n_receivers
        if prob_max_at_m <= 0.0:
            continue
        # E[# receivers with need m while all others <= m]
        expected_ties = (
            n_receivers * pmf[m] * cdf[m] ** (n_receivers - 1)
        )
        extra = max(0.0, expected_ties - prob_max_at_m)
        expected += prob_max_at_m + extra * q
    return expected


def suppression_effectiveness(
    k: int,
    p: float,
    n_receivers: int,
    slot_time: float = 0.050,
    latency: float = 0.020,
) -> float:
    """Fraction of would-be NAKs damped in round 1.

    Without suppression every receiver that lost at least one packet NAKs:
    ``R * (1 - (1-p)^k)`` expected NAKs.  With slotting-and-damping only
    :func:`expected_first_round_naks` get out.
    """
    would_be = n_receivers * (1.0 - (1.0 - p) ** k)
    if would_be <= 0.0:
        return 0.0
    actual = expected_first_round_naks(k, p, n_receivers, slot_time, latency)
    return max(0.0, 1.0 - actual / would_be)
