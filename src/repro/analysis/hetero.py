"""Heterogeneous-population scenarios (Section 3.3).

Thin convenience layer over the heterogeneous variants in
:mod:`repro.analysis.nofec`, :mod:`repro.analysis.layered` and
:mod:`repro.analysis.integrated`, specialised to the paper's two-class
population: a fraction ``alpha`` of *high-loss* receivers at ``p_high`` and
the remainder at ``p_low``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import integrated, layered, nofec

__all__ = ["TwoClassPopulation", "nofec_two_class", "layered_two_class",
           "integrated_two_class"]


@dataclass(frozen=True)
class TwoClassPopulation:
    """The Section 3.3 population: ``R (1-alpha)`` low-loss receivers at
    ``p_low`` and ``R alpha`` high-loss receivers at ``p_high``."""

    n_receivers: int
    fraction_high: float
    p_low: float = 0.01
    p_high: float = 0.25

    def __post_init__(self) -> None:
        if self.n_receivers < 1:
            raise ValueError("need at least one receiver")
        if not 0.0 <= self.fraction_high <= 1.0:
            raise ValueError("fraction_high must be in [0, 1]")
        for p in (self.p_low, self.p_high):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"loss probabilities must be in [0, 1), got {p}")

    @property
    def n_high(self) -> int:
        return int(round(self.fraction_high * self.n_receivers))

    @property
    def n_low(self) -> int:
        return self.n_receivers - self.n_high

    def probabilities(self) -> np.ndarray:
        """Explicit per-receiver vector (low-loss first)."""
        out = np.full(self.n_receivers, self.p_low)
        if self.n_high:
            out[self.n_low:] = self.p_high
        return out


def nofec_two_class(population: TwoClassPopulation) -> float:
    """E[M] without FEC for a two-class population (Figure 9)."""
    return nofec.expected_transmissions_heterogeneous(population.probabilities())


def layered_two_class(population: TwoClassPopulation, k: int, n: int) -> float:
    """Equation (7) for a two-class population."""
    return layered.expected_transmissions_heterogeneous(
        k, n, population.probabilities()
    )


def integrated_two_class(population: TwoClassPopulation, k: int, a: int = 0) -> float:
    """Equations (6)+(8) lower bound for a two-class population (Figure 10)."""
    return integrated.expected_transmissions_heterogeneous(
        k, population.probabilities(), a
    )
