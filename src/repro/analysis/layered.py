"""Closed-form model of **layered FEC** (Section 3.1, after Huitema).

The FEC layer sends every transmission group of ``k`` data packets together
with ``h = n - k`` parities.  A data packet fails to reach the RM layer of a
receiver iff it is lost *and* the block is undecodable (more than ``h - 1``
of the other ``n - 1`` packets also lost) — Equation (2):

``q(k, n, p) = p * (1 - sum_{j=0}^{n-k-1} C(n-1, j) p^j (1-p)^(n-1-j))``

The RM layer then behaves like plain ARQ with loss probability ``q``, and
every data packet drags ``n/k`` transmissions of FEC-layer bandwidth —
Equation (3): ``E[M] = (n/k) * sum_{i>=0} (1 - (1 - q^i)^R)``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._series import (
    binomial_cdf,
    expected_from_survival,
    expected_max_geometric,
)

__all__ = [
    "rm_loss_probability",
    "expected_transmissions",
    "expected_transmissions_heterogeneous",
]


def _validate(k: int, n: int, p: float) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValueError(f"need n >= k, got n={n} < k={k}")
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")


def rm_loss_probability(k: int, n: int, p: float) -> float:
    """Equation (2): residual data-packet loss seen above the FEC layer."""
    _validate(k, n, p)
    if p == 0.0:
        return 0.0
    h = n - k
    if h == 0:
        return p
    # P(more than h-1 of the other n-1 packets lost) = 1 - Binom cdf(h-1)
    return p * (1.0 - binomial_cdf(n - 1, h - 1, p))


def expected_transmissions(k: int, n: int, p: float, n_receivers: float) -> float:
    """Equation (3): E[M] of layered FEC, counting parity overhead ``n/k``."""
    _validate(k, n, p)
    if n_receivers <= 0:
        raise ValueError(f"n_receivers must be positive, got {n_receivers}")
    q = rm_loss_probability(k, n, p)
    return (n / k) * expected_max_geometric(q, n_receivers)


def expected_transmissions_heterogeneous(k: int, n: int, probabilities) -> float:
    """Equation (7): layered FEC with per-receiver loss probabilities.

    ``E[M] = (n/k) * sum_{i>=0} (1 - prod_r (1 - q(k,n,p_r)^i))``.
    Equal loss classes are collapsed so huge populations stay cheap.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D vector")
    values, counts = np.unique(probabilities, return_counts=True)
    q_values = np.array([rm_loss_probability(k, n, p) for p in values])

    def survival(i: int) -> float:
        if i == 0:
            return 1.0
        log_sum = float(np.sum(counts * np.log1p(-(q_values**i))))
        return -np.expm1(log_sum)

    return (n / k) * expected_from_survival(survival)
