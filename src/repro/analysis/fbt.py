"""Exact shared-loss analysis on the full binary tree (Section 4.1).

The paper computes E[M] over a loss tree following Bhagwat, Mishra and
Tripathi, notes that "the calculation ... is computationally intensive
even for R = 64 receivers" and falls back to simulation.  For the *full
binary tree with homogeneous node loss* the computation collapses, because
every subtree at the same depth is statistically identical and — the key
observation — what a subtree's coverage probability depends on is only
*how many* transmissions reached its root, not which ones:

Let ``h_l(j)`` be the probability that all leaves of a depth-``l`` subtree
are covered, given that ``j`` of the multicast transmissions arrived at
the subtree root's *input*.  The root node drops each arrival
independently (probability ``p_node``), and — crucially — both children
see the *same* surviving set, of size ``i ~ Binomial(j, 1 - p_node)``::

    h_leaf(j)  = P(Binomial(j, 1 - p_node) >= need)
    h_l(j)     = sum_i C(j,i) (1-p_node)^i p_node^(j-i) * h_{l+1}(i)^2

with ``need = 1`` for plain ARQ (one copy suffices) and ``need = k`` for
idealised integrated FEC (any k of the group's transmissions decode).
``P(all R receivers covered by m transmissions) = h_0(m)``, so

    E[T] = sum_{m>=0} (1 - h_0(m)),   E[M] = E[T] / need.

Cost: O(depth * m_max^2) — exact curves to R = 2^17 in milliseconds,
where the generic-tree computation is exponential.  These exact values
pin down the Figure 11/12 Monte-Carlo simulators in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "node_loss_probability",
    "coverage_probability",
    "expected_transmissions_nofec",
    "expected_transmissions_integrated",
]

_TOLERANCE = 1e-10
_MAX_TRANSMISSIONS = 1 << 16


def node_loss_probability(depth: int, p: float) -> float:
    """Per-node loss so the end-to-end rate over ``depth + 1`` nodes is p."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    return 1.0 - (1.0 - p) ** (1.0 / (depth + 1))


def _binomial_matrix(m_max: int, success: float) -> np.ndarray:
    """``B[j, i] = P(Binomial(j, success) = i)`` for j, i in 0..m_max."""
    matrix = np.zeros((m_max + 1, m_max + 1))
    matrix[0, 0] = 1.0
    for j in range(1, m_max + 1):
        # Pascal-style update keeps everything exact-ish and vectorised
        matrix[j, 0] = matrix[j - 1, 0] * (1.0 - success)
        matrix[j, 1:] = (
            matrix[j - 1, 1:] * (1.0 - success) + matrix[j - 1, :-1] * success
        )
    return matrix


def coverage_probability(
    depth: int, p: float, m_transmissions: int, need: int = 1
) -> float:
    """``P(every one of the 2^depth receivers got >= need packets)``
    out of ``m_transmissions`` multicast transmissions through the FBT."""
    values = _coverage_curve(depth, p, m_transmissions, need)
    return float(values[m_transmissions])


def _coverage_curve(
    depth: int, p: float, m_max: int, need: int
) -> np.ndarray:
    """``h_0(j)`` for j = 0..m_max (root-input arrivals = transmissions)."""
    if need < 1:
        raise ValueError(f"need must be >= 1, got {need}")
    p_node = node_loss_probability(depth, p)
    binomial = _binomial_matrix(m_max, 1.0 - p_node)

    # leaf level: P(Bin(j, 1 - p_node) >= need)
    level = binomial[:, need:].sum(axis=1)
    # internal levels, bottom up: own loss then two independent children
    # sharing the same survivor set.  Clip per level: the Pascal updates
    # accumulate ~1e-16 overshoots that would compound through squaring.
    np.clip(level, 0.0, 1.0, out=level)
    for _ in range(depth):
        level = binomial[:, : m_max + 1] @ (level * level)
        np.clip(level, 0.0, 1.0, out=level)
    return level


def expected_transmissions_nofec(depth: int, p: float) -> float:
    """Exact E[M] of plain ARQ over a height-``depth`` FBT (Figure 11)."""
    return _expected_total(depth, p, need=1) / 1.0


def expected_transmissions_integrated(depth: int, p: float, k: int) -> float:
    """Exact E[M] of idealised integrated FEC over the FBT (Figure 12).

    Every transmission is a fresh packet of the group's FEC block; a
    receiver is done once ``k`` arrived.  ``E[M] = E[T] / k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return _expected_total(depth, p, need=k) / k


def _expected_total(depth: int, p: float, need: int) -> float:
    if p == 0.0:
        return float(need)
    m_max = max(4 * need, 32)
    while m_max <= _MAX_TRANSMISSIONS:
        curve = _coverage_curve(depth, p, m_max, need)
        survival = 1.0 - curve
        if survival[-1] < _TOLERANCE:
            return float(survival.sum())
        m_max *= 2
    raise RuntimeError(
        f"E[T] did not converge within {_MAX_TRANSMISSIONS} transmissions"
    )
