"""Transmission-round statistics for protocol NP (paper appendix).

Protocol NP works in *rounds*: round 1 carries the ``k`` data packets of a
TG, round ``j > 1`` carries as many parities as the worst receiver still
needs.  Following Ayanoglu et al. (the paper's reference [19]) a receiver
finishes within ``m`` rounds with probability

``P(Tr <= m) = (1 - p^m)^k``

(each of its ``k`` required packets must get through within ``m``
attempts), and the sender-side round count is the maximum over receivers:
``P(T <= m) = P(Tr <= m)^R``.  The paper notes this is an upper bound on
rounds because the sender actually sends the max needed by anyone.
"""

from __future__ import annotations

import math

from repro.analysis._series import expected_from_survival, power_survival

__all__ = [
    "receiver_rounds_cdf",
    "expected_receiver_rounds",
    "expected_rounds",
    "receiver_rounds_tail_stats",
    "geometric_tail_stats",
]


def _validate(p: float, k: int) -> None:
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def receiver_rounds_cdf(m: int, p: float, k: int) -> float:
    """``P(Tr <= m) = (1 - p^m)^k`` for one receiver."""
    _validate(p, k)
    if m <= 0:
        return 0.0
    if p == 0.0:
        return 1.0
    return math.exp(k * math.log1p(-(p**m)))


def expected_receiver_rounds(p: float, k: int) -> float:
    """``E[Tr]`` — rounds for one receiver to complete a TG."""
    return expected_from_survival(lambda m: 1.0 - receiver_rounds_cdf(m, p, k))


def expected_rounds(p: float, k: int, n_receivers: float) -> float:
    """``E[T]`` — Equation (17): rounds until *all* receivers complete."""
    if n_receivers <= 0:
        raise ValueError(f"n_receivers must be positive, got {n_receivers}")
    return expected_from_survival(
        lambda m: power_survival(receiver_rounds_cdf(m, p, k), n_receivers)
    )


def receiver_rounds_tail_stats(p: float, k: int) -> tuple[float, float]:
    """``(P[Tr > 2], E[Tr | Tr > 2])`` — the timer-overhead terms of Eq (14).

    ``E[Tr | Tr > 2] = (E[Tr] - P[Tr = 1] - 2 P[Tr = 2]) / P[Tr > 2]``.
    When ``P[Tr > 2]`` is numerically zero the conditional expectation is
    irrelevant (it is always multiplied by the probability); ``(0, 0)`` is
    returned.
    """
    expected = expected_receiver_rounds(p, k)
    cdf1 = receiver_rounds_cdf(1, p, k)
    cdf2 = receiver_rounds_cdf(2, p, k)
    prob_gt_2 = 1.0 - cdf2
    if prob_gt_2 <= 0.0:
        return 0.0, 0.0
    pmf1 = cdf1
    pmf2 = cdf2 - cdf1
    conditional = (expected - pmf1 - 2.0 * pmf2) / prob_gt_2
    return prob_gt_2, conditional


def geometric_tail_stats(p: float) -> tuple[float, float]:
    """``(P[Mr > 2], E[Mr | Mr > 2])`` for the per-packet geometric of N2.

    ``Mr`` is the per-receiver transmission count of one packet:
    ``P(Mr <= m) = 1 - p^m``, ``E[Mr] = 1/(1-p)``.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    if p == 0.0:
        return 0.0, 0.0
    expected = 1.0 / (1.0 - p)
    pmf1 = 1.0 - p
    pmf2 = p * (1.0 - p)
    prob_gt_2 = p * p
    conditional = (expected - pmf1 - 2.0 * pmf2) / prob_gt_2
    return prob_gt_2, conditional
