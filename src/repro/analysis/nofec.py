"""Expected transmissions for reliable multicast *without* FEC.

The baseline of every figure: a sender retransmits a lost packet until all
``R`` receivers have it.  With independent per-transmission loss probability
``p`` at each receiver, the number of transmissions seen by one receiver is
geometric, and the sender must cover the *maximum* over receivers:

``E[M] = sum_{i>=0} (1 - (1 - p^i)^R)``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._series import expected_from_survival, expected_max_geometric

__all__ = [
    "expected_transmissions",
    "expected_transmissions_heterogeneous",
    "per_receiver_expected_transmissions",
]


def expected_transmissions(p: float, n_receivers: float) -> float:
    """E[M] for homogeneous independent loss (the paper's "no FEC" curves).

    ``n_receivers`` may be fractional to support the effective-group-size
    view of shared loss (Section 4.1).
    """
    return expected_max_geometric(p, n_receivers)


def per_receiver_expected_transmissions(p: float) -> float:
    """E[M_r] for a single receiver: the plain geometric mean 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p}")
    return 1.0 / (1.0 - p)


def expected_transmissions_heterogeneous(probabilities) -> float:
    """E[M] when receiver ``r`` loses with its own probability ``p_r``.

    ``E[M] = sum_{i>=0} (1 - prod_r (1 - p_r^i))``.  For the two-class
    populations of Section 3.3 build ``probabilities`` with
    :func:`repro.sim.loss.two_class_probabilities` — the implementation
    collapses equal classes so million-receiver populations stay cheap.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D vector")
    if np.any((probabilities < 0) | (probabilities >= 1)):
        raise ValueError("all loss probabilities must be in [0, 1)")
    values, counts = np.unique(probabilities, return_counts=True)
    if values[0] == 0.0 and values.size == 1:
        return 1.0

    def survival(i: int) -> float:
        if i == 0:
            return 1.0
        # 1 - prod_c (1 - p_c^i)^{count_c}, in log space
        log_sum = float(np.sum(counts * np.log1p(-(values**i))))
        return -np.expm1(log_sum)

    return expected_from_survival(survival)
