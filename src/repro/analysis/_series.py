"""Shared numerics for the closed-form models.

Most of the paper's expectations have the form ``E[X] = sum_{i>=0} (1 -
F(i))`` where ``F`` is a CDF that approaches 1 geometrically and is raised
to the receiver-population power ``R`` (up to 10^6 in the figures, larger in
our stress tests).  Evaluating ``(1 - q**i)**R`` naively underflows /
loses all precision, so everything funnels through the log1p/expm1 forms
here.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

__all__ = [
    "power_survival",
    "expected_from_survival",
    "expected_max_geometric",
    "log_binomial",
    "binomial_pmf",
    "binomial_cdf",
]

#: Stop summing a survival series once the term drops below this.
DEFAULT_TOLERANCE = 1e-12

#: Hard cap on series length; reaching it indicates parameters far outside
#: the paper's regime (e.g. p extremely close to 1).
MAX_TERMS = 10_000_000


def power_survival(cdf_value: float, population: float) -> float:
    """``1 - cdf_value**population`` computed stably for huge populations.

    ``cdf_value`` is a per-receiver CDF entry in [0, 1]; the survival of the
    *maximum* over ``population`` iid receivers is ``1 - cdf**R``.
    """
    if cdf_value >= 1.0:
        return 0.0
    if cdf_value <= 0.0:
        return 1.0
    # 1 - exp(R * ln(cdf)) = -expm1(R * log(cdf))
    return -math.expm1(population * math.log(cdf_value))


def max_survival(per_receiver_survival: float, population: float) -> float:
    """``P(max over R iid copies > m)`` from one copy's survival ``s``.

    ``1 - (1 - s)^R`` evaluated as ``-expm1(R * log1p(-s))`` so survivals far
    below machine epsilon (where a CDF would saturate at 1.0) still produce
    the correct ``~ R * s`` answer.
    """
    if per_receiver_survival <= 0.0:
        return 0.0
    if per_receiver_survival >= 1.0:
        return 1.0
    return -math.expm1(population * math.log1p(-per_receiver_survival))


def expected_from_survival(
    survival: Callable[[int], float],
    tolerance: float = DEFAULT_TOLERANCE,
    max_terms: int = MAX_TERMS,
) -> float:
    """``sum_{i>=0} survival(i)`` for a non-negative integer variable.

    ``survival(i)`` must be ``P(X > i)`` and (eventually) decreasing; the sum
    is truncated when a term falls below ``tolerance``.
    """
    total = 0.0
    for i in range(max_terms):
        term = survival(i)
        total += term
        if term < tolerance:
            return total
    raise RuntimeError(
        f"survival series failed to converge within {max_terms} terms"
    )


def expected_max_geometric(q: float, population: float,
                           tolerance: float = DEFAULT_TOLERANCE) -> float:
    """``E[max of R iid geometric(q) 'transmissions-until-success']``.

    This is the paper's recurring quantity ``sum_{i>=0} (1 - (1 - q^i)^R)``:
    the expected number of transmissions until all ``population`` receivers,
    each losing a transmission independently with probability ``q``, have
    received a packet.  ``q = 0`` gives exactly 1; ``population`` may be any
    positive real (useful for the effective-size analysis of Section 4.1).
    """
    if not 0.0 <= q < 1.0:
        raise ValueError(f"per-round failure probability must be in [0,1), got {q}")
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    if q == 0.0:
        return 1.0

    def survival(i: int) -> float:
        # P(M' > i) = 1 - (1 - q^i)^R ; q^i via exp(i ln q) to avoid pow-loop
        if i == 0:
            return 1.0  # (1 - q^0)^R = 0 for any R
        q_i = math.exp(i * math.log(q))
        return -math.expm1(population * math.log1p(-q_i))

    return expected_from_survival(survival, tolerance)


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma (exact enough for n in the millions)."""
    if k < 0 or k > n:
        return -math.inf
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def binomial_pmf(n: int, j: int, p: float) -> float:
    """``C(n, j) p^j (1-p)^(n-j)`` computed in log space."""
    if j < 0 or j > n:
        return 0.0
    if p == 0.0:
        return 1.0 if j == 0 else 0.0
    if p == 1.0:
        return 1.0 if j == n else 0.0
    log_term = (
        log_binomial(n, j) + j * math.log(p) + (n - j) * math.log1p(-p)
    )
    return math.exp(log_term)


def binomial_cdf(n: int, j: int, p: float) -> float:
    """``P(Binomial(n, p) <= j)`` by direct summation (n is block-sized)."""
    if j < 0:
        return 0.0
    if j >= n:
        return 1.0
    return min(1.0, sum(binomial_pmf(n, i, p) for i in range(j + 1)))


def product_survival(cdf_values: Iterable[float]) -> float:
    """``1 - prod(cdf_values)`` stably, for heterogeneous populations."""
    log_sum = 0.0
    for value in cdf_values:
        if value <= 0.0:
            return 1.0
        if value < 1.0:
            log_sum += math.log(value)
    return -math.expm1(log_sum)
