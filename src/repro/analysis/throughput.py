"""End-host processing rates and throughput: protocol N2 vs NP (Section 5).

The paper models per-packet processing *time* at the sender and at a
receiver for two protocols — N2, the NAK-based no-FEC protocol of Towsley,
Kurose and Pingali, and NP, the paper's hybrid-ARQ protocol — and defines
the achievable end-system throughput as the reciprocal of the slower side
(Equation 9).  This module implements Equations (10)-(16) verbatim.

All times are in **seconds**; rates are packets/second (helpers convert to
the packets/msec units of Figures 17 and 18).  The default constants are
the paper's DECstation 5000/200 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.integrated import expected_transmissions_lower_bound
from repro.analysis.nofec import expected_transmissions
from repro.analysis.rounds import (
    expected_rounds,
    geometric_tail_stats,
    receiver_rounds_tail_stats,
)

__all__ = [
    "ProcessingCosts",
    "PAPER_COSTS",
    "RateReport",
    "n2_rates",
    "np_rates",
    "throughput_comparison",
]


@dataclass(frozen=True)
class ProcessingCosts:
    """Per-operation processing times (seconds) — the appendix constants.

    Attributes map to the paper's variables:

    * ``packet_send`` / ``packet_receive`` — E[Xp], E[Yp] (2 KB data packet)
    * ``nak_sender`` — E[Xn], processing a NAK at the sender
    * ``nak_transmit`` — E[Yn], building + sending a NAK at a receiver
    * ``nak_receive`` — E[Y'n], receiving another receiver's NAK
    * ``timer`` — E[Xt] = E[Yt], (re)scheduling a suppression timer
    * ``encode_constant`` — c_e, per data-packet per-parity encoding cost
    * ``decode_constant`` — c_d, per reconstructed-packet decoding cost
    """

    packet_send: float = 1000e-6
    packet_receive: float = 1000e-6
    nak_sender: float = 500e-6
    nak_transmit: float = 500e-6
    nak_receive: float = 500e-6
    timer: float = 24e-6
    encode_constant: float = 700e-6
    decode_constant: float = 720e-6

    def without_encoding(self) -> "ProcessingCosts":
        """Costs with pre-encoded parities (c_e removed from the hot path)."""
        return replace(self, encode_constant=0.0)


#: The constants used throughout Section 5.
PAPER_COSTS = ProcessingCosts()


@dataclass(frozen=True)
class RateReport:
    """Sender/receiver processing rates and resulting throughput (pkts/s)."""

    sender_rate: float
    receiver_rate: float
    expected_transmissions: float

    @property
    def throughput(self) -> float:
        """Equation (9): min of sender and receiver processing rates."""
        return min(self.sender_rate, self.receiver_rate)

    def in_packets_per_msec(self) -> tuple[float, float, float]:
        """(sender, receiver, throughput) in the figures' pkts/msec units."""
        return (
            self.sender_rate / 1000.0,
            self.receiver_rate / 1000.0,
            self.throughput / 1000.0,
        )


def n2_rates(
    p: float,
    n_receivers: float,
    costs: ProcessingCosts = PAPER_COSTS,
) -> RateReport:
    """Equations (10)-(11): processing rates of the no-FEC protocol N2.

    Sender: every one of the E[M] transmissions of a packet costs E[Xp], and
    each retransmission is triggered by one (suppressed) NAK costing E[Xn].
    Receiver: receives E[M](1-p) copies, originates 1/R of the NAKs and
    hears the rest, and keeps a suppression timer alive for rounds > 2.
    """
    expected_m = expected_transmissions(p, n_receivers)
    sender_time = (
        expected_m * costs.packet_send
        + (expected_m - 1.0) * costs.nak_sender
    )
    prob_tail, conditional_tail = geometric_tail_stats(p)
    receiver_time = (
        expected_m * (1.0 - p) * costs.packet_receive
        + (expected_m - 1.0)
        * (
            costs.nak_transmit / n_receivers
            + (n_receivers - 1.0) / n_receivers * costs.nak_receive
        )
        + prob_tail * (conditional_tail - 2.0) * costs.timer
    )
    return RateReport(1.0 / sender_time, 1.0 / receiver_time, expected_m)


def np_rates(
    p: float,
    k: int,
    n_receivers: float,
    costs: ProcessingCosts = PAPER_COSTS,
    pre_encoded: bool = False,
    nak_per_missing_packet: bool = False,
) -> RateReport:
    """Equations (13)-(16): processing rates of the hybrid-ARQ protocol NP.

    Sender: encodes ``k (E[M]-1)`` parities per TG at ``c_e`` each (zero if
    ``pre_encoded``), transmits E[M] packets per data packet and handles one
    NAK per round, amortised over the TG (``(E[T]-1)/k``).
    Receiver: receives E[M](1-p) packets, handles its share of the per-round
    NAK traffic, runs suppression timers for rounds beyond 2 and decodes an
    average of ``k p`` lost packets per TG at ``c_d`` each.

    ``nak_per_missing_packet=True`` evaluates the paper's side experiment
    where feedback is *not* aggregated per round: the per-NAK terms scale by
    the expected number of missing packets per round instead of 1.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    expected_m = expected_transmissions_lower_bound(k, p, n_receivers)
    expected_t = expected_rounds(p, k, n_receivers)

    encode_time = 0.0 if pre_encoded else k * (expected_m - 1.0) * costs.encode_constant
    nak_rounds = expected_t - 1.0
    if nak_per_missing_packet:
        # one NAK per missing packet instead of one per round: the k·p
        # first-round losses dominate the feedback volume.
        nak_rounds = max(nak_rounds, k * p * expected_t)

    sender_time = (
        encode_time
        + expected_m * costs.packet_send
        + (nak_rounds / k) * costs.nak_sender
    )

    prob_tail, conditional_tail = receiver_rounds_tail_stats(p, k)
    decode_time = k * p * costs.decode_constant
    receiver_time = (
        expected_m * (1.0 - p) * costs.packet_receive
        + (nak_rounds / k)
        * (
            costs.nak_transmit / n_receivers
            + (n_receivers - 1.0) / n_receivers * costs.nak_receive
        )
        + prob_tail * (conditional_tail - 2.0) * costs.timer
        + decode_time
    )
    return RateReport(1.0 / sender_time, 1.0 / receiver_time, expected_m)


def throughput_comparison(
    p: float,
    k: int,
    n_receivers: float,
    costs: ProcessingCosts = PAPER_COSTS,
) -> dict[str, float]:
    """Figure 18's three curves at one population size (pkts/msec)."""
    n2 = n2_rates(p, n_receivers, costs)
    np_online = np_rates(p, k, n_receivers, costs, pre_encoded=False)
    np_pre = np_rates(p, k, n_receivers, costs, pre_encoded=True)
    return {
        "N2": n2.throughput / 1000.0,
        "NP": np_online.throughput / 1000.0,
        "NP pre-encode": np_pre.throughput / 1000.0,
    }
