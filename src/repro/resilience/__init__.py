"""Resilience layer: fault injection, typed failures, degradation reports.

Built for one guarantee, stated in DESIGN.md's fault-model section: every
transfer either completes with intact bytes or degrades along a
documented, diagnosable path — never hangs, never silently corrupts.

* :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: seeded, deterministic packet corruption,
  duplication, reordering, partitions, receiver crashes and sender stalls
  on top of any loss model.
* :mod:`repro.resilience.errors` — the error taxonomy raised by
  :func:`repro.protocols.harness.run_transfer`.
* :mod:`repro.resilience.report` — :class:`StallReport` diagnostics and
  the :class:`ResilienceSummary` section of a transfer report.
"""

from repro.resilience.errors import (
    DeliveryCorrupt,
    TransferError,
    TransferStalled,
    TransferTimeout,
    failure_from_json,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    OutageWindow,
    ReceiverCrash,
)
from repro.resilience.report import ReceiverStall, ResilienceSummary, StallReport

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "OutageWindow",
    "ReceiverCrash",
    "TransferError",
    "TransferTimeout",
    "TransferStalled",
    "DeliveryCorrupt",
    "StallReport",
    "ReceiverStall",
    "ResilienceSummary",
    "failure_from_json",
]
