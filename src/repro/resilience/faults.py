"""Seeded, deterministic fault injection for the multicast transport.

:class:`FaultPlan` is a frozen, declarative description of every fault a
chaos run injects; :class:`FaultInjector` wraps a
:class:`repro.sim.network.MulticastNetwork` and applies the plan at the
points where packets cross the wire.  The injector is strictly opt-in: the
harness only interposes it when a plan is passed, and a plan with all
rates at zero and no scheduled events perturbs nothing — the wrapped
network produces bit-identical transfers (the injector draws from its own
``seed``-derived generator, never from the transfer's).

Faults and where they bite:

* **corruption** (``corrupt_prob``) — a random bit of a payload-bearing
  downstream packet is flipped per delivery.  Headers stay intact (header
  damage is indistinguishable from loss, which the loss models already
  produce); receivers detect the damage via the per-packet checksum and
  demote it to an erasure.
* **duplication** (``duplicate_prob``) — a delivered packet (downstream or
  feedback) arrives a second time shortly after the first.
* **reordering** (``jitter``) — each delivery is delayed by an extra
  ``U(0, jitter)`` seconds, so consecutive packets overtake each other.
* **outages** — scheduled windows during which a subset of receivers is
  partitioned: nothing sent downstream (data, control or overheard
  feedback) reaches them.
* **feedback outages** — windows during which the sender is deaf: no NAK
  reaches it (a feedback blackout; receivers still overhear each other).
* **crashes** — a receiver dies at ``at``, losing all volatile decoder
  state (its ``crash()`` hook), receives nothing for ``downtime`` seconds
  and then rejoins (its ``rejoin()`` hook re-solicits repairs).
* **sender stalls** — windows during which the sender's own transmissions
  are held and released, in order, when the window closes.

Everything injected is counted in ``NetworkStats.injected`` so reports and
stall diagnoses can cite exactly what the run was subjected to.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import MulticastNetwork, NetworkStats

__all__ = ["OutageWindow", "ReceiverCrash", "FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class OutageWindow:
    """A ``[start, start + duration)`` fault window.

    ``receivers`` limits the window to a subset (None means everyone); the
    field is ignored for sender-side windows (feedback outages, stalls).
    """

    start: float
    duration: float
    receivers: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"outage start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(
                f"outage duration must be positive, got {self.duration}"
            )
        if self.receivers is not None:
            object.__setattr__(self, "receivers", tuple(self.receivers))

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end

    def to_json(self) -> dict:
        return {
            "start": self.start,
            "duration": self.duration,
            "receivers": (
                None if self.receivers is None else list(self.receivers)
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "OutageWindow":
        receivers = data.get("receivers")
        return cls(
            start=float(data["start"]),
            duration=float(data["duration"]),
            receivers=None if receivers is None else tuple(receivers),
        )


@dataclass(frozen=True)
class ReceiverCrash:
    """Receiver ``receiver`` dies at ``at`` and rejoins after ``downtime``."""

    receiver: int
    at: float
    downtime: float

    def __post_init__(self) -> None:
        if self.receiver < 0:
            raise ValueError(f"receiver must be >= 0, got {self.receiver}")
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")
        if self.downtime <= 0:
            raise ValueError(
                f"downtime must be positive, got {self.downtime}"
            )

    @property
    def rejoin_at(self) -> float:
        return self.at + self.downtime

    def to_json(self) -> dict:
        return {
            "receiver": self.receiver,
            "at": self.at,
            "downtime": self.downtime,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ReceiverCrash":
        return cls(
            receiver=int(data["receiver"]),
            at=float(data["at"]),
            downtime=float(data["downtime"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of every fault a run injects."""

    seed: int = 0
    corrupt_prob: float = 0.0
    duplicate_prob: float = 0.0
    jitter: float = 0.0
    outages: tuple[OutageWindow, ...] = ()
    feedback_outages: tuple[OutageWindow, ...] = ()
    crashes: tuple[ReceiverCrash, ...] = ()
    sender_stalls: tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("corrupt_prob", "duplicate_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        for name in ("outages", "feedback_outages", "crashes", "sender_stalls"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.corrupt_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.jitter == 0.0
            and not self.outages
            and not self.feedback_outages
            and not self.crashes
            and not self.sender_stalls
        )

    def to_json(self) -> dict:
        """JSON-serializable dict; :meth:`from_json` restores an equal plan.

        The round trip is what makes campaign journal records
        self-contained: any chaos failure can be replayed from the journal
        alone (plan + seed travel with the failure record).
        """
        return {
            "seed": self.seed,
            "corrupt_prob": self.corrupt_prob,
            "duplicate_prob": self.duplicate_prob,
            "jitter": self.jitter,
            "outages": [window.to_json() for window in self.outages],
            "feedback_outages": [
                window.to_json() for window in self.feedback_outages
            ],
            "crashes": [crash.to_json() for crash in self.crashes],
            "sender_stalls": [
                window.to_json() for window in self.sender_stalls
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            corrupt_prob=float(data.get("corrupt_prob", 0.0)),
            duplicate_prob=float(data.get("duplicate_prob", 0.0)),
            jitter=float(data.get("jitter", 0.0)),
            outages=tuple(
                OutageWindow.from_json(w) for w in data.get("outages", ())
            ),
            feedback_outages=tuple(
                OutageWindow.from_json(w)
                for w in data.get("feedback_outages", ())
            ),
            crashes=tuple(
                ReceiverCrash.from_json(c) for c in data.get("crashes", ())
            ),
            sender_stalls=tuple(
                OutageWindow.from_json(w)
                for w in data.get("sender_stalls", ())
            ),
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.corrupt_prob:
            parts.append(f"corrupt={self.corrupt_prob:.3f}")
        if self.duplicate_prob:
            parts.append(f"duplicate={self.duplicate_prob:.3f}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:.3f}s")
        if self.outages:
            parts.append(f"{len(self.outages)} outage(s)")
        if self.feedback_outages:
            parts.append(f"{len(self.feedback_outages)} feedback outage(s)")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        if self.sender_stalls:
            parts.append(f"{len(self.sender_stalls)} sender stall(s)")
        return "FaultPlan(" + ", ".join(parts) + ")"

    @classmethod
    def random(
        cls,
        seed: int,
        n_receivers: int,
        horizon: float = 10.0,
        intensity: float = 1.0,
        include_crashes: bool = True,
    ) -> "FaultPlan":
        """A randomized but fully seed-determined plan for chaos testing.

        ``horizon`` bounds where scheduled events (outages, crashes, stalls)
        land; ``intensity`` scales the per-packet fault rates.  The same
        ``(seed, n_receivers, horizon, intensity)`` always yields the same
        plan, which is what makes chaos failures replayable.
        """
        if n_receivers < 1:
            raise ValueError(f"need >= 1 receiver, got {n_receivers}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = np.random.default_rng(seed)
        corrupt = float(rng.uniform(0.0, 0.06)) * intensity
        duplicate = float(rng.uniform(0.0, 0.08)) * intensity
        jitter = float(rng.uniform(0.0, 0.04)) * intensity

        outages = []
        for _ in range(int(rng.integers(0, 3))):
            start = float(rng.uniform(0.0, horizon))
            duration = float(rng.uniform(0.05, horizon / 5))
            victims: tuple[int, ...] | None = None
            if rng.random() < 0.5 and n_receivers > 1:
                count = int(rng.integers(1, max(2, n_receivers // 2 + 1)))
                victims = tuple(
                    int(r)
                    for r in rng.choice(n_receivers, size=count, replace=False)
                )
            outages.append(OutageWindow(start, duration, victims))

        feedback_outages = []
        if rng.random() < 0.4:
            start = float(rng.uniform(0.0, horizon))
            feedback_outages.append(
                OutageWindow(start, float(rng.uniform(0.05, horizon / 6)))
            )

        crashes = []
        if include_crashes and rng.random() < 0.5:
            crashes.append(
                ReceiverCrash(
                    receiver=int(rng.integers(n_receivers)),
                    at=float(rng.uniform(0.1, horizon)),
                    downtime=float(rng.uniform(0.05, horizon / 6)),
                )
            )

        sender_stalls = []
        if rng.random() < 0.3:
            start = float(rng.uniform(0.0, horizon))
            sender_stalls.append(
                OutageWindow(start, float(rng.uniform(0.02, horizon / 10)))
            )

        return cls(
            seed=seed,
            corrupt_prob=min(1.0, corrupt),
            duplicate_prob=min(1.0, duplicate),
            jitter=jitter,
            outages=tuple(outages),
            feedback_outages=tuple(feedback_outages),
            crashes=tuple(crashes),
            sender_stalls=tuple(sender_stalls),
        )


def _covering(windows: Sequence[OutageWindow], time: float) -> bool:
    return any(window.covers(time) for window in windows)


def _corrupt_copy(packet: Any, rng: np.random.Generator) -> Any:
    """A copy of ``packet`` with one payload bit flipped (header intact)."""
    payload = getattr(packet, "payload", b"")
    if not payload:
        return packet
    damaged = bytearray(payload)
    position = int(rng.integers(len(damaged)))
    damaged[position] ^= 1 << int(rng.integers(8))
    return dataclasses.replace(packet, payload=bytes(damaged))


class FaultInjector:
    """Wraps a :class:`MulticastNetwork`, perturbing traffic per a plan.

    Exposes the same surface the protocol state machines use
    (``attach_*``, ``multicast*``, ``unicast_feedback``, ``n_receivers``,
    ``stats``, ``latency``) so senders and receivers are none the wiser.
    Injected faults are counted in ``stats.injected``.

    Crash faults need access to the receiver *objects* (to invoke their
    ``crash()``/``rejoin()`` hooks); the harness provides them via
    :meth:`bind_receivers` once construction is done.
    """

    def __init__(
        self,
        sim: Simulator,
        network: MulticastNetwork,
        plan: FaultPlan,
    ):
        for crash in plan.crashes:
            if crash.receiver >= network.n_receivers:
                raise ValueError(
                    f"crash names receiver {crash.receiver}, but the loss "
                    f"model has only {network.n_receivers} receivers"
                )
        self.sim = sim
        self.inner = network
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        # static per-receiver downtime windows derived from crash schedule
        self._crash_windows: dict[int, list[OutageWindow]] = {}
        for crash in plan.crashes:
            self._crash_windows.setdefault(crash.receiver, []).append(
                OutageWindow(crash.at, crash.downtime)
            )
        self._outages_by_receiver: dict[int, list[OutageWindow]] = {}
        self._receivers: list[Any] = []
        self._attached = 0

    # ------------------------------------------------------------------
    # pass-through surface
    # ------------------------------------------------------------------
    @property
    def n_receivers(self) -> int:
        return self.inner.n_receivers

    @property
    def stats(self) -> NetworkStats:
        return self.inner.stats

    @property
    def latency(self) -> float:
        return self.inner.latency

    def _count(self, kind: str) -> None:
        self.inner.stats.count_injected(kind)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_sender(self, handler: Callable[[Any], None]) -> None:
        self.inner.attach_sender(self._wrap_feedback(handler))

    def attach_receiver(self, handler: Callable[[Any], None]) -> int:
        receiver_id = self._attached
        self._attached += 1
        windows = [
            window
            for window in self.plan.outages
            if window.receivers is None or receiver_id in window.receivers
        ]
        windows.extend(self._crash_windows.get(receiver_id, ()))
        self._outages_by_receiver[receiver_id] = windows
        wrapped = self._wrap_receiver(receiver_id, handler)
        inner_id = self.inner.attach_receiver(wrapped)
        assert inner_id == receiver_id
        return receiver_id

    def bind_receivers(self, receivers: Sequence[Any]) -> None:
        """Register receiver objects and schedule crash/rejoin events."""
        self._receivers = list(receivers)
        for crash in self.plan.crashes:
            self.sim.schedule(
                crash.at - min(crash.at, self.sim.now),
                lambda crash=crash: self._crash(crash),
            )

    def _crash(self, crash: ReceiverCrash) -> None:
        self._count("crashes")
        receiver = (
            self._receivers[crash.receiver]
            if crash.receiver < len(self._receivers)
            else None
        )
        hook = getattr(receiver, "crash", None)
        if callable(hook):
            hook()
        self.sim.schedule(crash.downtime, lambda: self._rejoin(crash))

    def _rejoin(self, crash: ReceiverCrash) -> None:
        receiver = (
            self._receivers[crash.receiver]
            if crash.receiver < len(self._receivers)
            else None
        )
        hook = getattr(receiver, "rejoin", None)
        if callable(hook):
            hook()

    # ------------------------------------------------------------------
    # downstream path
    # ------------------------------------------------------------------
    def _stall_delay(self) -> float:
        """Seconds until the current sender-stall window (if any) closes."""
        now = self.sim.now
        for window in self.plan.sender_stalls:
            if window.covers(now):
                return window.end - now
        return 0.0

    def multicast(self, packet: Any, kind: str = "data"):
        delay = self._stall_delay()
        if delay > 0:
            self._count("sender_stalled")
            self.sim.schedule(
                delay, lambda: self.inner.multicast(packet, kind=kind)
            )
            return None
        return self.inner.multicast(packet, kind=kind)

    def multicast_control(self, packet: Any, kind: str = "poll") -> None:
        delay = self._stall_delay()
        if delay > 0:
            self._count("sender_stalled")
            self.sim.schedule(
                delay, lambda: self.inner.multicast_control(packet, kind=kind)
            )
            return
        self.inner.multicast_control(packet, kind=kind)

    def _wrap_receiver(
        self, receiver_id: int, handler: Callable[[Any], None]
    ) -> Callable[[Any], None]:
        plan = self.plan

        def deliver(packet: Any) -> None:
            delay = 0.0
            if plan.jitter > 0.0:
                delay = float(self.rng.random()) * plan.jitter
                if delay > 0.0:
                    self._count("jittered")
            self._dispatch(receiver_id, handler, packet, delay)
            if (
                plan.duplicate_prob > 0.0
                and self.rng.random() < plan.duplicate_prob
            ):
                self._count("duplicated")
                extra = delay + max(plan.jitter, self.inner.latency) * float(
                    self.rng.random()
                )
                self._dispatch(receiver_id, handler, packet, extra)

        return deliver

    def _dispatch(
        self,
        receiver_id: int,
        handler: Callable[[Any], None],
        packet: Any,
        delay: float,
    ) -> None:
        plan = self.plan
        if (
            plan.corrupt_prob > 0.0
            and getattr(packet, "payload", b"")
            and self.rng.random() < plan.corrupt_prob
        ):
            self._count("corrupted")
            packet = _corrupt_copy(packet, self.rng)
        if delay <= 0.0:
            self._finish(receiver_id, handler, packet)
        else:
            self.sim.schedule(
                delay, lambda: self._finish(receiver_id, handler, packet)
            )

    def _finish(
        self, receiver_id: int, handler: Callable[[Any], None], packet: Any
    ) -> None:
        # windows are checked at actual arrival time, so jittered packets
        # drifting into a partition or downtime are dropped like the rest
        if _covering(self._outages_by_receiver.get(receiver_id, ()), self.sim.now):
            self._count("outage_dropped")
            return
        handler(packet)

    # ------------------------------------------------------------------
    # feedback path
    # ------------------------------------------------------------------
    def multicast_feedback(self, packet: Any, origin: int, kind: str = "nak") -> None:
        self.inner.multicast_feedback(packet, origin, kind=kind)

    def unicast_feedback(self, packet: Any, kind: str = "ack") -> None:
        self.inner.unicast_feedback(packet, kind=kind)

    def _wrap_feedback(
        self, handler: Callable[[Any], None]
    ) -> Callable[[Any], None]:
        plan = self.plan

        def deliver(packet: Any) -> None:
            if _covering(plan.feedback_outages, self.sim.now):
                self._count("feedback_dropped")
                return
            delay = 0.0
            if plan.jitter > 0.0:
                delay = float(self.rng.random()) * plan.jitter
            if delay <= 0.0:
                handler(packet)
            else:
                self._count("jittered")
                self.sim.schedule(delay, lambda: handler(packet))
            if (
                plan.duplicate_prob > 0.0
                and self.rng.random() < plan.duplicate_prob
            ):
                self._count("duplicated")
                self.sim.schedule(
                    delay + self.inner.latency * float(self.rng.random()),
                    lambda: handler(packet),
                )

        return deliver
