"""Structured diagnostics for transfers that stall, time out or degrade.

Two audiences:

* :class:`StallReport` is attached to every typed transfer failure
  (:mod:`repro.resilience.errors`): a snapshot of per-receiver progress,
  sender round state and injected-fault counters, plus the ``(seed,
  fault_plan)`` pair needed to replay the exact run.  A liveness failure is
  triageable from the exception alone — no debugger required.
* :class:`ResilienceSummary` is the ``resilience`` section of a successful
  (possibly degraded) :class:`repro.protocols.harness.TransferReport`: how
  much the transfer had to fight — corrupt packets demoted to erasures,
  watchdog retries and their backoff, crashes survived, and receivers
  ejected under the round-cap degradation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.resilience.faults import FaultPlan

__all__ = ["ReceiverStall", "StallReport", "ResilienceSummary"]


@dataclass(frozen=True)
class ReceiverStall:
    """Progress snapshot of one receiver that did not finish."""

    receiver_id: int
    #: transmission groups the receiver has not delivered (includes groups
    #: the sender abandoned under the round cap)
    missing_groups: tuple[int, ...]
    #: simulated time of the receiver's last accepted payload packet
    last_progress_time: float
    #: NAK-watchdog retries the receiver spent (all groups)
    watchdog_retries: int
    #: groups whose watchdog retry budget ran dry
    watchdog_exhaustions: int
    #: times the receiver crashed and lost its decoder state
    crashes: int

    def to_json(self) -> dict:
        return {
            "receiver_id": self.receiver_id,
            "missing_groups": list(self.missing_groups),
            "last_progress_time": self.last_progress_time,
            "watchdog_retries": self.watchdog_retries,
            "watchdog_exhaustions": self.watchdog_exhaustions,
            "crashes": self.crashes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ReceiverStall":
        return cls(
            receiver_id=int(data["receiver_id"]),
            missing_groups=tuple(data.get("missing_groups", ())),
            last_progress_time=float(data.get("last_progress_time", 0.0)),
            watchdog_retries=int(data.get("watchdog_retries", 0)),
            watchdog_exhaustions=int(data.get("watchdog_exhaustions", 0)),
            crashes=int(data.get("crashes", 0)),
        )

    def summary(self) -> str:
        return (
            f"receiver {self.receiver_id}: missing {len(self.missing_groups)} "
            f"groups {list(self.missing_groups[:8])}"
            f"{'...' if len(self.missing_groups) > 8 else ''}, "
            f"last progress t={self.last_progress_time:.3f}s, "
            f"{self.watchdog_retries} watchdog retries "
            f"({self.watchdog_exhaustions} exhausted), "
            f"{self.crashes} crashes"
        )


@dataclass(frozen=True)
class StallReport:
    """Everything needed to diagnose and reproduce a failed transfer."""

    protocol: str
    sim_time: float
    events_dispatched: int
    pending_events: int
    receivers: tuple[ReceiverStall, ...]
    #: groups the sender abandoned under the per-group round cap
    abandoned_groups: tuple[int, ...] = ()
    #: injected-fault counters from the network (`NetworkStats.injected`)
    injected_faults: dict[str, int] = field(default_factory=dict)
    #: the integer seed passed to ``run_transfer`` (None if a Generator
    #: object was passed — then reproduction needs the caller's generator)
    seed: int | None = None
    #: the fault plan in force (None for a fault-free run)
    fault_plan: "FaultPlan | None" = None
    #: failure-domain path -> stalled receivers under it (empty when the
    #: run had no domain tree attached)
    stalled_by_domain: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def to_json(self) -> dict:
        """Self-contained JSON form: carries the replay ``(seed, plan)``."""
        return {
            "protocol": self.protocol,
            "sim_time": self.sim_time,
            "events_dispatched": self.events_dispatched,
            "pending_events": self.pending_events,
            "receivers": [stall.to_json() for stall in self.receivers],
            "abandoned_groups": list(self.abandoned_groups),
            "injected_faults": dict(self.injected_faults),
            "seed": self.seed,
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_json()
            ),
            "stalled_by_domain": {
                domain: list(receivers)
                for domain, receivers in self.stalled_by_domain.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "StallReport":
        from repro.resilience.faults import FaultPlan  # local: cycle guard

        plan = data.get("fault_plan")
        return cls(
            protocol=data["protocol"],
            sim_time=float(data.get("sim_time", 0.0)),
            events_dispatched=int(data.get("events_dispatched", 0)),
            pending_events=int(data.get("pending_events", 0)),
            receivers=tuple(
                ReceiverStall.from_json(r) for r in data.get("receivers", ())
            ),
            abandoned_groups=tuple(data.get("abandoned_groups", ())),
            injected_faults=dict(data.get("injected_faults", {})),
            seed=data.get("seed"),
            fault_plan=None if plan is None else FaultPlan.from_json(plan),
            stalled_by_domain={
                domain: tuple(receivers)
                for domain, receivers in data.get(
                    "stalled_by_domain", {}
                ).items()
            },
        )

    def summary(self) -> str:
        lines = [
            f"{self.protocol}: {len(self.receivers)} receivers incomplete "
            f"at t={self.sim_time:.3f}s "
            f"({self.events_dispatched} events dispatched, "
            f"{self.pending_events} pending)",
        ]
        lines.extend("  " + stall.summary() for stall in self.receivers)
        if self.stalled_by_domain:
            lines.append(
                "  stalled by domain: "
                + ", ".join(
                    f"{domain}={list(receivers)}"
                    for domain, receivers in sorted(
                        self.stalled_by_domain.items()
                    )
                )
            )
        if self.abandoned_groups:
            lines.append(f"  abandoned groups: {list(self.abandoned_groups)}")
        if self.injected_faults:
            lines.append(f"  injected faults: {self.injected_faults}")
        if self.seed is not None:
            lines.append(f"  reproduce with rng={self.seed}")
        if self.fault_plan is not None:
            lines.append(f"  fault plan: {self.fault_plan.describe()}")
        return "\n".join(lines)


@dataclass
class ResilienceSummary:
    """The ``resilience`` section of a :class:`TransferReport`."""

    #: the plan in force, None when the fault layer was not engaged
    fault_plan: "FaultPlan | None" = None
    #: injected-fault counters (empty for a fault-free run)
    injected: dict[str, int] = field(default_factory=dict)
    #: corrupted packets detected via checksum and demoted to erasures
    corrupt_discarded: int = 0
    #: total NAK-watchdog retries across receivers
    watchdog_retries: int = 0
    #: largest backoff interval any watchdog reached (seconds)
    watchdog_backoff_peak: float = 0.0
    #: receiver crash/restart cycles survived
    crashes: int = 0
    #: True when the transfer completed only by ejecting receivers
    degraded: bool = False
    abandoned_groups: tuple[int, ...] = ()
    ejected_receivers: tuple[int, ...] = ()
    #: failure-domain path -> ejected receivers under it (empty unless the
    #: transfer ran under a domain tree and degraded)
    ejected_by_domain: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_json()
            ),
            "injected": dict(self.injected),
            "corrupt_discarded": self.corrupt_discarded,
            "watchdog_retries": self.watchdog_retries,
            "watchdog_backoff_peak": self.watchdog_backoff_peak,
            "crashes": self.crashes,
            "degraded": self.degraded,
            "abandoned_groups": list(self.abandoned_groups),
            "ejected_receivers": list(self.ejected_receivers),
            "ejected_by_domain": {
                domain: list(receivers)
                for domain, receivers in self.ejected_by_domain.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "ResilienceSummary":
        from repro.resilience.faults import FaultPlan  # local: cycle guard

        plan = data.get("fault_plan")
        return cls(
            fault_plan=None if plan is None else FaultPlan.from_json(plan),
            injected=dict(data.get("injected", {})),
            corrupt_discarded=int(data.get("corrupt_discarded", 0)),
            watchdog_retries=int(data.get("watchdog_retries", 0)),
            watchdog_backoff_peak=float(data.get("watchdog_backoff_peak", 0.0)),
            crashes=int(data.get("crashes", 0)),
            degraded=bool(data.get("degraded", False)),
            abandoned_groups=tuple(data.get("abandoned_groups", ())),
            ejected_receivers=tuple(data.get("ejected_receivers", ())),
            ejected_by_domain={
                domain: tuple(receivers)
                for domain, receivers in data.get(
                    "ejected_by_domain", {}
                ).items()
            },
        )
