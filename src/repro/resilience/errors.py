"""Typed transfer failures — every liveness or integrity failure is one of
these, and every one carries a :class:`~repro.resilience.report.StallReport`.

The taxonomy the harness raises:

* :class:`TransferTimeout` — the simulated clock crossed ``max_sim_time``
  with receivers still incomplete (the transfer was *making* progress, or
  at least still had events queued, but ran out of time budget).
* :class:`TransferStalled` — the event queue drained, the event budget was
  exhausted, or the sender tripped its round cap under the ``"error"``
  degradation policy, with receivers still incomplete: a liveness failure.
* :class:`DeliveryCorrupt` — a receiver reassembled different bytes than
  were sent: an integrity failure (should be unreachable while per-packet
  checksums demote corruption to erasure).

All subclass :class:`TransferError`, itself a ``RuntimeError`` so existing
``except RuntimeError`` callers keep working.

Two transport guarantees matter to the campaign runner, which moves these
errors between processes and persists them in journals:

* **Pickling** preserves the attached :class:`StallReport`: a typed error
  raised in a spawned worker arrives in the supervisor with its diagnosis
  intact (``__reduce__`` rebuilds from the pre-summary message + report,
  so the summary is not appended twice).
* **JSON** (:meth:`TransferError.to_json` / :func:`failure_from_json`)
  round-trips the full failure including the replay ``(seed, fault_plan)``
  pair, so a journaled chaos failure is replayable from the record alone.
"""

from __future__ import annotations

from repro.resilience.report import StallReport

__all__ = [
    "TransferError",
    "TransferTimeout",
    "TransferStalled",
    "DeliveryCorrupt",
    "failure_from_json",
]


class TransferError(RuntimeError):
    """Base class for typed transfer failures; carries a diagnosis."""

    def __init__(self, message: str, report: StallReport | None = None):
        #: the caller's message *before* the report summary is appended —
        #: what ``__reduce__`` and ``to_json`` persist, so reconstruction
        #: (which re-appends the summary) stays idempotent
        self.message = message
        if report is not None:
            message = f"{message}\n{report.summary()}"
        super().__init__(message)
        self.report = report

    def __reduce__(self):
        # default RuntimeError pickling would rebuild from ``args`` alone,
        # losing ``report``; rebuild from (pre-summary message, report)
        return (self.__class__, (self.message, self.report))

    def to_json(self) -> dict:
        """JSON form carrying the type tag, message and stall diagnosis."""
        return {
            "error_type": type(self).__name__,
            "message": self.message,
            "report": None if self.report is None else self.report.to_json(),
        }


class TransferTimeout(TransferError):
    """``max_sim_time`` elapsed with receivers still incomplete."""


class TransferStalled(TransferError):
    """The transfer can make no further progress (liveness failure)."""


class DeliveryCorrupt(TransferError):
    """A receiver reassembled bytes that differ from the payload sent."""


#: name -> class, for :func:`failure_from_json`
_TAXONOMY: dict[str, type[TransferError]] = {
    cls.__name__: cls
    for cls in (TransferError, TransferTimeout, TransferStalled, DeliveryCorrupt)
}


def failure_from_json(data: dict) -> TransferError:
    """Rebuild a typed failure from :meth:`TransferError.to_json` output.

    Unknown ``error_type`` tags (e.g. a plain ``ValueError`` serialized by
    the campaign journal) come back as the base :class:`TransferError` with
    the original type name folded into the message, so journals written by
    newer code still load.
    """
    error_type = data.get("error_type", "TransferError")
    error_cls = _TAXONOMY.get(error_type)
    message = data.get("message", "")
    if error_cls is None:
        error_cls = TransferError
        message = f"[{error_type}] {message}"
    report = data.get("report")
    return error_cls(
        message, None if report is None else StallReport.from_json(report)
    )
