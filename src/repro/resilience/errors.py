"""Typed transfer failures — every liveness or integrity failure is one of
these, and every one carries a :class:`~repro.resilience.report.StallReport`.

The taxonomy the harness raises:

* :class:`TransferTimeout` — the simulated clock crossed ``max_sim_time``
  with receivers still incomplete (the transfer was *making* progress, or
  at least still had events queued, but ran out of time budget).
* :class:`TransferStalled` — the event queue drained, the event budget was
  exhausted, or the sender tripped its round cap under the ``"error"``
  degradation policy, with receivers still incomplete: a liveness failure.
* :class:`DeliveryCorrupt` — a receiver reassembled different bytes than
  were sent: an integrity failure (should be unreachable while per-packet
  checksums demote corruption to erasure).

All subclass :class:`TransferError`, itself a ``RuntimeError`` so existing
``except RuntimeError`` callers keep working.
"""

from __future__ import annotations

from repro.resilience.report import StallReport

__all__ = [
    "TransferError",
    "TransferTimeout",
    "TransferStalled",
    "DeliveryCorrupt",
]


class TransferError(RuntimeError):
    """Base class for typed transfer failures; carries a diagnosis."""

    def __init__(self, message: str, report: StallReport | None = None):
        if report is not None:
            message = f"{message}\n{report.summary()}"
        super().__init__(message)
        self.report = report


class TransferTimeout(TransferError):
    """``max_sim_time`` elapsed with receivers still incomplete."""


class TransferStalled(TransferError):
    """The transfer can make no further progress (liveness failure)."""


class DeliveryCorrupt(TransferError):
    """A receiver reassembled bytes that differ from the payload sent."""
