"""`repro.obs` — unified metrics, spans, and cross-process telemetry.

Zero-dependency observability for the whole stack: exactly-mergeable
metric instruments (:mod:`repro.obs.metrics`), nested monotonic span
tracing (:mod:`repro.obs.spans`), and a per-process runtime switch
(:mod:`repro.obs.runtime`).  Off by default; ``obs.enable()`` or the
experiments CLI's ``--metrics-out PATH`` turns it on.  See DESIGN.md
section 12 for the merge contract and the overhead budget.
"""

from repro.obs.metrics import (
    DEFAULT_DURATION_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
    labels_key,
)
from repro.obs.runtime import (
    capture,
    counter,
    disable,
    enable,
    export_metrics,
    export_spans,
    gauge,
    histogram,
    is_enabled,
    merge_snapshot,
    recorder,
    registry,
    reset,
    snapshot,
    span,
)
from repro.obs.spans import Span, SpanRecord, SpanRecorder, TimerSpan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "DEFAULT_DURATION_BOUNDS",
    "labels_key",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "TimerSpan",
    "capture",
    "counter",
    "disable",
    "enable",
    "export_metrics",
    "export_spans",
    "gauge",
    "histogram",
    "is_enabled",
    "merge_snapshot",
    "recorder",
    "registry",
    "reset",
    "snapshot",
    "span",
]
