"""`repro.obs` — unified metrics, spans, and cross-process telemetry.

Zero-dependency observability for the whole stack: exactly-mergeable
metric instruments (:mod:`repro.obs.metrics`), nested monotonic span
tracing (:mod:`repro.obs.spans`), a per-process runtime switch
(:mod:`repro.obs.runtime`), and the live telemetry plane —
OpenMetrics/NDJSON exporters (:mod:`repro.obs.export`), an HTTP pull
endpoint (:mod:`repro.obs.httpd`), deterministic trace stitching
(:mod:`repro.obs.tracecontext`) and paper-model drift SLOs
(:mod:`repro.obs.slo`).  Off by default; ``obs.enable()`` or the
experiments CLI's ``--metrics-out PATH`` turns it on.  See DESIGN.md
sections 12 (merge contract, overhead budget) and 17 (telemetry plane).
"""

from repro.obs.metrics import (
    DEFAULT_DURATION_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
    labels_key,
)
from repro.obs.runtime import (
    capture,
    counter,
    disable,
    enable,
    export_metrics,
    export_spans,
    gauge,
    histogram,
    is_enabled,
    merge_snapshot,
    recorder,
    registry,
    reset,
    snapshot,
    span,
)
from repro.obs.spans import Span, SpanRecord, SpanRecorder, TimerSpan
from repro.obs.export import (
    TelemetryFlusher,
    parse_openmetrics,
    read_telemetry,
    snapshot_delta,
    to_openmetrics,
)
from repro.obs.httpd import MetricsEndpoint
from repro.obs.slo import (
    DriftAlert,
    DriftMonitor,
    EmDriftSLO,
    GoodputDriftSLO,
    read_alerts,
)
from repro.obs.tracecontext import (
    current_trace_id,
    export_trace,
    mint_trace_id,
    set_trace_id,
    stitch_traces,
    to_trace_events,
    use_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "DEFAULT_DURATION_BOUNDS",
    "labels_key",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "TimerSpan",
    "capture",
    "counter",
    "disable",
    "enable",
    "export_metrics",
    "export_spans",
    "gauge",
    "histogram",
    "is_enabled",
    "merge_snapshot",
    "recorder",
    "registry",
    "reset",
    "snapshot",
    "span",
    # telemetry plane
    "TelemetryFlusher",
    "parse_openmetrics",
    "read_telemetry",
    "snapshot_delta",
    "to_openmetrics",
    "MetricsEndpoint",
    "DriftAlert",
    "DriftMonitor",
    "EmDriftSLO",
    "GoodputDriftSLO",
    "read_alerts",
    "current_trace_id",
    "export_trace",
    "mint_trace_id",
    "set_trace_id",
    "stitch_traces",
    "to_trace_events",
    "use_trace",
]
