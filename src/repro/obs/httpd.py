"""A tiny HTTP pull endpoint serving live metrics to curl / scrapers.

:class:`MetricsEndpoint` is a deliberately minimal HTTP/1.1 server —
``asyncio.start_server``, one request per connection, three routes:

* ``GET /metrics`` — OpenMetrics text (:func:`repro.obs.export.to_openmetrics`)
* ``GET /metrics.json`` — the snapshot's JSON form (``MetricsSnapshot.to_json``)
* ``GET /healthz`` — ``ok``

It mounts in two ways.  Inside an existing event loop (``NetServer``),
``await start()`` / ``await stop()`` share the host's loop.  Beside a
synchronous host (the campaign supervisor), :meth:`start_in_thread`
spins a daemon thread with its own loop and :meth:`stop_in_thread`
tears it down; the provider callable is then invoked from that thread
while the main thread keeps mutating the registry, so thread-mode hosts
should hand in a provider that reads a cached snapshot (the campaign
runner caches on every flush) — :meth:`_snapshot` additionally retries
the rare mutation-during-iteration race as a belt.

Binds to loopback by default and serves read-only data; this is an
operator convenience, not an authenticated API.  Stdlib-only.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable

from repro.obs.export import to_openmetrics
from repro.obs.metrics import MetricsSnapshot

__all__ = ["MetricsEndpoint"]

_OPENMETRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"
_REQUEST_TIMEOUT = 5.0


class MetricsEndpoint:
    """Serve live metric snapshots over HTTP; see the module docstring."""

    def __init__(
        self,
        provider: Callable[[], MetricsSnapshot] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._provider = provider
        self.host = host
        self.port = int(port)
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once started."""
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    # ------------------------------------------------------------------
    def _snapshot(self) -> MetricsSnapshot:
        if self._provider is None:
            from repro.obs import runtime

            provider = runtime.snapshot
        else:
            provider = self._provider
        for attempt in (0, 1, 2):
            try:
                return provider()
            except RuntimeError:
                # registry dict mutated mid-snapshot by the host thread;
                # momentary by construction, so retry a couple of times
                if attempt == 2:
                    return MetricsSnapshot()
        return MetricsSnapshot()

    def _respond(self, path: str) -> tuple[int, str, str]:
        path = path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            return 200, _OPENMETRICS_TYPE, to_openmetrics(self._snapshot())
        if path == "/metrics.json":
            body = json.dumps(self._snapshot().to_json(), sort_keys=True)
            return 200, "application/json", body + "\n"
        if path == "/healthz":
            return 200, "text/plain; charset=utf-8", "ok\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    reader.readline(), _REQUEST_TIMEOUT
                )
            except asyncio.TimeoutError:
                return
            parts = request.decode("latin-1", "replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                status, ctype, body = 405, "text/plain; charset=utf-8", (
                    "method not allowed\n"
                )
            else:
                status, ctype, body = self._respond(parts[1])
            # drain request headers so the peer never sees a reset mid-send
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), _REQUEST_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                if line in (b"", b"\r\n", b"\n"):
                    break
            payload = body.encode()
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[
                status
            ]
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
            )
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # asyncio-host mode
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and serve on the current event loop; returns (host, port)."""
        if self._server is not None:
            raise RuntimeError("endpoint already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # ------------------------------------------------------------------
    # thread-host mode (synchronous supervisors)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> tuple[str, int]:
        """Run the endpoint on a dedicated daemon thread; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("endpoint already started")
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="obs-metrics-endpoint", daemon=True
        )
        self._thread.start()
        started.wait(timeout=10.0)
        if failure:
            self._thread = None
            self._thread_loop = None
            raise failure[0]
        return self.host, self.port

    def stop_in_thread(self) -> None:
        """Stop a thread-hosted endpoint and join its thread (idempotent)."""
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        try:
            future.result(timeout=10.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            self._thread = None
            self._thread_loop = None
