"""Lightweight span tracing: nested monotonic timers with NDJSON export.

A span measures one named stretch of work (``with obs.span("rse.decode",
k=k, h=h):``).  Spans nest — the recorder tracks a per-process stack and
stamps each finished span with its depth and its parent's name — and use
``time.perf_counter()`` exclusively, so enabling tracing never touches
wall-clock-dependent code paths or any RNG.

Finished spans land in a bounded in-memory ring (:class:`SpanRecorder`)
and, when the runtime is enabled, also feed a ``span.duration_seconds``
histogram labeled by span name so durations participate in the mergeable
metrics contract (`repro.obs.metrics`).  The NDJSON export uses the same
``{"record": "span", ...}`` line discriminator as metric and simulator-
trace exports, so all three interleave in a single file.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["SpanRecord", "SpanRecorder", "Span", "TimerSpan"]

#: Default bound on retained spans; beyond it, new spans are counted in
#: ``SpanRecorder.dropped`` rather than stored (protocol runs can finish
#: millions of decode spans).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, monotonic start/end, nesting, attributes."""

    name: str
    start: float
    end: float
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)
    index: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": {str(k): _attr_safe(v) for k, v in self.attrs.items()},
            "index": self.index,
        }


def _attr_safe(value: Any) -> Any:
    """Span attributes as JSON scalars (repr fallback for anything odd)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class SpanRecorder:
    """Bounded store of finished spans plus the live nesting stack."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.records: list[SpanRecord] = []
        self.dropped = 0
        self._stack: list[str] = []
        self._next_index = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records)

    @property
    def depth(self) -> int:
        """Current live nesting depth (0 outside any span)."""
        return len(self._stack)

    @property
    def current(self) -> str | None:
        """Name of the innermost live span, if any."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self._stack.clear()
        self._next_index = 0

    # ------------------------------------------------------------------
    def _push(self, name: str) -> tuple[int, str | None]:
        """Enter a span; returns (depth, parent name)."""
        depth = len(self._stack)
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        return depth, parent

    def _pop(self, record: SpanRecord) -> None:
        """Exit a span, storing its record (or counting it as dropped)."""
        if self._stack:
            self._stack.pop()
        if len(self.records) < self.capacity:
            self.records.append(record)
        else:
            self.dropped += 1
        self._next_index += 1

    # ------------------------------------------------------------------
    def query(self, name: str | None = None) -> list[SpanRecord]:
        if name is None:
            return list(self.records)
        return [r for r in self.records if r.name == name]

    def total_duration(self, name: str) -> float:
        return sum(r.duration for r in self.records if r.name == name)

    def to_ndjson(self, path: str | pathlib.Path, mode: str = "w") -> int:
        """Write one ``{"record": "span", ...}`` object per line."""
        path = pathlib.Path(path)
        count = 0
        with open(path, mode) as fh:
            for record in self.records:
                fh.write(
                    json.dumps({"record": "span", **record.to_json()}, sort_keys=True)
                )
                fh.write("\n")
                count += 1
        return count

    def summary(self) -> dict:
        by_name: dict[str, dict] = {}
        for record in self.records:
            slot = by_name.setdefault(
                record.name, {"count": 0, "total_seconds": 0.0}
            )
            slot["count"] += 1
            slot["total_seconds"] += record.duration
        return {
            "spans": len(self.records),
            "dropped": self.dropped,
            "by_name": by_name,
        }


class Span:
    """Recording context manager: times the block, records on exit.

    ``on_finish`` is the runtime's hook for feeding the duration
    histogram; exceptions inside the block are noted on the record
    (``attrs["error"]``) and re-raised.
    """

    __slots__ = ("name", "attrs", "_recorder", "_on_finish", "_start",
                 "_end", "_depth", "_parent")

    def __init__(
        self,
        name: str,
        recorder: SpanRecorder,
        attrs: dict,
        on_finish: Callable[[SpanRecord], None] | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._recorder = recorder
        self._on_finish = on_finish
        self._start: float | None = None
        self._end: float | None = None
        self._depth = 0
        self._parent: str | None = None

    def __enter__(self) -> "Span":
        self._depth, self._parent = self._recorder._push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end = time.perf_counter()
        if exc_type is not None:
            self.attrs = {**self.attrs, "error": exc_type.__name__}
        record = SpanRecord(
            name=self.name,
            start=self._start,
            end=self._end,
            depth=self._depth,
            parent=self._parent,
            attrs=self.attrs,
            index=self._recorder._next_index,
        )
        self._recorder._pop(record)
        if self._on_finish is not None:
            self._on_finish(record)
        return None

    @property
    def elapsed(self) -> float:
        """Seconds since entry (live) or the final duration (finished)."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    duration = elapsed


class TimerSpan:
    """The disabled-path stand-in: a bare timer, nothing recorded.

    Code that reads ``span.elapsed`` (rate-measurement loops in the
    codec figures) keeps working with observability off, at the cost of
    two ``perf_counter()`` calls and one attribute store.
    """

    __slots__ = ("_start", "_end")

    def __init__(self) -> None:
        self._start: float | None = None
        self._end: float | None = None

    def __enter__(self) -> "TimerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end = time.perf_counter()
        return None

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    duration = elapsed
