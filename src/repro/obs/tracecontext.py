"""Trace context: deterministic trace ids, ambient propagation, stitching.

A *trace* ties together every span that served one logical unit of work —
a campaign task attempt, or one net transfer session observed from both
the sender and the receiver side.  Trace ids are minted deterministically
(:func:`mint_trace_id` is a keyed hash of the caller's identifying parts,
never an RNG read), travel across process boundaries next to the metrics
snapshot in the worker success message, and across the UDP wire in a
dedicated control packet (``repro.net.wire.TraceContextPacket``).

Inside a process the id propagates *ambiently*: :func:`set_trace_id` /
:func:`use_trace` install it as module state, and the obs runtime stamps
it onto every span started while it is set (``attrs["trace"]``).  The
ambient slot is per-process and single-valued — right for the synchronous
campaign worker, wrong for a server multiplexing many sessions on one
event loop, which is why the net layer passes ``trace=...`` explicitly as
a span attribute instead.

Stitching (:func:`stitch_traces`) groups finished span records by trace
id, and :func:`to_trace_events` renders them as Chrome/Perfetto
trace-event JSON (one "process" per trace, one "thread" per side), so a
sender+receiver session opens as a single aligned timeline in
``chrome://tracing`` or https://ui.perfetto.dev.  Span timestamps are
``perf_counter`` readings, so spans from *different* processes share a
trace but not a clock base — Perfetto still shows each side's internal
structure correctly; cross-process skew is cosmetic.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import pathlib
from typing import Any, Iterable, Iterator

__all__ = [
    "TRACE_ID_BYTES",
    "mint_trace_id",
    "is_trace_id",
    "current_trace_id",
    "set_trace_id",
    "use_trace",
    "trace_of",
    "stitch_traces",
    "to_trace_events",
    "export_trace",
]

#: Raw width of a trace id: 16 bytes, rendered as 32 lowercase hex chars.
TRACE_ID_BYTES = 16

_HEX = set("0123456789abcdef")

_current: str | None = None


def mint_trace_id(*parts: Any) -> str:
    """A deterministic 32-hex trace id from the caller's identity parts.

    Same parts, same id — a resumed campaign attempt or a re-announced
    session keeps its trace.  Uses ``blake2b`` over the ``repr`` of each
    part; no RNG is touched, so minting ids can never perturb seeded
    experiment streams.
    """
    if not parts:
        raise ValueError("mint_trace_id needs at least one identity part")
    digest = hashlib.blake2b(digest_size=TRACE_ID_BYTES)
    for part in parts:
        digest.update(repr(part).encode("utf-8", "backslashreplace"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def is_trace_id(value: Any) -> bool:
    """Whether ``value`` is a well-formed 32-char lowercase-hex trace id."""
    return (
        isinstance(value, str)
        and len(value) == 2 * TRACE_ID_BYTES
        and set(value) <= _HEX
    )


# ----------------------------------------------------------------------
# ambient propagation (per-process, single-valued)
# ----------------------------------------------------------------------
def current_trace_id() -> str | None:
    """The ambient trace id, if one is installed."""
    return _current


def set_trace_id(trace_id: str | None) -> None:
    """Install (or clear, with ``None``) the ambient trace id."""
    global _current
    if trace_id is not None and not is_trace_id(trace_id):
        raise ValueError(f"malformed trace id: {trace_id!r}")
    _current = trace_id


@contextlib.contextmanager
def use_trace(trace_id: str | None) -> Iterator[str | None]:
    """Scoped ambient trace id; the previous value is restored on exit."""
    previous = _current
    set_trace_id(trace_id)
    try:
        yield trace_id
    finally:
        set_trace_id(previous)


# ----------------------------------------------------------------------
# stitching + export
# ----------------------------------------------------------------------
def _as_dict(record: Any) -> dict:
    """A span record (``SpanRecord`` or its ``to_json`` dict) as a dict."""
    if isinstance(record, dict):
        return record
    return record.to_json()


def trace_of(record: Any) -> str | None:
    """The trace id a span record carries, if any."""
    attrs = _as_dict(record).get("attrs") or {}
    trace = attrs.get("trace")
    return trace if is_trace_id(trace) else None


def stitch_traces(records: Iterable[Any]) -> dict[str, list[dict]]:
    """Group span records by trace id (untraced records are dropped).

    Records may come from any mix of sources — the local recorder,
    worker-shipped span dicts, NDJSON lines — and the result maps each
    trace id to its spans sorted by start time.
    """
    traces: dict[str, list[dict]] = {}
    for record in records:
        row = _as_dict(record)
        trace = trace_of(row)
        if trace is not None:
            traces.setdefault(trace, []).append(row)
    for spans in traces.values():
        spans.sort(key=lambda row: (row.get("start", 0.0), row.get("index", 0)))
    return traces


def to_trace_events(records: Iterable[Any]) -> dict:
    """Chrome/Perfetto trace-event JSON for every traced span record.

    One trace-event "process" per trace id, one "thread" per span side
    (``attrs["side"]``, defaulting to ``"local"``); each span becomes a
    complete (``ph: "X"``) event with microsecond timestamps.
    """
    traces = stitch_traces(records)
    events: list[dict] = []
    for pid, trace in enumerate(sorted(traces), start=1):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"trace {trace}"},
            }
        )
        sides = sorted(
            {(row.get("attrs") or {}).get("side", "local") for row in traces[trace]}
        )
        tids = {side: tid for tid, side in enumerate(sides, start=1)}
        for side, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": str(side)},
                }
            )
        for row in traces[trace]:
            attrs = dict(row.get("attrs") or {})
            side = attrs.get("side", "local")
            events.append(
                {
                    "ph": "X",
                    "name": row.get("name", "span"),
                    "cat": "span",
                    "pid": pid,
                    "tid": tids[side],
                    "ts": float(row.get("start", 0.0)) * 1e6,
                    "dur": float(row.get("duration", 0.0)) * 1e6,
                    "args": {
                        **attrs,
                        "depth": row.get("depth", 0),
                        "parent": row.get("parent"),
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_trace(
    path: str | pathlib.Path, records: Iterable[Any] | None = None
) -> int:
    """Write trace-event JSON for ``records`` (default: the process
    recorder's spans) to ``path``; returns the number of span events."""
    if records is None:
        from repro.obs import runtime

        records = runtime.recorder().records
    document = to_trace_events(records)
    path = pathlib.Path(path)
    with open(path, "w") as fh:
        json.dump(document, fh, sort_keys=True)
        fh.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")
