"""Snapshot exporters: OpenMetrics text, exact deltas, NDJSON flushing.

Three export surfaces over :class:`~repro.obs.metrics.MetricsSnapshot`:

* :func:`to_openmetrics` / :func:`parse_openmetrics` — the Prometheus /
  OpenMetrics text exposition format, made **losslessly round-trippable**.
  The exposition format cannot carry everything the merge contract needs
  (the exact fixed-point histogram sum is a multi-hundred-digit integer;
  gauges have a merge mode and a distinct "never observed" state), so the
  renderer emits one ``# repro:exact {...}`` comment per instrument
  carrying the identity (the original dotted name, the labels) plus only
  what the standard lines can't express.  Standard scrapers ignore
  comments and see plain OpenMetrics; :func:`parse_openmetrics` reads
  both and reconstructs the snapshot bit-for-bit — counter values and
  bucket counts are genuinely parsed from the sample lines.

* :func:`snapshot_delta` — the exact difference between two cumulative
  snapshots of the *same* registry.  Counters and histogram counts/sums
  subtract; gauges and histogram min/max stay cumulative (they are
  monotone under their own merge, so merging every delta in any order
  reconstructs the final snapshot exactly).  An unchanged instrument
  produces no entry at all, which is what makes periodic flushing cheap.

* :class:`TelemetryFlusher` — a periodic delta-aware NDJSON writer: each
  flush appends one ``{"record": "metric", "seq": N, ...}`` line per
  *changed* instrument (histogram sums as exact decimal strings) plus
  ``{"record": "alert", ...}`` lines for any SLO breaches from an
  attached :class:`~repro.obs.slo.DriftMonitor`.  :func:`read_telemetry`
  folds such a stream back into one snapshot, tolerating a torn final
  line from a live writer.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import re
import time
from typing import Any, Callable, Iterator

from repro.obs.metrics import (
    MetricRegistry,
    MetricsSnapshot,
    _unscaled,
    labels_key,
)

__all__ = [
    "to_openmetrics",
    "parse_openmetrics",
    "snapshot_delta",
    "TelemetryFlusher",
    "read_telemetry",
    "OpenMetricsParseError",
]

#: Every exposition family name gets this prefix (and dots become
#: underscores): ``net.frames_tx`` -> ``repro_net_frames_tx``.
PREFIX = "repro_"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_EXACT_PREFIX = "# repro:exact "


class OpenMetricsParseError(ValueError):
    """Raised when :func:`parse_openmetrics` meets text it cannot read."""


def _family(name: str) -> str:
    """Exposition family name for a dotted instrument name."""
    return PREFIX + _NAME_SANITIZE.sub("_", str(name))


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        (_LABEL_SANITIZE.sub("_", str(key)), _escape(value))
        for key, value in sorted(labels.items(), key=lambda kv: str(kv[0]))
    ]
    pairs.extend((key, _escape(value)) for key, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in pairs) + "}"


def _fmt(value: float) -> str:
    """Shortest-round-trip float text (ints render as ints)."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# ----------------------------------------------------------------------
# renderer
# ----------------------------------------------------------------------
def to_openmetrics(snapshot: MetricsSnapshot, *, counters_only: bool = False) -> str:
    """Render a snapshot as OpenMetrics text (ending in ``# EOF``).

    ``counters_only=True`` restricts the output to counter families —
    the deterministic subset of the merge contract (mirroring
    :meth:`MetricsSnapshot.counter_values`), which is what makes the
    rendered text bit-identical across a ``--jobs 1`` and ``--jobs 4``
    run of the same campaign.
    """
    lines: list[str] = []
    entries = snapshot._entries
    ordered = sorted(entries)
    for name, group in itertools.groupby(ordered, key=lambda key: key[0]):
        keys = list(group)
        kind = entries[keys[0]]["type"]
        if counters_only and kind != "counter":
            continue
        family = _family(name)
        lines.append(f"# TYPE {family} {kind}")
        lines.append(f"# HELP {family} repro instrument {_escape(name)}")
        for key in keys:
            entry = entries[key]
            labels = entry.get("labels", {})
            label_text = _render_labels(labels)
            sidecar: dict[str, Any] = {
                "type": entry["type"],
                "name": name,
                "labels": {str(k): str(v) for k, v in labels.items()},
            }
            if entry["type"] == "gauge":
                sidecar["mode"] = entry.get("mode", "max")
                sidecar["value"] = entry["value"]
            elif entry["type"] == "histogram":
                sidecar["sum"] = str(entry["sum"])
                sidecar["min"] = entry["min"]
                sidecar["max"] = entry["max"]
            lines.append(_EXACT_PREFIX + json.dumps(sidecar, sort_keys=True))
            if entry["type"] == "counter":
                lines.append(f"{family}_total{label_text} {int(entry['value'])}")
            elif entry["type"] == "gauge":
                if entry["value"] is not None:
                    lines.append(f"{family}{label_text} {_fmt(entry['value'])}")
            else:  # histogram
                cumulative = 0
                for bound, count in zip(entry["bounds"], entry["counts"]):
                    cumulative += int(count)
                    bucket = _render_labels(labels, (("le", _fmt(float(bound))),))
                    lines.append(f"{family}_bucket{bucket} {cumulative}")
                total = int(entry["count"])
                bucket = _render_labels(labels, (("le", "+Inf"),))
                lines.append(f"{family}_bucket{bucket} {total}")
                sum_value = 0.0 if total == 0 else _unscaled(int(entry["sum"]), 1)
                lines.append(f"{family}_sum{label_text} {_fmt(sum_value)}")
                lines.append(f"{family}_count{label_text} {total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _split_sample(line: str) -> tuple[str, dict[str, str], str]:
    """``name{labels} value`` -> (name, labels, value-text)."""
    brace = line.find("{")
    if brace < 0:
        name, _, value = line.partition(" ")
        return name, {}, value.strip()
    name = line[:brace]
    labels: dict[str, str] = {}
    i = brace + 1
    while i < len(line) and line[i] != "}":
        eq = line.index("=", i)
        key = line[i:eq]
        if line[eq + 1] != '"':
            raise OpenMetricsParseError(f"unquoted label value in {line!r}")
        chars: list[str] = []
        j = eq + 2
        while True:
            ch = line[j]
            if ch == "\\":
                nxt = line[j + 1]
                chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
            elif ch == '"':
                j += 1
                break
            else:
                chars.append(ch)
                j += 1
        labels[key] = "".join(chars)
        i = j + 1 if j < len(line) and line[j] == "," else j
    value = line[i + 1 :].strip()
    return name, labels, value


def _finalize(pending: dict | None) -> tuple[tuple, dict] | None:
    """Turn a parser-internal pending entry into a snapshot entry."""
    if pending is None:
        return None
    entry = pending["entry"]
    if entry["type"] == "histogram":
        cumulative = pending["buckets"]
        if not cumulative:
            raise OpenMetricsParseError(
                f"histogram {entry['name']!r} has no bucket samples"
            )
        if cumulative[-1][0] != "+Inf":
            raise OpenMetricsParseError(
                f"histogram {entry['name']!r} is missing its +Inf bucket"
            )
        bounds = [float(le) for le, _ in cumulative[:-1]]
        counts: list[int] = []
        previous = 0
        for _, value in cumulative:
            if value < previous:
                raise OpenMetricsParseError(
                    f"histogram {entry['name']!r} buckets are not cumulative"
                )
            counts.append(value - previous)
            previous = value
        entry["bounds"] = bounds
        entry["counts"] = counts
        entry["count"] = cumulative[-1][1]
    key = (str(entry["name"]), labels_key(entry["labels"]))
    return key, entry


def parse_openmetrics(text: str) -> MetricsSnapshot:
    """Parse text produced by :func:`to_openmetrics` back into a snapshot.

    Counter values and histogram bucket counts come from the standard
    sample lines; identity, gauge state and exact histogram sums come
    from the ``# repro:exact`` sidecar comments.  The reconstruction is
    bit-identical: ``parse_openmetrics(to_openmetrics(s)) == s``.
    """
    entries: dict[tuple, dict] = {}
    pending: dict | None = None

    def commit() -> None:
        nonlocal pending
        finalized = _finalize(pending)
        if finalized is not None:
            entries[finalized[0]] = finalized[1]
        pending = None

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(_EXACT_PREFIX):
            commit()
            try:
                sidecar = json.loads(line[len(_EXACT_PREFIX) :])
            except json.JSONDecodeError as exc:
                raise OpenMetricsParseError(f"bad sidecar line: {raw!r}") from exc
            kind = sidecar.get("type")
            entry: dict[str, Any] = {
                "type": kind,
                "name": str(sidecar["name"]),
                "labels": {str(k): str(v) for k, v in sidecar["labels"].items()},
            }
            if kind == "counter":
                entry["value"] = 0
            elif kind == "gauge":
                entry["mode"] = sidecar.get("mode", "max")
                entry["value"] = sidecar["value"]
            elif kind == "histogram":
                entry["sum"] = str(sidecar["sum"])
                entry["min"] = sidecar["min"]
                entry["max"] = sidecar["max"]
            else:
                raise OpenMetricsParseError(f"unknown sidecar type {kind!r}")
            pending = {"entry": entry, "family": _family(entry["name"]), "buckets": []}
            continue
        if line.startswith("#"):
            continue
        if pending is None:
            continue  # foreign sample line (plain Prometheus text)
        name, labels, value = _split_sample(line)
        family = pending["family"]
        kind = pending["entry"]["type"]
        if kind == "counter" and name == f"{family}_total":
            pending["entry"]["value"] = int(value)
        elif kind == "histogram" and name == f"{family}_bucket":
            pending["buckets"].append((labels.get("le", ""), int(value)))
        # gauge samples and histogram _sum/_count lines are redundant
        # with the sidecar / +Inf bucket and are deliberately skipped
    commit()

    registry = MetricRegistry()
    registry.merge_snapshot(MetricsSnapshot(entries))
    return registry.snapshot()


# ----------------------------------------------------------------------
# deltas
# ----------------------------------------------------------------------
def snapshot_delta(
    previous: MetricsSnapshot, current: MetricsSnapshot
) -> MetricsSnapshot:
    """The exact change between two cumulative snapshots of one registry.

    Only instruments that changed (or appeared) since ``previous`` are
    present.  Merging every delta of a run — in any order — reconstructs
    the final cumulative snapshot bit-for-bit: counters and histogram
    counts/sums are true differences, while gauges and histogram min/max
    ride along cumulatively (each is monotone under its own merge).
    """
    entries: dict[tuple, dict] = {}
    for key, entry in current._entries.items():
        old = previous._entries.get(key)
        if old == entry:
            continue
        if old is None:
            entries[key] = dict(entry)
            continue
        if entry["type"] != old["type"]:
            raise ValueError(
                f"instrument {key[0]!r} changed type between snapshots"
            )
        if entry["type"] == "counter":
            step = int(entry["value"]) - int(old["value"])
            if step < 0:
                raise ValueError(
                    f"counter {key[0]!r} went backwards between snapshots"
                )
            entries[key] = {**entry, "value": step}
        elif entry["type"] == "gauge":
            entries[key] = dict(entry)
        else:  # histogram
            counts = [
                int(c) - int(o) for c, o in zip(entry["counts"], old["counts"])
            ]
            step = int(entry["count"]) - int(old["count"])
            if step < 0 or any(c < 0 for c in counts):
                raise ValueError(
                    f"histogram {key[0]!r} went backwards between snapshots"
                )
            entries[key] = {
                **entry,
                "counts": counts,
                "count": step,
                "sum": str(int(entry["sum"]) - int(old["sum"])),
            }
    return MetricsSnapshot(entries)


# ----------------------------------------------------------------------
# NDJSON flushing
# ----------------------------------------------------------------------
class TelemetryFlusher:
    """Periodic delta-aware NDJSON writer for a live registry.

    Call :meth:`maybe_flush` from any convenient loop (the campaign
    supervisor calls it once per settled task); it only touches the
    snapshot machinery when ``interval`` seconds have passed.  Each flush
    appends the *changed* instruments as ``{"record": "metric", "seq": N,
    ...}`` lines (exact entry state — histogram sums stay decimal
    strings) and, when a ``monitor`` is attached, any breached SLOs as
    ``{"record": "alert", ...}`` lines.  :func:`read_telemetry` is the
    matching reader.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        interval: float = 5.0,
        monitor: Any | None = None,
        source: Callable[[], MetricsSnapshot] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.path = pathlib.Path(path)
        self.interval = float(interval)
        self.monitor = monitor
        self._source = source
        self._clock = clock
        self._fh = open(self.path, "w")
        self._previous = MetricsSnapshot()
        self._seq = 0
        self._last: float | None = None
        self._closed = False

    @property
    def seq(self) -> int:
        """Number of completed flushes."""
        return self._seq

    def _snapshot(self) -> MetricsSnapshot:
        if self._source is not None:
            return self._source()
        from repro.obs import runtime

        return runtime.snapshot()

    def maybe_flush(self, force: bool = False) -> int:
        """Flush if the interval elapsed (or ``force``); returns lines written."""
        if self._closed:
            return 0
        now = self._clock()
        if (
            not force
            and self._last is not None
            and now - self._last < self.interval
        ):
            return 0
        return self.flush()

    def flush(self) -> int:
        """Write the delta since the last flush; returns lines written."""
        if self._closed:
            return 0
        snapshot = self._snapshot()
        delta = snapshot_delta(self._previous, snapshot)
        written = 0
        for key in sorted(delta._entries):
            row = {"record": "metric", "seq": self._seq, **delta._entries[key]}
            self._fh.write(json.dumps(row, sort_keys=True))
            self._fh.write("\n")
            written += 1
        if self.monitor is not None:
            for alert in self.monitor.evaluate(snapshot):
                if alert.breached:
                    row = {"seq": self._seq, **alert.to_json()}
                    self._fh.write(json.dumps(row, sort_keys=True))
                    self._fh.write("\n")
                    written += 1
        self._fh.flush()
        self._previous = snapshot
        self._seq += 1
        self._last = self._clock()
        return written

    def close(self) -> None:
        """Final flush, then close the stream (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._fh.close()


def _iter_ndjson(path: str | pathlib.Path) -> Iterator[dict]:
    """Yield parsed NDJSON rows, skipping a torn tail from a live writer."""
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail (or foreign junk) — skip
                if isinstance(row, dict):
                    yield row
    except FileNotFoundError:
        return


def read_telemetry(
    path: str | pathlib.Path,
) -> tuple[MetricsSnapshot, list[dict]]:
    """Fold a flusher stream back into ``(snapshot, alerts)``.

    Merges every delta ``metric`` row (exact, order-independent) and
    collects ``alert`` rows verbatim.  Tolerates a torn final line, so it
    is safe to call against a file a live run is still appending to.
    """
    registry = MetricRegistry()
    alerts: list[dict] = []
    for row in _iter_ndjson(path):
        record = row.get("record")
        if record == "alert":
            alerts.append(row)
        elif record == "metric":
            entry = {
                k: v for k, v in row.items() if k not in ("record", "seq")
            }
            if entry.get("type") == "histogram" and not isinstance(
                entry.get("sum"), str
            ):
                continue  # lossy float export (obs.export_metrics), not a delta
            try:
                key = (str(entry["name"]), labels_key(entry.get("labels", {})))
                registry.merge_snapshot(MetricsSnapshot({key: entry}))
            except (KeyError, TypeError, ValueError):
                continue
    return registry.snapshot(), alerts
