"""Typed, exactly-mergeable metric instruments and their registry.

The observability layer's counterpart to
:class:`repro.mc.streaming.StreamingMoments`: every instrument's snapshot
obeys the same **partition-invariance contract** — observing a multiset of
samples split across any number of processes, shards, or resumed campaign
attempts and merging the snapshots yields bit-identical state, whatever
the split or merge order.  That is what lets a ``--jobs 4`` campaign and a
serial run report the *same* packet/NAK/retransmission totals.

Three instruments:

* :class:`Counter` — monotone integer; merge is integer addition (exact,
  commutative, associative).
* :class:`Gauge` — a commutative float aggregate (``max`` or ``min``
  only; "last write wins" is order-dependent and therefore banned).
* :class:`Histogram` — fixed buckets chosen at creation; per-bucket
  integer counts plus an **exact** fixed-point integer sum (the
  ``StreamingMoments`` dyadic-rational trick), so merged histograms agree
  bit-for-bit however the samples were partitioned.

Instruments are identified by ``(name, labels)`` where labels are
stringified key/value pairs; a :class:`MetricRegistry` hands out live
instruments, and :class:`MetricsSnapshot` is the frozen, JSON-safe,
mergeable form that crosses process boundaries (campaign journal,
``run_sharded`` shard results) and lands in ``--metrics-out`` files.

Everything here is stdlib-only and never touches any RNG.
"""

from __future__ import annotations

import csv
import json
import math
import pathlib
from bisect import bisect_right
from fractions import Fraction
from typing import Any, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshot",
    "DEFAULT_DURATION_BOUNDS",
    "labels_key",
]

#: Fixed-point shift making any finite float64 an exact integer (a finite
#: float is ``num / 2**e`` with ``e <= 1074``); same constant family as
#: ``repro.mc.streaming``.
_SHIFT = 1080

#: Default buckets for duration histograms (seconds): log-spaced from
#: 10 microseconds to 10 minutes, the range spanned by a GF matmul at one
#: end and a quarantined campaign task at the other.
DEFAULT_DURATION_BOUNDS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0, 600.0,
)


def _scaled(value: float) -> int:
    """``value * 2**_SHIFT`` as an exact integer (finite floats only)."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"metric samples must be finite, got {value}")
    numerator, denominator = value.as_integer_ratio()
    return numerator << (_SHIFT - (denominator.bit_length() - 1))


def _unscaled(total: int, count: int) -> float:
    """Exactly-rounded mean of a scaled sum over ``count`` samples."""
    if count == 0:
        return math.nan
    return float(Fraction(total, count << _SHIFT))


def labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical identity of a label set: sorted, stringified pairs."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class Counter:
    """Monotone integer counter; snapshot merge is plain integer addition."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n})")
        self.value += int(n)

    def _state(self) -> dict:
        return {"value": self.value}

    def _load(self, state: dict) -> None:
        self.value = int(state["value"])

    def _merge(self, state: dict) -> None:
        self.value += int(state["value"])


class Gauge:
    """Commutative float aggregate: the running ``max`` (or ``min``).

    Only order-independent aggregations are offered — a last-write gauge
    would make merged snapshots depend on shard completion order, which
    the merge contract forbids.  ``value`` is ``None`` until the first
    observation.
    """

    kind = "gauge"
    __slots__ = ("mode", "value")
    _MODES = ("max", "min")

    def __init__(self, mode: str = "max") -> None:
        if mode not in self._MODES:
            raise ValueError(f"gauge mode must be one of {self._MODES}, got {mode!r}")
        self.mode = mode
        self.value: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"metric samples must be finite, got {value}")
        if self.value is None:
            self.value = value
        elif self.mode == "max":
            self.value = max(self.value, value)
        else:
            self.value = min(self.value, value)

    def _state(self) -> dict:
        return {"mode": self.mode, "value": self.value}

    def _load(self, state: dict) -> None:
        self.mode = state.get("mode", "max")
        value = state["value"]
        self.value = None if value is None else float(value)

    def _merge(self, state: dict) -> None:
        mode = state.get("mode", "max")
        if mode != self.mode:
            raise ValueError(
                f"cannot merge gauge modes {self.mode!r} and {mode!r}"
            )
        if state["value"] is not None:
            self.observe(float(state["value"]))


class Histogram:
    """Fixed-bucket histogram with an exact (mergeable) sum.

    ``bounds`` are the increasing upper bucket edges; a sample lands in
    the first bucket whose edge is ``>= sample``, with one implicit
    overflow bucket above the last edge.  Bucket counts and the total are
    integers; the sum is kept as an exact fixed-point integer so merged
    snapshots are bit-identical for any partition of the samples.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "_sum", "min", "max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_DURATION_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self._sum = 0  # sum(x) * 2**_SHIFT, exact
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += _scaled(value)  # validates finiteness
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def sum(self) -> float:
        """The sample sum, exactly rounded to float once, at read time."""
        return _unscaled(self._sum, 1) if self.count else 0.0

    @property
    def mean(self) -> float:
        return _unscaled(self._sum, self.count)

    def _state(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": str(self._sum),  # big int travels as a decimal string
            "min": self.min,
            "max": self.max,
        }

    def _load(self, state: dict) -> None:
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {self.bounds} vs {bounds}"
            )
        self.counts = [int(c) for c in state["counts"]]
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("histogram counts do not match its bounds")
        self.count = int(state["count"])
        self._sum = int(state["sum"])
        self.min = None if state["min"] is None else float(state["min"])
        self.max = None if state["max"] is None else float(state["max"])

    def _merge(self, state: dict) -> None:
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {bounds}"
            )
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self.counts):
            raise ValueError("histogram counts do not match its bounds")
        self.counts = [a + b for a, b in zip(self.counts, counts)]
        self.count += int(state["count"])
        self._sum += int(state["sum"])
        for attr, pick in (("min", min), ("max", max)):
            theirs = state[attr]
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(
                    self,
                    attr,
                    float(theirs) if ours is None else pick(ours, float(theirs)),
                )


_INSTRUMENTS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class MetricRegistry:
    """Get-or-create home of live instruments, keyed by (name, labels).

    Label values are stringified at registration, so any hashable,
    printable value works as a label and the snapshot stays JSON-safe.
    Asking for an existing name with a different instrument kind (or
    different histogram bounds / gauge mode) is an error — silent
    redefinition would corrupt the merge contract.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._instruments.items())

    def clear(self) -> None:
        self._instruments.clear()

    def _get(self, kind: str, name: str, labels: dict, factory) -> Any:
        key = (str(name), labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                f"metric {name!r}{dict(labels)} is a {instrument.kind}, "
                f"not a {kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, mode: str = "max", **labels: Any) -> Gauge:
        gauge = self._get("gauge", name, labels, lambda: Gauge(mode))
        if gauge.mode != mode:
            raise ValueError(
                f"gauge {name!r} already registered with mode {gauge.mode!r}"
            )
        return gauge

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_DURATION_BOUNDS,
        **labels: Any,
    ) -> Histogram:
        bounds = tuple(float(b) for b in bounds)
        histogram = self._get(
            "histogram", name, labels, lambda: Histogram(bounds)
        )
        if histogram.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{histogram.bounds}"
            )
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """Frozen, mergeable, JSON-safe copy of every instrument."""
        entries = {}
        for (name, labels), instrument in self._instruments.items():
            entries[(name, labels)] = {
                "type": instrument.kind,
                "name": name,
                "labels": dict(labels),
                **instrument._state(),
            }
        return MetricsSnapshot(entries)

    def merge_snapshot(self, snapshot: "MetricsSnapshot") -> None:
        """Fold a snapshot's state into this registry's live instruments.

        Used by supervisors to roll worker snapshots up into their own
        registry; instruments are created on first sight.
        """
        for (name, labels), entry in snapshot._entries.items():
            kind = entry["type"]
            try:
                cls = _INSTRUMENTS[kind]
            except KeyError:
                raise ValueError(f"unknown instrument type {kind!r}") from None
            key = (name, labels)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls.__new__(cls)
                cls.__init__(
                    instrument,
                    **(
                        {"bounds": entry["bounds"]}
                        if kind == "histogram"
                        else {"mode": entry.get("mode", "max")}
                        if kind == "gauge"
                        else {}
                    ),
                )
                instrument._load(entry)
                self._instruments[key] = instrument
            else:
                if instrument.kind != kind:
                    raise TypeError(
                        f"metric {name!r} is a {instrument.kind} here but a "
                        f"{kind} in the merged snapshot"
                    )
                instrument._merge(entry)


# ----------------------------------------------------------------------
# snapshots (the cross-process unit)
# ----------------------------------------------------------------------
class MetricsSnapshot:
    """Immutable-by-convention registry state: merge, serialize, export.

    ``merge`` is pure (returns a new snapshot) and — because every
    underlying aggregate is an integer sum, a min, or a max — exactly
    commutative and associative: ``a.merge(b) == b.merge(a)`` bit for
    bit, and any partition of the same observations merges to the same
    snapshot.
    """

    def __init__(self, entries: dict[tuple, dict] | None = None) -> None:
        self._entries = dict(entries or {})

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsSnapshot({len(self._entries)} instruments)"

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Exact commutative merge; returns a new snapshot."""
        registry = MetricRegistry()
        registry.merge_snapshot(self)
        registry.merge_snapshot(other)
        return registry.snapshot()

    @classmethod
    def merge_all(
        cls, snapshots: Iterable["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        registry = MetricRegistry()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry.snapshot()

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Any:
        """The value of one instrument (counter/gauge value, histogram
        mean); ``KeyError`` if absent."""
        entry = self._entries[(str(name), labels_key(labels))]
        if entry["type"] == "histogram":
            return _unscaled(int(entry["sum"]), int(entry["count"]))
        return entry["value"]

    def counter_values(self) -> dict[tuple, int]:
        """Every counter as ``{(name, labels): value}`` — the
        deterministic subset used by shard-invariance assertions
        (durations and throughputs are real wall-clock measurements and
        legitimately differ between runs)."""
        return {
            key: int(entry["value"])
            for key, entry in self._entries.items()
            if entry["type"] == "counter"
        }

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "instruments": [
                self._entries[key] for key in sorted(self._entries)
            ]
        }

    @classmethod
    def from_json(cls, data: dict) -> "MetricsSnapshot":
        registry = MetricRegistry()
        snapshot = cls(
            {
                (
                    str(entry["name"]),
                    labels_key(entry.get("labels", {})),
                ): dict(entry)
                for entry in data.get("instruments", ())
            }
        )
        # round-trip through a registry to validate every entry's shape
        registry.merge_snapshot(snapshot)
        return registry.snapshot()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _rows(self) -> Iterator[dict]:
        for key in sorted(self._entries):
            entry = dict(self._entries[key])
            if entry["type"] == "histogram":
                entry["mean"] = _unscaled(int(entry["sum"]), int(entry["count"]))
                entry["sum"] = _unscaled(int(entry["sum"]), 1)
            yield entry

    def to_ndjson(self, path: str | pathlib.Path) -> int:
        """One ``{"record": "metric", ...}`` object per line; returns the
        number of lines written.  The ``record`` discriminator is shared
        with span and trace exports so all three interleave in one file."""
        path = pathlib.Path(path)
        count = 0
        with open(path, "w") as fh:
            for row in self._rows():
                fh.write(json.dumps({"record": "metric", **row}, sort_keys=True))
                fh.write("\n")
                count += 1
        return count

    def to_csv(self, path: str | pathlib.Path) -> int:
        """Flat CSV: one instrument per row; returns the row count."""
        path = pathlib.Path(path)
        fields = [
            "type", "name", "labels", "value", "mode",
            "count", "sum", "mean", "min", "max", "bounds", "counts",
        ]
        count = 0
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
            writer.writeheader()
            for row in self._rows():
                row = dict(row)
                row["labels"] = json.dumps(row.get("labels", {}), sort_keys=True)
                for listy in ("bounds", "counts"):
                    if listy in row:
                        row[listy] = " ".join(str(v) for v in row[listy])
                writer.writerow(row)
                count += 1
        return count
