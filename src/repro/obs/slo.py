"""Drift SLOs: live counters checked against the paper's closed forms.

The reproduction's analytical models double as service-level objectives:
a healthy run's observed repair cost should track ``E[M]`` (Equation 6)
and its goodput should track the Section-5 throughput model (Figures
17/18).  Each SLO reads a :class:`~repro.obs.metrics.MetricsSnapshot`,
computes the observed value from live counters, the predicted value from
the matching closed form, and emits a typed :class:`DriftAlert` whose
``breached`` flag fires when ``|observed/predicted - 1|`` exceeds the
tolerance.

:class:`DriftMonitor` is the aggregation point: the telemetry flusher
calls :meth:`DriftMonitor.evaluate` on every flush, breached alerts land
in the NDJSON stream as ``{"record": "alert", ...}`` lines (and in
``--status`` output), and — when the obs runtime is enabled — each
evaluation also publishes ``slo.observed`` / ``slo.predicted`` /
``slo.ratio`` gauges so scrapers see the drift without parsing alerts.

The closed forms live in ``repro.analysis`` (NumPy-backed); they are
imported lazily so ``repro.obs`` itself stays stdlib-only until an SLO
is actually evaluated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "DriftAlert",
    "EmDriftSLO",
    "GoodputDriftSLO",
    "DriftMonitor",
    "read_alerts",
]


@dataclass(frozen=True)
class DriftAlert:
    """One SLO evaluation: observed vs predicted, and whether it breached."""

    slo: str
    observed: float
    predicted: float
    ratio: float
    tolerance: float
    breached: bool
    context: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "record": "alert",
            "slo": self.slo,
            "observed": self.observed,
            "predicted": self.predicted,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
            "breached": self.breached,
            "context": dict(self.context),
        }

    @classmethod
    def from_json(cls, data: dict) -> "DriftAlert":
        return cls(
            slo=str(data["slo"]),
            observed=float(data["observed"]),
            predicted=float(data["predicted"]),
            ratio=float(data["ratio"]),
            tolerance=float(data["tolerance"]),
            breached=bool(data["breached"]),
            context=dict(data.get("context", {})),
        )

    def describe(self) -> str:
        """One status line: ``em[np]: observed 1.23 vs predicted 1.19 ...``."""
        state = "BREACH" if self.breached else "ok"
        return (
            f"{self.slo}: observed {self.observed:.4g} vs predicted "
            f"{self.predicted:.4g} (ratio {self.ratio:.3f}, "
            f"tolerance ±{self.tolerance:.0%}) [{state}]"
        )


def _alert(
    name: str,
    observed: float,
    predicted: float,
    tolerance: float,
    context: dict,
) -> DriftAlert:
    ratio = observed / predicted if predicted > 0 else math.inf
    breached = not math.isfinite(ratio) or abs(ratio - 1.0) > tolerance
    return DriftAlert(
        slo=name,
        observed=observed,
        predicted=predicted,
        ratio=ratio,
        tolerance=tolerance,
        breached=breached,
        context=context,
    )


def _counter_total(
    snapshot: MetricsSnapshot,
    name: str,
    _default: int | None = None,
    **fixed_labels: Any,
) -> int:
    """Sum a counter across label sets matching ``fixed_labels`` exactly
    on the given keys (other label keys are free).  An absent counter
    raises ``KeyError`` unless ``_default`` is given — repair-path
    counters (parity, retransmissions) legitimately never register on a
    loss-free run and count as 0."""
    wanted = {str(k): str(v) for k, v in fixed_labels.items()}
    total = 0
    found = False
    for (counter_name, _), entry in snapshot._entries.items():
        if counter_name != name or entry["type"] != "counter":
            continue
        labels = entry.get("labels", {})
        if all(str(labels.get(k)) == v for k, v in wanted.items()):
            total += int(entry["value"])
            found = True
    if not found:
        if _default is not None:
            return _default
        raise KeyError(f"no counter {name!r} matching {wanted} in snapshot")
    return total


class EmDriftSLO:
    """Observed transmissions-per-packet vs the Equation-6 lower bound.

    Two counter sources:

    * ``source="transfer"`` — the discrete-event simulator's merged
      ``transfer.*`` counters (labeled by protocol): observed ``E[M]`` is
      ``(data_sent + parity_sent + retransmissions_sent) / data_packets``.
    * ``source="net"`` — the live UDP transport: observed ``E[M]`` is
      payload frames actually sent (``net.frames_tx{kind=data|parity}``)
      over the loss-free baseline (``net.stream_data_tx``, the initial
      per-group data fanout).

    ``evaluate`` returns ``None`` while the counters are absent (nothing
    has run yet), so the monitor stays quiet during warm-up.
    """

    def __init__(
        self,
        k: int,
        p: float,
        n_receivers: int,
        protocol: str = "np",
        tolerance: float = 0.25,
        source: str = "transfer",
    ) -> None:
        if source not in ("transfer", "net"):
            raise ValueError(f"source must be 'transfer' or 'net', got {source!r}")
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        self.k = int(k)
        self.p = float(p)
        self.n_receivers = int(n_receivers)
        self.protocol = protocol
        self.tolerance = float(tolerance)
        self.source = source
        self.name = f"em[{source}:{protocol}]" if source == "transfer" else "em[net]"
        self._predicted: float | None = None

    def predicted(self) -> float:
        if self._predicted is None:
            from repro.analysis.integrated import (
                expected_transmissions_lower_bound,
            )

            self._predicted = expected_transmissions_lower_bound(
                self.k, self.p, self.n_receivers
            )
        return self._predicted

    def observed(self, snapshot: MetricsSnapshot) -> float | None:
        try:
            if self.source == "transfer":
                sent = _counter_total(
                    snapshot, "transfer.data_sent", protocol=self.protocol
                ) + sum(
                    _counter_total(snapshot, name, 0, protocol=self.protocol)
                    for name in (
                        "transfer.parity_sent",
                        "transfer.retransmissions_sent",
                    )
                )
                baseline = _counter_total(
                    snapshot, "transfer.data_packets", protocol=self.protocol
                )
            else:
                sent = _counter_total(
                    snapshot, "net.frames_tx", kind="data"
                ) + _counter_total(snapshot, "net.frames_tx", 0, kind="parity")
                baseline = _counter_total(snapshot, "net.stream_data_tx")
        except KeyError:
            return None
        if baseline <= 0:
            return None
        return sent / baseline

    def evaluate(self, snapshot: MetricsSnapshot) -> DriftAlert | None:
        observed = self.observed(snapshot)
        if observed is None:
            return None
        return _alert(
            self.name,
            observed,
            self.predicted(),
            self.tolerance,
            {
                "k": self.k,
                "p": self.p,
                "n_receivers": self.n_receivers,
                "protocol": self.protocol,
                "source": self.source,
            },
        )


class GoodputDriftSLO:
    """Observed receive goodput vs the Section-5 NP throughput model.

    Observed: the ``net.goodput_bytes_per_s`` gauge (peak payload
    bytes/s over a completed fetch).  Predicted:
    ``np_rates(p, k, R, costs).throughput * packet_size`` — the Figure
    17/18 model evaluated with the appendix's 1997 DECstation constants,
    so the default tolerance is deliberately wide; the SLO catches
    order-of-magnitude drift (a stalled pacer, a NAK storm), not
    hardware-era differences.
    """

    def __init__(
        self,
        k: int,
        p: float,
        n_receivers: int,
        packet_size: int,
        tolerance: float = 10.0,
        costs: Any | None = None,
    ) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        self.k = int(k)
        self.p = float(p)
        self.n_receivers = int(n_receivers)
        self.packet_size = int(packet_size)
        self.tolerance = float(tolerance)
        self.costs = costs
        self.name = "goodput[net]"
        self._predicted: float | None = None

    def predicted(self) -> float:
        if self._predicted is None:
            from repro.analysis.throughput import PAPER_COSTS, np_rates

            report = np_rates(
                self.p,
                self.k,
                # the model is undefined at R < 1; a single receiver is
                # the degenerate-but-valid floor for a loopback fetch
                max(self.n_receivers, 1),
                self.costs if self.costs is not None else PAPER_COSTS,
            )
            self._predicted = report.throughput * self.packet_size
        return self._predicted

    def observed(self, snapshot: MetricsSnapshot) -> float | None:
        try:
            value = snapshot.value("net.goodput_bytes_per_s")
        except KeyError:
            return None
        return None if value is None else float(value)

    def evaluate(self, snapshot: MetricsSnapshot) -> DriftAlert | None:
        observed = self.observed(snapshot)
        if observed is None:
            return None
        return _alert(
            self.name,
            observed,
            self.predicted(),
            self.tolerance,
            {
                "k": self.k,
                "p": self.p,
                "n_receivers": self.n_receivers,
                "packet_size": self.packet_size,
            },
        )


class DriftMonitor:
    """A bundle of SLOs evaluated together against one snapshot.

    Each evaluation publishes ``slo.observed/predicted/ratio{slo=name}``
    gauges into the obs runtime (when enabled) so the drift is visible to
    scrapers, and returns every alert — the caller decides whether only
    breaches are persisted (the flusher does exactly that).
    """

    def __init__(self, slos: Sequence[Any]) -> None:
        self.slos = list(slos)
        self.last_alerts: list[DriftAlert] = []

    def evaluate(self, snapshot: MetricsSnapshot) -> list[DriftAlert]:
        from repro.obs import runtime

        alerts: list[DriftAlert] = []
        for slo in self.slos:
            alert = slo.evaluate(snapshot)
            if alert is None:
                continue
            alerts.append(alert)
            if runtime.is_enabled():
                # max-mode gauges: monotone, hence exactly mergeable; the
                # latest evaluation of a converging run dominates anyway
                runtime.gauge("slo.observed", slo=alert.slo).observe(
                    alert.observed
                )
                runtime.gauge("slo.predicted", slo=alert.slo).observe(
                    alert.predicted
                )
                if math.isfinite(alert.ratio):
                    runtime.gauge("slo.ratio", slo=alert.slo).observe(
                        alert.ratio
                    )
        self.last_alerts = alerts
        return alerts


def read_alerts(path: Any) -> list[DriftAlert]:
    """Every ``{"record": "alert", ...}`` row of an NDJSON telemetry
    stream, parsed; tolerates a torn tail from a live writer."""
    from repro.obs.export import _iter_ndjson

    alerts = []
    for row in _iter_ndjson(path):
        if row.get("record") == "alert":
            try:
                alerts.append(DriftAlert.from_json(row))
            except (KeyError, TypeError, ValueError):
                continue
    return alerts
