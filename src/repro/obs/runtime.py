"""Process-global observability runtime: one switch, one registry.

Instrumented code throughout the repo asks two cheap questions::

    from repro import obs

    if obs.is_enabled():                       # one global read
        obs.counter("galois.matmul_calls", m=field.m).inc()

    with obs.span("rse.decode", k=k, h=h):     # timer either way
        ...

Everything is **off by default**: ``is_enabled()`` is a module-level
boolean read, ``span()`` returns a bare :class:`~repro.obs.spans.TimerSpan`
when disabled, and no instrument objects exist until something records.
``enable()`` flips the switch; workers spawned with telemetry capture
call it on startup, snapshot at exit, and ship the snapshot home where
the supervisor merges it (`repro.obs.metrics` guarantees the merge is
partition-invariant).  Nothing here reads or seeds any RNG, so enabling
observability can never perturb seeded experiment streams.

The state is deliberately per-process and unlocked: simulation code is
single-threaded, and cross-process aggregation happens via snapshots,
not shared memory.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Any, Iterator

from repro.obs.metrics import (
    DEFAULT_DURATION_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricsSnapshot,
)
from repro.obs.spans import Span, SpanRecorder, TimerSpan
from repro.obs.tracecontext import current_trace_id

__all__ = [
    "is_enabled",
    "enable",
    "disable",
    "reset",
    "registry",
    "recorder",
    "counter",
    "gauge",
    "histogram",
    "span",
    "snapshot",
    "merge_snapshot",
    "capture",
    "export_metrics",
    "export_spans",
]

_enabled = False
_registry = MetricRegistry()
_recorder = SpanRecorder()


def is_enabled() -> bool:
    """Whether telemetry is recording in this process."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Stop recording; accumulated state stays readable until reset()."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all accumulated metrics and spans (state, not the switch)."""
    _registry.clear()
    _recorder.clear()


def registry() -> MetricRegistry:
    return _registry


def recorder() -> SpanRecorder:
    return _recorder


# ----------------------------------------------------------------------
# instrument accessors (call only behind is_enabled() on hot paths)
# ----------------------------------------------------------------------
def counter(name: str, **labels: Any) -> Counter:
    return _registry.counter(name, **labels)


def gauge(name: str, mode: str = "max", **labels: Any) -> Gauge:
    return _registry.gauge(name, mode=mode, **labels)


def histogram(
    name: str,
    bounds: tuple[float, ...] = DEFAULT_DURATION_BOUNDS,
    **labels: Any,
) -> Histogram:
    return _registry.histogram(name, bounds=bounds, **labels)


def _span_finished(record) -> None:
    # durations join the mergeable registry, labeled by span name only —
    # span attrs are unbounded-cardinality and stay on the trace records
    _registry.histogram("span.duration_seconds", span=record.name).observe(
        record.duration
    )


def span(name: str, **attrs: Any) -> Span | TimerSpan:
    """A timing context: recording when enabled, a bare timer otherwise.

    When an ambient trace id is installed (`repro.obs.tracecontext`),
    it is stamped onto the span as ``attrs["trace"]`` unless the caller
    passed an explicit ``trace`` attribute.
    """
    if not _enabled:
        return TimerSpan()
    trace = current_trace_id()
    if trace is not None:
        attrs.setdefault("trace", trace)
    return Span(name, _recorder, attrs, on_finish=_span_finished)


# ----------------------------------------------------------------------
# aggregation + export
# ----------------------------------------------------------------------
def snapshot() -> MetricsSnapshot:
    """Frozen copy of this process's registry (mergeable, JSON-safe).

    Bounded-recorder truncation is never silent: the recorder's dropped
    count is levelled into an ``obs.spans_dropped`` counter here, so
    every export path (NDJSON dumps, the flusher, the pull endpoint,
    worker-shipped snapshots) carries it.  Nothing is injected while
    telemetry is disabled and nothing was dropped, preserving the
    "disabled runs observe nothing" contract.
    """
    dropped = _recorder.dropped
    if _enabled or dropped:
        instrument = _registry.counter("obs.spans_dropped")
        if dropped > instrument.value:
            instrument.inc(dropped - instrument.value)
    return _registry.snapshot()


def merge_snapshot(incoming: MetricsSnapshot) -> None:
    """Fold a worker's shipped snapshot into this process's registry."""
    _registry.merge_snapshot(incoming)


@contextlib.contextmanager
def capture(enabled: bool = True) -> Iterator[MetricRegistry]:
    """Scoped telemetry for tests: fresh state in, prior state restored.

    ``with obs.capture() as reg: ...`` enables recording into a clean
    registry/recorder pair and yields the registry; on exit the previous
    runtime state (switch, registry, recorder) is restored exactly.
    """
    global _enabled, _registry, _recorder
    saved = (_enabled, _registry, _recorder)
    _enabled = enabled
    _registry = MetricRegistry()
    _recorder = SpanRecorder()
    try:
        yield _registry
    finally:
        _enabled, _registry, _recorder = saved


def export_metrics(
    path: str | pathlib.Path, snap: MetricsSnapshot | None = None
) -> int:
    """Dump a snapshot (default: this process's) to ``path``.

    Format follows the suffix: ``.csv`` writes flat CSV, anything else
    writes NDJSON ``{"record": "metric", ...}`` lines.  Returns the
    number of instruments written.
    """
    if snap is None:
        snap = snapshot()
    path = pathlib.Path(path)
    if path.suffix.lower() == ".csv":
        return snap.to_csv(path)
    return snap.to_ndjson(path)


def export_spans(path: str | pathlib.Path, mode: str = "w") -> int:
    """Dump this process's finished spans as NDJSON; returns line count."""
    return _recorder.to_ndjson(path, mode=mode)
