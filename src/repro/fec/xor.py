"""Plain XOR parity: the ``n = k + 1`` single-parity code.

The cheapest possible FEC: one parity packet equal to the XOR of the ``k``
data packets.  Any single loss in the block — data or parity — is
recoverable, which the "Lightweight FEC" literature notes is the dominant
case on real multicast trees; decode is ``k - 1`` XORs with no field
multiplications at all.

A single-parity code *is* MDS (any ``k`` of the ``k + 1`` packets decode:
either all data arrived, or the one missing data packet is the XOR of
everything else), so :attr:`~XORCodec.is_mds` is True; the limitation is
purely that ``h`` cannot exceed 1 — :meth:`~XORCodec.validate_geometry`
rejects anything else and :meth:`~XORCodec.nearest_h` clamps sweeps to 1.

Over GF(2^m) addition *is* XOR, so the parity produced here is the
coefficient-1 row ``p = d_1 + d_2 + ... + d_k`` — note this differs from
RSE's ``h = 1`` parity, whose Vandermonde-derived systematic row is not
all-ones; the two codes protect identically (single loss) but are not
bit-compatible on the wire.
"""

from __future__ import annotations

import numpy as np

from repro.fec.code import CodeGeometryError, DecodeError, ErasureCode
from repro.fec.registry import register_codec
from repro.galois.field import GF256, GaloisField

__all__ = ["XORCodec"]


@register_codec
class XORCodec(ErasureCode):
    """Single XOR parity over a transmission group (``h`` must be 1).

    Accounting: the parity costs ``k`` coefficient-1 accumulate operations;
    reconstructing the single missing data packet costs ``k`` more (parity
    plus the ``k - 1`` surviving data packets).
    """

    name = "xor"
    is_mds = True
    systematic = True

    def __init__(self, k: int, h: int = 1, field: GaloisField = GF256):
        super().__init__(k, h, field=field)

    @classmethod
    def validate_geometry(
        cls, k: int, h: int, *, field: GaloisField = GF256, **extra: object
    ) -> None:
        super().validate_geometry(k, h, field=field, **extra)
        if h != 1:
            raise CodeGeometryError(
                f"xor is a single-parity code: h must be 1, got {h}"
            )

    @classmethod
    def nearest_h(cls, k: int, h: int) -> int:
        return 1

    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """The ``(1, S)`` XOR parity of a ``(k, S)`` symbol matrix."""
        data = self._check_symbols(data, rows_axis=0)
        parity = np.bitwise_xor.reduce(data, axis=0)
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += 1
        self.stats.symbols_multiplied += self.k
        return parity[None, :].astype(self.field.dtype, copy=False)

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Batched XOR parity for a ``(B, k, S)`` block batch."""
        if data.ndim != 3:
            raise ValueError(
                f"expected a (B, k, S) symbol batch, got shape {data.shape}"
            )
        data = self._check_symbols(data, rows_axis=1)
        parities = np.bitwise_xor.reduce(data, axis=1, keepdims=True)
        blocks = data.shape[0]
        self.stats.packets_encoded += blocks * self.k
        self.stats.parities_produced += blocks
        self.stats.symbols_multiplied += blocks * self.k
        return parities.astype(self.field.dtype, copy=False)

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Recover at most one missing data packet from the XOR parity."""
        out = {i: rows[i] for i in rows if i < self.k}
        missing = [i for i in range(self.k) if i not in rows]
        if not missing:
            return out
        if len(missing) > 1 or self.k not in rows:
            raise DecodeError(
                f"unrecoverable block: xor parity repairs a single loss, "
                f"missing data {missing} with "
                f"{'a' if self.k in rows else 'no'} parity packet"
            )
        acc = np.array(rows[self.k], dtype=self.field.dtype, copy=True)
        for i, row in out.items():
            np.bitwise_xor(acc, np.asarray(row, dtype=self.field.dtype), out=acc)
        out[missing[0]] = acc
        self.stats.packets_decoded += 1
        self.stats.symbols_multiplied += self.k
        return out
