"""Erasure coding layer (the paper's Section 2), behind a pluggable registry.

* :class:`repro.fec.ErasureCode` — the code-agnostic contract every codec
  implements; :class:`repro.fec.RSECodec` is the paper's systematic
  any-k-of-n coder and the registry default.
* ``repro.fec.registry`` — string-keyed codec registry (``rse``, ``xor``,
  ``rect``, ``lrc``) used by the framing layer, the MC simulators, the
  protocol harness and the experiment CLI;
* :class:`repro.fec.BlockEncoder` / :class:`repro.fec.BlockDecoder` —
  transmission-group framing and receive buffers;
* :class:`repro.fec.BlockInterleaver` — burst-loss interleaving (Section 4.2).
"""

from repro.fec.block import (
    BlockDecoder,
    BlockEncoder,
    TransmissionGroup,
    join_stream,
    slice_stream,
)
from repro.fec.code import (
    CodecStats,
    CodeGeometryError,
    DecodeError,
    ErasureCode,
    max_block_length,
)
from repro.fec.interleaver import BlockInterleaver, Deinterleaver, interleave_indices
from repro.fec.lrc import LRCCodec
from repro.fec.rect import RectangularCodec
from repro.fec.registry import (
    DEFAULT_CODEC,
    codec_names,
    create_codec,
    get_codec,
    register_codec,
    resolve_codec,
)
from repro.fec.rse import (
    InverseCache,
    RSECodec,
    default_inverse_cache,
)
from repro.fec.xor import XORCodec

__all__ = [
    "ErasureCode",
    "RSECodec",
    "XORCodec",
    "RectangularCodec",
    "LRCCodec",
    "DecodeError",
    "CodeGeometryError",
    "CodecStats",
    "InverseCache",
    "default_inverse_cache",
    "max_block_length",
    "DEFAULT_CODEC",
    "register_codec",
    "codec_names",
    "get_codec",
    "create_codec",
    "resolve_codec",
    "BlockEncoder",
    "BlockDecoder",
    "TransmissionGroup",
    "slice_stream",
    "join_stream",
    "BlockInterleaver",
    "Deinterleaver",
    "interleave_indices",
]
