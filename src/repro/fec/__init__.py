"""Reed-Solomon erasure coding layer (the paper's Section 2).

* :class:`repro.fec.RSECodec` — systematic any-k-of-n erasure codec;
* :class:`repro.fec.BlockEncoder` / :class:`repro.fec.BlockDecoder` —
  transmission-group framing and receive buffers;
* :class:`repro.fec.BlockInterleaver` — burst-loss interleaving (Section 4.2).
"""

from repro.fec.block import (
    BlockDecoder,
    BlockEncoder,
    TransmissionGroup,
    join_stream,
    slice_stream,
)
from repro.fec.interleaver import BlockInterleaver, Deinterleaver, interleave_indices
from repro.fec.rse import (
    CodecStats,
    DecodeError,
    InverseCache,
    RSECodec,
    default_inverse_cache,
    max_block_length,
)

__all__ = [
    "RSECodec",
    "DecodeError",
    "CodecStats",
    "InverseCache",
    "default_inverse_cache",
    "max_block_length",
    "BlockEncoder",
    "BlockDecoder",
    "TransmissionGroup",
    "slice_stream",
    "join_stream",
    "BlockInterleaver",
    "Deinterleaver",
    "interleave_indices",
]
