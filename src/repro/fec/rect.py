"""Rectangular (row/column) parity codes — lightweight 2-D XOR FEC.

The ``k`` data packets of a transmission group are laid out row-major on an
``r x c`` grid (``r * c >= k``; cells past ``k`` are *virtual* zero packets
that are never transmitted), and ``h = r + c`` parity packets are emitted:
one XOR parity per grid row followed by one per grid column.  This is the
classic "lightweight FEC" construction: every parity is a plain XOR, decode
is iterative *peeling* — repeatedly repair any row or column whose parity
arrived and which is missing exactly one cell — so the common sparse-loss
patterns are repaired with a handful of XORs and no field arithmetic.

The code is **not** MDS: ``h = r + c`` parities never protect against
``r + c`` arbitrary losses (any four losses on the corners of a grid
rectangle are unrecoverable no matter how many parities arrived).
Recoverability is defined — honestly — as "the peeling decoder finishes":
:meth:`~RectangularCodec.decodable_from` runs the peeling schedule on the
index pattern, and :meth:`~RectangularCodec.decode_symbols` raises
:exc:`~repro.fec.code.DecodeError` on exactly the patterns the predicate
rejects.

Block index layout: ``0..k-1`` data, ``k..k+r-1`` row parities (top to
bottom), ``k+r..k+r+c-1`` column parities (left to right).
"""

from __future__ import annotations

import math

import numpy as np

from repro.fec.code import CodeGeometryError, DecodeError, ErasureCode
from repro.fec.registry import register_codec
from repro.galois.field import GF256, GaloisField

__all__ = ["RectangularCodec"]


def _grid_for(k: int, h: int) -> tuple[int, int] | None:
    """Best ``(rows, cols)`` split of ``h`` covering ``k`` cells, or None.

    Among all ``r + c = h`` with ``r * c >= k``, prefer the least padding
    (fewest virtual cells), then the squarest grid, then fewer rows — a
    deterministic choice so the same ``(k, h)`` always yields the same
    layout on every host.
    """
    best: tuple[tuple[int, int, int], tuple[int, int]] | None = None
    for rows in range(1, h):
        cols = h - rows
        if rows * cols < k:
            continue
        key = (rows * cols - k, abs(rows - cols), rows)
        if best is None or key < best[0]:
            best = (key, (rows, cols))
    return best[1] if best else None


def _min_h(k: int) -> int:
    """Smallest ``h = r + c`` with ``r * c >= k``."""
    return min(
        rows + math.ceil(k / rows) for rows in range(1, k + 1)
    )


@register_codec
class RectangularCodec(ErasureCode):
    """Row/column XOR parity over an ``r x c`` grid (``h = r + c``).

    Accounting: every real cell is accumulated into exactly one row parity
    and one column parity, so encoding charges ``2k`` coefficient-1
    operations per block; each peeling repair charges one operation per
    packet XORed into the reconstruction.
    """

    name = "rect"
    is_mds = False
    systematic = True

    def __init__(self, k: int, h: int, field: GaloisField = GF256):
        super().__init__(k, h, field=field)
        self.rows, self.cols = _grid_for(k, h)  # validated: never None

    @classmethod
    def validate_geometry(
        cls, k: int, h: int, *, field: GaloisField = GF256, **extra: object
    ) -> None:
        super().validate_geometry(k, h, field=field, **extra)
        if _grid_for(k, h) is None:
            raise CodeGeometryError(
                f"rect needs h = rows + cols with rows * cols >= k; "
                f"no split of h={h} covers k={k} "
                f"(minimum h for k={k} is {_min_h(k)})"
            )

    @classmethod
    def nearest_h(cls, k: int, h: int) -> int:
        # every h at or above the minimal perimeter is realisable (grow one
        # side), so clamping from below suffices
        return max(h, _min_h(k))

    # ------------------------------------------------------------------
    # grid helpers
    # ------------------------------------------------------------------
    def _row_cells(self, row: int) -> list[int]:
        """Real data indices on grid row ``row``."""
        start = row * self.cols
        return [i for i in range(start, start + self.cols) if i < self.k]

    def _col_cells(self, col: int) -> list[int]:
        """Real data indices on grid column ``col``."""
        return [i for i in range(col, self.rows * self.cols, self.cols)
                if i < self.k]

    def _peel_plan(
        self, present: frozenset[int]
    ) -> list[tuple[int, list[int]]] | None:
        """Peeling schedule for an index pattern, or None if it stalls.

        Returns ordered steps ``(cell, sources)``: XOR the ``sources``
        (one parity index plus the line's other real cells, all available
        by that point) to rebuild ``cell``.
        """
        missing = {i for i in range(self.k) if i not in present}
        if not missing:
            return []
        row_parities = [
            row for row in range(self.rows) if self.k + row in present
        ]
        col_parities = [
            col for col in range(self.cols)
            if self.k + self.rows + col in present
        ]
        steps: list[tuple[int, list[int]]] = []
        progress = True
        while missing and progress:
            progress = False
            for row in row_parities:
                cells = self._row_cells(row)
                unknown = [i for i in cells if i in missing]
                if len(unknown) == 1:
                    cell = unknown[0]
                    sources = [self.k + row] + [i for i in cells if i != cell]
                    steps.append((cell, sources))
                    missing.remove(cell)
                    progress = True
            for col in col_parities:
                cells = self._col_cells(col)
                unknown = [i for i in cells if i in missing]
                if len(unknown) == 1:
                    cell = unknown[0]
                    sources = [self.k + self.rows + col] + [
                        i for i in cells if i != cell
                    ]
                    steps.append((cell, sources))
                    missing.remove(cell)
                    progress = True
        return steps if not missing else None

    def _pattern_decodable(self, pattern: tuple[int, ...]) -> bool:
        return self._peel_plan(frozenset(pattern)) is not None

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """Row then column XOR parities of a ``(k, S)`` symbol matrix."""
        data = self._check_symbols(data, rows_axis=0)
        symbols = data.shape[1]
        grid = np.zeros(
            (self.rows * self.cols, symbols), dtype=self.field.dtype
        )
        grid[: self.k] = data
        grid = grid.reshape(self.rows, self.cols, symbols)
        row_parities = np.bitwise_xor.reduce(grid, axis=1)  # (rows, S)
        col_parities = np.bitwise_xor.reduce(grid, axis=0)  # (cols, S)
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += 2 * self.k
        return np.concatenate([row_parities, col_parities]).astype(
            self.field.dtype, copy=False
        )

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Peel missing data packets from row/column parities."""
        out = {
            i: np.asarray(rows[i], dtype=self.field.dtype)
            for i in rows if i < self.k
        }
        missing = [i for i in range(self.k) if i not in rows]
        if not missing:
            return out
        plan = self._peel_plan(frozenset(rows))
        if plan is None:
            raise DecodeError(
                f"unrecoverable block: peeling stalls on grid "
                f"{self.rows}x{self.cols} with data {sorted(missing)} missing"
            )
        values = dict(out)
        symbols = len(next(iter(rows.values())))
        operations = 0
        for cell, sources in plan:
            acc = np.zeros(symbols, dtype=self.field.dtype)
            for source in sources:
                vector = values.get(source)
                if vector is None:
                    vector = np.asarray(rows[source], dtype=self.field.dtype)
                np.bitwise_xor(acc, vector, out=acc)
                operations += 1
            values[cell] = acc
            out[cell] = acc
        self.stats.packets_decoded += len(missing)
        self.stats.symbols_multiplied += operations
        return out
