"""String-keyed registry of erasure-code implementations.

The registry is the single place the rest of the tree — `BlockEncoder` /
`BlockDecoder`, the MC simulators, the protocol harness's ``codec=`` knob,
the experiment CLI's ``--codec`` flag and the campaign grids — resolves a
codec name into a constructed :class:`~repro.fec.code.ErasureCode`.  Names
are plain strings, so they cross process boundaries (the sharded MC kernels
receive ``codec="lrc"`` in their params dict, never a live object).

Geometry is validated through the class's
:meth:`~repro.fec.code.ErasureCode.validate_geometry` *before* construction,
so every codec rejects impossible ``(k, h)`` uniformly with
:exc:`~repro.fec.code.CodeGeometryError`.

>>> from repro.fec.registry import create_codec, codec_names
>>> sorted(codec_names())  # doctest: +SKIP
['lrc', 'rect', 'rse', 'xor']
>>> create_codec("xor", k=7, h=1).n
8
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.fec.code import ErasureCode
from repro.galois.field import GF256

__all__ = [
    "DEFAULT_CODEC",
    "register_codec",
    "codec_names",
    "get_codec",
    "create_codec",
    "resolve_codec",
    "temporary_codec",
]

#: Codec used when callers don't specify one (the paper's own coder).
DEFAULT_CODEC = "rse"

_REGISTRY: dict[str, type[ErasureCode]] = {}


def register_codec(cls: type[ErasureCode]) -> type[ErasureCode]:
    """Class decorator: register ``cls`` under its :attr:`name`.

    Re-registering the *same* class is a no-op (module reloads); claiming
    an existing name with a different class is an error.
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(
            f"codec class {cls.__name__} must define a non-empty `name`"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"codec name {name!r} already registered by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def codec_names() -> list[str]:
    """Sorted names of every registered codec."""
    return sorted(_REGISTRY)


def get_codec(name: str) -> type[ErasureCode]:
    """The codec class registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known names, for typo-friendly CLI errors.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; registered codecs: {codec_names()}"
        ) from None


def create_codec(name: str, k: int, h: int, **kwargs) -> ErasureCode:
    """Construct codec ``name`` for geometry ``(k, h)``.

    Geometry is validated via the class's ``validate_geometry`` before the
    constructor runs, so impossible shapes fail with
    :exc:`~repro.fec.code.CodeGeometryError` regardless of implementation.
    Extra keyword arguments are passed to the constructor (e.g. ``field=``,
    RSE's ``inverse_cache=``, LRC's ``local_groups=``).
    """
    cls = get_codec(name)
    geometry_kwargs = dict(kwargs)
    geometry_kwargs.setdefault("field", GF256)
    # validate_geometry signatures accept and ignore construction-only
    # extras (e.g. inverse_cache), so all kwargs can be forwarded
    cls.validate_geometry(k, h, **geometry_kwargs)
    return cls(k, h, **kwargs)


def resolve_codec(
    codec: ErasureCode | str | None, k: int, h: int, **kwargs
) -> ErasureCode | None:
    """Normalise a codec knob: name -> instance, instance -> geometry-checked.

    ``None`` passes through (caller-specific default).  An instance must
    already match ``(k, h)`` exactly; a string is constructed through the
    registry.
    """
    if codec is None:
        return None
    if isinstance(codec, str):
        return create_codec(codec, k, h, **kwargs)
    if codec.k != k or codec.h != h:
        raise ValueError(
            f"codec {codec!r} does not match requested geometry "
            f"k={k}, h={h}"
        )
    return codec


@contextmanager
def temporary_codec(cls: type[ErasureCode]) -> Iterator[type[ErasureCode]]:
    """Register ``cls`` for the duration of a ``with`` block (tests only).

    The conformance suite uses this to prove it catches contract
    violations: a deliberately broken codec is registered, the battery is
    run against it, and the registry is restored afterwards even if the
    battery (correctly) fails.
    """
    name = cls.name
    previous = _REGISTRY.get(name)
    if previous is not None and previous is not cls:
        raise ValueError(f"codec name {name!r} already registered")
    register_codec(cls)
    try:
        yield cls
    finally:
        if previous is None:
            _REGISTRY.pop(name, None)
        else:
            _REGISTRY[name] = previous
