"""A simple locally-repairable code (LRC): local XOR groups + global RS rows.

The ``k`` data packets are partitioned into ``g`` contiguous *local groups*;
each group gets one XOR parity (coefficient-1 row over the group), and the
block is topped up with ``m = h - g`` *global* Reed-Solomon parity rows (the
parity rows of the ``(k, k + m)`` Vandermonde-systematic generator).  This is
the Azure/Xorbas-style trade: the dominant single-loss-per-group case is
repaired from the small local group with a few XORs, while the global rows
catch heavier loss — at the price of not being MDS (``g + m`` parities
tolerate any ``m + 1`` losses, but *not* every ``h``-subset an RS code with
the same rate would survive; e.g. ``m + 2`` losses inside one local group are
unrecoverable).

Decode solves the available parity equations restricted to the missing data
columns by Gaussian elimination over the field — an exact (maximum-likelihood)
erasure decoder for this code, so peeling-reachable patterns and
rank-reachable patterns are both claimed and both decoded.
:meth:`~LRCCodec.decodable_from` is the matching rank test; the two can never
disagree because they run the same elimination.

Block index layout: ``0..k-1`` data, ``k..k+g-1`` local XOR parities (one per
group, in group order), ``k+g..k+h-1`` global RS parities.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fec.code import CodeGeometryError, DecodeError, ErasureCode
from repro.fec.registry import register_codec
from repro.galois.field import GF256, GaloisField
from repro.galois.matrix import systematic_generator

__all__ = ["LRCCodec"]


def _default_groups(k: int, h: int) -> int:
    """Default local-group count: ~sqrt(k), leaving >= 1 global parity."""
    return max(1, min(round(math.sqrt(k)), h - 1, k))


def _group_slices(k: int, groups: int) -> list[range]:
    """Contiguous near-equal partition of ``range(k)`` into ``groups``."""
    base, extra = divmod(k, groups)
    slices = []
    start = 0
    for j in range(groups):
        size = base + (1 if j < extra else 0)
        slices.append(range(start, start + size))
        start += size
    return slices


@register_codec
class LRCCodec(ErasureCode):
    """Locally-repairable code: ``g`` local XOR parities + ``h - g`` RS rows.

    Parameters
    ----------
    k, h:
        Group size and total parity count; ``h`` must be at least 2 (one
        local and one global parity).
    field:
        Galois field for the global rows; defaults to GF(2^8).
    local_groups:
        Number of local groups ``g`` (``1 <= g <= min(h - 1, k)``); defaults
        to roughly ``sqrt(k)``.

    Accounting mirrors :class:`~repro.fec.rse.RSECodec`: one
    ``symbols_multiplied`` per nonzero parity coefficient on encode, one per
    nonzero coefficient met while eliminating on decode.
    """

    name = "lrc"
    is_mds = False
    systematic = True

    def __init__(
        self,
        k: int,
        h: int,
        field: GaloisField = GF256,
        local_groups: int | None = None,
    ):
        super().__init__(k, h, field=field, local_groups=local_groups)
        self.local_groups = (
            local_groups if local_groups is not None else _default_groups(k, h)
        )
        self.global_parities = h - self.local_groups
        self.groups = _group_slices(k, self.local_groups)
        parity = np.zeros((h, k), dtype=field.dtype)
        for j, members in enumerate(self.groups):
            parity[j, list(members)] = 1
        parity[self.local_groups:] = systematic_generator(
            field, k, k + self.global_parities
        )[k:]
        parity.setflags(write=False)
        #: ``(h, k)`` parity coefficient matrix: local rows then global rows.
        self.parity_matrix = parity
        self._parity_ops = int(np.count_nonzero(parity))

    @classmethod
    def validate_geometry(
        cls,
        k: int,
        h: int,
        *,
        field: GaloisField = GF256,
        local_groups: int | None = None,
        **extra: object,
    ) -> None:
        super().validate_geometry(k, h, field=field, **extra)
        if h < 2:
            raise CodeGeometryError(
                f"lrc needs at least one local and one global parity "
                f"(h >= 2), got h={h}"
            )
        groups = local_groups if local_groups is not None else _default_groups(k, h)
        if not 1 <= groups <= min(h - 1, k):
            raise CodeGeometryError(
                f"lrc local_groups must be in 1..min(h-1, k)="
                f"{min(h - 1, k)}, got {groups}"
            )

    @classmethod
    def nearest_h(cls, k: int, h: int) -> int:
        return max(h, 2)

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """All ``h`` parities (local then global) of a ``(k, S)`` matrix."""
        data = self._check_symbols(data, rows_axis=0)
        parities = self.field.matmul(self.parity_matrix, data)
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += self._parity_ops
        return parities

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Batched encode of a ``(B, k, S)`` block batch (one matmul)."""
        if data.ndim != 3:
            raise ValueError(
                f"expected a (B, k, S) symbol batch, got shape {data.shape}"
            )
        data = self._check_symbols(data, rows_axis=1)
        parities = self.field.matmul(self.parity_matrix, data)
        blocks = data.shape[0]
        self.stats.packets_encoded += blocks * self.k
        self.stats.parities_produced += blocks * self.h
        self.stats.symbols_multiplied += blocks * self._parity_ops
        return parities

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def _elimination(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray | None,
    ) -> tuple[np.ndarray | None, int] | None:
        """Gauss-Jordan over the field on ``(E, M)`` ``coefficients``.

        With ``rhs`` (shape ``(E, S)``): returns ``(solution, operations)``
        where ``solution`` is ``(M, S)``, or None if some unknown has no
        pivot.  Without ``rhs``: returns ``(None, 0)`` on full column rank,
        None otherwise (the pure decodability test).
        """
        a = coefficients.astype(self.field.dtype, copy=True)
        b = None if rhs is None else rhs.astype(self.field.dtype, copy=True)
        equations, unknowns = a.shape
        operations = 0
        pivot_rows: list[int] = []
        row = 0
        for col in range(unknowns):
            pivot = next(
                (r for r in range(row, equations) if a[r, col]), None
            )
            if pivot is None:
                return None
            if pivot != row:
                a[[row, pivot]] = a[[pivot, row]]
                if b is not None:
                    b[[row, pivot]] = b[[pivot, row]]
            scale = self.field.inverse(int(a[row, col]))
            if scale != 1:
                a[row] = self.field.scale(scale, a[row])
                if b is not None:
                    b[row] = self.field.scale(scale, b[row])
                    operations += 1
            for other in range(equations):
                factor = int(a[other, col])
                if other == row or not factor:
                    continue
                np.bitwise_xor(
                    a[other], self.field.scale(factor, a[row]), out=a[other]
                )
                if b is not None:
                    self.field.scale_accumulate(b[other], factor, b[row])
                    operations += 1
            pivot_rows.append(row)
            row += 1
        if b is None:
            return None, 0
        return b[pivot_rows], operations

    def _pattern_decodable(self, pattern: tuple[int, ...]) -> bool:
        present = frozenset(pattern)
        missing = [i for i in range(self.k) if i not in present]
        if not missing:
            return True
        available = [p - self.k for p in present if p >= self.k]
        if len(available) < len(missing):
            return False
        coefficients = self.parity_matrix[available][:, missing]
        return self._elimination(coefficients, None) is not None

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Exact erasure decode by elimination over the parity equations."""
        out = {
            i: np.asarray(rows[i], dtype=self.field.dtype)
            for i in rows if i < self.k
        }
        missing = [i for i in range(self.k) if i not in rows]
        if not missing:
            return out
        parity_indices = sorted(i for i in rows if i >= self.k)
        available = [p - self.k for p in parity_indices]
        if len(available) < len(missing):
            raise DecodeError(
                f"unrecoverable block: {len(missing)} data packets missing "
                f"but only {len(available)} parity equations available"
            )
        # substitute the known data into each equation:
        #   rhs_e = parity_e + sum_{j known} P[e, j] * data_j
        known = sorted(out)
        rhs = np.vstack([
            np.asarray(rows[p], dtype=self.field.dtype)
            for p in parity_indices
        ]).copy()
        operations = 0
        if known:
            known_coeffs = self.parity_matrix[available][:, known]
            stacked = np.vstack([out[i] for i in known])
            np.bitwise_xor(
                rhs, self.field.matmul(known_coeffs, stacked), out=rhs
            )
            operations += int(np.count_nonzero(known_coeffs))
        coefficients = self.parity_matrix[available][:, missing]
        solved = self._elimination(coefficients, rhs)
        if solved is None:
            raise DecodeError(
                f"unrecoverable block: parity equations are rank-deficient "
                f"for missing data {missing} "
                f"(lrc g={self.local_groups}, m={self.global_parities})"
            )
        solution, elimination_ops = solved
        for row_index, data_index in enumerate(missing):
            out[data_index] = solution[row_index]
        self.stats.packets_decoded += len(missing)
        self.stats.symbols_multiplied += operations + elimination_ops
        return out
