"""The code-agnostic erasure-code contract (``ErasureCode``).

The paper's analysis assumes an ideal ``(k, n)`` MDS code realised by RSE,
but the comparison the ROADMAP calls for — cheap-decode alternatives such as
plain XOR parity, rectangular row/column codes, or locally-repairable codes —
needs every consumer of ``RSECodec`` to work against an *interface* instead.
This module defines that interface plus the pieces every implementation
shares:

* :class:`ErasureCode` — the abstract base: geometry (``k``, ``h``, ``n``),
  capability flags (:attr:`~ErasureCode.is_mds`,
  :attr:`~ErasureCode.systematic`, :meth:`~ErasureCode.max_n`), the byte- and
  symbol-level encode/decode API, decodability predicates, and per-op cost
  accounting on :class:`CodecStats`.
* :class:`CodecStats` — cumulative operation counters (moved here from
  ``repro.fec.rse``; re-exported there for compatibility).
* :exc:`DecodeError` — a block cannot be decoded from the packets at hand.
* :exc:`CodeGeometryError` — an impossible ``(k, h)`` geometry, rejected
  uniformly by every codec *before* construction does any work.

Honest recoverability
---------------------
Non-MDS codes (rectangular, LRC) cannot recover every ``>= k``-packet subset
an RS code would.  The contract is *honesty*, not MDS-ness: a codec must
report exactly the patterns it can decode via
:meth:`~ErasureCode.decodable_from` / :meth:`~ErasureCode.decodable_mask`,
must decode every pattern it claims, and must raise :exc:`DecodeError` on
every pattern it does not — never return wrong data silently.  The
conformance suite (``tests/property/test_prop_erasure_conformance.py``)
enforces this for every registered codec.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Iterable

import numpy as np

from repro.galois.field import GF256, GaloisField

__all__ = [
    "ErasureCode",
    "CodecStats",
    "DecodeError",
    "CodeGeometryError",
    "max_block_length",
]

#: Bound on the per-codec memo of non-MDS decodability verdicts.  Patterns
#: recur heavily in MC runs (same few erasure shapes across 10^6 receivers),
#: so a small memo captures nearly all lookups.
_DECODABLE_MEMO_LIMIT = 1 << 16


class DecodeError(ValueError):
    """Raised when a block cannot be decoded from the received packets.

    This covers both "fewer than ``k`` packets" and, for non-MDS codes,
    "``>= k`` packets but an unrecoverable erasure pattern".
    """


class CodeGeometryError(ValueError):
    """Raised for an impossible ``(k, h)`` geometry.

    Every codec raises this (and only this) for geometry problems —
    non-positive ``k``, negative ``h``, a block length the field cannot
    address, or a shape the particular code cannot realise.  It subclasses
    :exc:`ValueError` so pre-existing ``except ValueError`` callers keep
    working.
    """


def max_block_length(field: GaloisField) -> int:
    """Longest FEC block ``n`` supported by ``field`` (``2^m - 1``)."""
    return field.order - 1


@dataclass
class CodecStats:
    """Cumulative operation counters, used by the Figure-1 benchmark.

    Attributes
    ----------
    packets_encoded:
        Number of *data* packets pushed through :meth:`ErasureCode.encode`.
    parities_produced:
        Number of parity packets produced.
    packets_decoded:
        Number of *lost data* packets reconstructed by
        :meth:`ErasureCode.decode` (receiving all data costs nothing for a
        systematic code).
    symbols_multiplied:
        Constant-times-packet GF scale-accumulate operations actually
        performed, i.e. one per *nonzero* coefficient met while encoding or
        reconstructing (zero coefficients do no work and are not charged;
        XOR accumulations count as coefficient-1 operations).
    decode_cache_hits:
        Decodes that reused a cached decode plan / inverted submatrix for
        their erasure pattern.
    decode_cache_misses:
        Decodes that had to derive the plan (Gaussian elimination for RSE).
    """

    packets_encoded: int = 0
    parities_produced: int = 0
    packets_decoded: int = 0
    symbols_multiplied: int = 0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0

    def reset(self) -> None:
        self.packets_encoded = 0
        self.parities_produced = 0
        self.packets_decoded = 0
        self.symbols_multiplied = 0
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0


class ErasureCode(abc.ABC):
    """Abstract base for one ``(k, k + h)`` erasure code instance.

    Class attributes (the *capability flags* of the registry):

    * :attr:`name` — registry key (``"rse"``, ``"xor"``, ...).
    * :attr:`is_mds` — True iff **any** ``k`` of the ``n`` packets decode.
      Non-MDS codes must override :meth:`_pattern_decodable`.
    * :attr:`systematic` — True iff block indices ``0..k-1`` carry the data
      packets verbatim.  Non-systematic codes must override
      :meth:`encode_block`.

    Subclasses implement :meth:`encode_symbols` and :meth:`decode_symbols`
    (and :meth:`_pattern_decodable` when not MDS); the base class provides
    geometry validation, byte/symbol conversion, the byte-level
    encode/decode API, batching, and decodability masks on top.

    The codec is stateless apart from :attr:`stats` and internal caches; one
    instance can safely encode and decode any number of blocks.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = "abstract"
    #: True iff any k of the n packets reconstruct the data.
    is_mds: ClassVar[bool] = False
    #: True iff block indices 0..k-1 are the data packets verbatim.
    systematic: ClassVar[bool] = True

    def __init__(self, k: int, h: int, field: GaloisField = GF256, **geometry):
        type(self).validate_geometry(k, h, field=field, **geometry)
        self.k = k
        self.h = h
        self.n = k + h
        self.field = field
        self._symbol_bytes = field.dtype.itemsize
        self._decodable_memo: dict[tuple[int, ...], bool] = {}
        self.stats = CodecStats()

    # ------------------------------------------------------------------
    # geometry contract
    # ------------------------------------------------------------------
    @classmethod
    def max_n(cls, field: GaloisField = GF256) -> int:
        """Longest block length ``n`` this code supports over ``field``."""
        return max_block_length(field)

    @classmethod
    def validate_geometry(
        cls, k: int, h: int, *, field: GaloisField = GF256, **_: object
    ) -> None:
        """Reject impossible ``(k, h)`` with :exc:`CodeGeometryError`.

        Called before any construction work, and by the registry before
        instantiating a codec, so every implementation rejects bad shapes
        uniformly.  Subclasses extend this (``super().validate_geometry``)
        with code-specific constraints; extra keyword arguments mirror the
        codec constructor's optional parameters.
        """
        if k < 1:
            raise CodeGeometryError(
                f"transmission group size k must be >= 1, got {k}"
            )
        if h < 0:
            raise CodeGeometryError(f"parity count h must be >= 0, got {h}")
        n = k + h
        limit = cls.max_n(field=field)
        if n > limit:
            raise CodeGeometryError(
                f"block length n={n} exceeds limit {limit} "
                f"for GF(2^{field.m}); use a wider field"
            )

    @classmethod
    def nearest_h(cls, k: int, h: int) -> int:
        """Closest supported parity count to the requested ``h``.

        Codes with constrained geometry (XOR's single parity, the
        rectangular grid) override this so sweep drivers can clamp a
        requested ``(k, h)`` onto the code's lattice.  The default accepts
        ``h`` unchanged.
        """
        return h

    # ------------------------------------------------------------------
    # packet <-> symbol conversion
    # ------------------------------------------------------------------
    # Byte payloads map onto field symbols as in Section 2.2: m = 8 uses
    # one byte per symbol, m = 16 two bytes, m = 4 packs two symbols per
    # byte (nibbles).  Other widths support the symbol-level API only.

    def _to_symbols(
        self, packet: bytes | bytearray | memoryview | np.ndarray
    ) -> np.ndarray:
        if isinstance(packet, np.ndarray):
            arr = np.ascontiguousarray(packet, dtype=self.field.dtype)
            # The range scan only matters when the dtype has headroom above
            # the field order (e.g. uint8 symbols for GF(2^4)); for full-range
            # fields like GF(2^8)-over-uint8 every representable value is a
            # valid symbol and scanning would touch every byte of every
            # packet on the encode hot path for nothing.  Aligned same-dtype
            # inputs pass through ascontiguousarray without a copy, keeping
            # this branch zero-copy end to end.
            if self.field.order <= np.iinfo(self.field.dtype).max:
                if arr.size and int(arr.max()) >= self.field.order:
                    raise ValueError(
                        f"symbol value exceeds GF(2^{self.field.m}) range"
                    )
            return arr
        raw = bytes(packet)
        if self.field.m == 4:
            octets = np.frombuffer(raw, dtype=np.uint8)
            symbols = np.empty(2 * octets.size, dtype=np.uint8)
            symbols[0::2] = octets >> 4
            symbols[1::2] = octets & 0x0F
            return symbols
        if self.field.m not in (8, 16):
            raise ValueError(
                f"byte payloads are only supported for m in (4, 8, 16); "
                f"use encode_symbols/decode_symbols for GF(2^{self.field.m})"
            )
        if len(raw) % self._symbol_bytes:
            raise ValueError(
                f"packet length {len(raw)} is not a multiple of the "
                f"{self._symbol_bytes}-byte symbol size of GF(2^{self.field.m})"
            )
        return np.frombuffer(raw, dtype=self.field.dtype)

    def _to_bytes(self, symbols: np.ndarray) -> bytes:
        if self.field.m == 4:
            symbols = symbols.astype(np.uint8, copy=False)
            octets = (symbols[0::2] << 4) | symbols[1::2]
            return octets.tobytes()
        return symbols.astype(self.field.dtype, copy=False).tobytes()

    def _stack(self, data_packets: list[bytes]) -> np.ndarray:
        if len(data_packets) != self.k:
            raise ValueError(
                f"expected exactly k={self.k} data packets, got {len(data_packets)}"
            )
        rows = [self._to_symbols(p) for p in data_packets]
        lengths = {row.shape[0] for row in rows}
        if len(lengths) != 1:
            raise ValueError(
                f"all packets in a transmission group must have equal length; "
                f"saw symbol counts {sorted(lengths)}"
            )
        return np.vstack(rows)

    def _check_symbols(self, data: np.ndarray, rows_axis: int) -> np.ndarray:
        """Validate a symbol array's row count and value range."""
        if data.shape[rows_axis] != self.k:
            raise ValueError(
                f"expected k={self.k} rows, got {data.shape[rows_axis]}"
            )
        # dtypes wider than the field (e.g. uint8 for GF(2^4)) can smuggle
        # out-of-range symbols into the lookup tables; reject them here
        if self.field.order <= np.iinfo(self.field.dtype).max:
            data = np.ascontiguousarray(data, dtype=self.field.dtype)
            if data.size and int(data.max()) >= self.field.order:
                raise ValueError(
                    f"symbol value exceeds GF(2^{self.field.m}) range"
                )
        return np.asarray(data, dtype=self.field.dtype)

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(k, S)`` symbol matrix; returns the ``(h, S)`` parities.

        For non-systematic codes the ``h`` returned rows are the redundancy
        beyond the first ``k`` coded rows; use :meth:`encode_block` to obtain
        the full on-the-wire block.
        """

    def block_symbols(self, data: np.ndarray) -> np.ndarray:
        """Full ``(n, S)`` block as transmitted: coded rows then parities."""
        data = self._check_symbols(np.asarray(data), rows_axis=0)
        return np.concatenate(
            [self.coded_symbols(data), self.encode_symbols(data)]
        )

    def coded_symbols(self, data: np.ndarray) -> np.ndarray:
        """The first ``k`` on-the-wire rows for a ``(k, S)`` data matrix.

        Identity for systematic codes; non-systematic codes override to
        apply their transform.  No stats are charged here — systematic
        passthrough does no field work.
        """
        if not self.systematic:
            raise NotImplementedError(
                f"{type(self).__name__} is non-systematic and must override "
                "coded_symbols()"
            )
        return self._check_symbols(np.asarray(data), rows_axis=0)

    def encode(self, data_packets: list[bytes]) -> list[bytes]:
        """Produce the ``h`` parity packets for ``k`` equal-length packets.

        The returned parities, appended to the on-the-wire data packets
        (see :meth:`encode_block`), form the FEC block
        ``d_1 .. d_k, p_1 .. p_h`` of Section 2.1.
        """
        symbols = self.encode_symbols(self._stack(data_packets))
        return [self._to_bytes(row) for row in symbols]

    def encode_block(self, data_packets: list[bytes]) -> list[bytes]:
        """All ``n`` on-the-wire packets for ``k`` data packets.

        For systematic codes this is the data verbatim followed by the
        parities; non-systematic codes transform the data prefix too.
        """
        stacked = self._stack(data_packets)
        coded = self.coded_symbols(stacked)
        parities = self.encode_symbols(stacked)
        return [self._to_bytes(row) for row in coded] + [
            self._to_bytes(row) for row in parities
        ]

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(B, k, S)`` batch of blocks; returns ``(B, h, S)``.

        The base implementation loops :meth:`encode_symbols` per block
        (stats are charged per block by that call); codecs with a batched
        kernel override this.
        """
        if data.ndim != 3:
            raise ValueError(
                f"expected a (B, k, S) symbol batch, got shape {data.shape}"
            )
        blocks, _, symbols = data.shape
        if blocks == 0:
            return np.empty((0, self.h, symbols), dtype=self.field.dtype)
        return np.stack([self.encode_symbols(block) for block in data])

    def encode_many(self, groups: list[list[bytes]]) -> list[list[bytes]]:
        """Byte-level batch encode: parities for many equal-shape groups."""
        if not groups:
            return []
        stacked = np.stack([self._stack(group) for group in groups])
        parities = self.encode_blocks(stacked)
        return [
            [self._to_bytes(row) for row in block] for block in parities
        ]

    # ------------------------------------------------------------------
    # decodability
    # ------------------------------------------------------------------
    def _pattern_decodable(self, pattern: tuple[int, ...]) -> bool:
        """Can this sorted ``>= k``-element index pattern be decoded?

        Only consulted for non-MDS codes (MDS codes decode any ``k``-subset
        by definition); such codes must override this with their structural
        check.  The result is memoized per instance by
        :meth:`decodable_from`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is non-MDS and must override "
            "_pattern_decodable()"
        )

    def decodable_from(self, indices: Iterable[int]) -> bool:
        """True iff a receiver holding exactly ``indices`` can decode.

        ``indices`` are block indices (``0..n-1``); duplicates are ignored.
        This is the *claim* the conformance suite holds every codec to:
        :meth:`decode` must succeed on every pattern for which this returns
        True and raise :exc:`DecodeError` on every pattern for which it
        returns False.
        """
        present = frozenset(int(i) for i in indices)
        if present and (min(present) < 0 or max(present) >= self.n):
            raise ValueError(
                f"packet index out of range for block length n={self.n}: "
                f"{sorted(present)}"
            )
        if len(present) < self.k:
            return False
        if self.is_mds:
            return True
        pattern = tuple(sorted(present))
        verdict = self._decodable_memo.get(pattern)
        if verdict is None:
            verdict = self._pattern_decodable(pattern)
            if len(self._decodable_memo) < _DECODABLE_MEMO_LIMIT:
                self._decodable_memo[pattern] = verdict
        return verdict

    def decodable_mask(self, received: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decodable_from` over a reception matrix.

        ``received`` is a boolean ``(R, n')`` (or ``(n',)``) matrix of
        per-receiver reception indicators over the first ``n' <= n`` packets
        of a block; returns a boolean ``(R,)`` decodability vector.  The MC
        simulators use this as the codec-aware replacement for the ideal-MDS
        ``received.sum(axis=1) >= k`` test.
        """
        received = np.atleast_2d(np.asarray(received, dtype=bool))
        if received.shape[1] > self.n:
            raise ValueError(
                f"pattern covers {received.shape[1]} packets but the codec "
                f"block is only n={self.n}"
            )
        candidates = received.sum(axis=1) >= self.k
        if self.is_mds or not candidates.any():
            return candidates
        out = np.zeros(received.shape[0], dtype=bool)
        rows = np.unique(received[candidates], axis=0)
        verdicts = np.array(
            [self.decodable_from(np.flatnonzero(row)) for row in rows]
        )
        # map each candidate row back to its unique pattern's verdict
        candidate_rows = received[candidates]
        for row, verdict in zip(rows, verdicts):
            if verdict:
                out[np.flatnonzero(candidates)[
                    (candidate_rows == row).all(axis=1)
                ]] = True
        return out

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Symbol-level decode; returns ``{data_index: (S,) symbols}``.

        ``rows`` maps block indices to equal-length symbol vectors.  Must
        raise :exc:`DecodeError` when the pattern is unrecoverable.
        """

    def decode(self, received: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the ``k`` data packets from the received packets.

        Parameters
        ----------
        received:
            Mapping from block index (``0..n-1``; indices ``>= k`` are
            parities) to packet payload.  At least ``k`` entries are needed;
            non-MDS codes may need a structurally recoverable pattern.

        Returns
        -------
        The ``k`` data packets, in order.

        Raises
        ------
        DecodeError
            If fewer than ``k`` distinct packets were supplied, or the
            erasure pattern is unrecoverable for this code.
        """
        if not received:
            raise DecodeError("no packets received")
        indices = sorted(received)
        if indices[0] < 0 or indices[-1] >= self.n:
            raise ValueError(
                f"packet index out of range for block length n={self.n}: {indices}"
            )
        if len(indices) < self.k:
            raise DecodeError(
                f"need at least k={self.k} packets to decode, got {len(indices)}"
            )
        rows = {i: self._to_symbols(p) for i, p in received.items()}
        lengths = {row.shape[0] for row in rows.values()}
        if len(lengths) != 1:
            raise ValueError("received packets have inconsistent lengths")

        decoded = self.decode_symbols(rows)
        return [self._to_bytes(decoded[i]) for i in range(self.k)]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(k={self.k}, h={self.h}, "
            f"GF(2^{self.field.m}))"
        )
