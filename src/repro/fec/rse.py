"""Systematic Reed-Solomon Erasure (RSE) codec.

This is the coder the paper builds on (Section 2): McAuley's burst-erasure
Reed-Solomon code, in the software formulation of Rizzo.  A *transmission
group* (TG) of ``k`` equal-length data packets is extended with ``h`` parity
packets; a receiver that obtains **any** ``k`` of the ``n = k + h`` packets of
the FEC block reconstructs all ``k`` data packets.

Design notes
------------
* The code is *systematic*: the first ``k`` packets of a block are the data
  packets verbatim, so a receiver that loses nothing does no decoding at all,
  and the decode cost is proportional to the number of lost data packets —
  both properties the paper calls out in Section 2.1.
* Packets longer than one field symbol are handled exactly as Section 2.2
  describes: a ``P``-byte packet is treated as ``S = P / (m/8)`` parallel
  symbols and ``S`` independent RSE codes run in lockstep.  With numpy this
  is simply vectorising every field operation over the packet axis.
* The default field is GF(2^8) (``m = 8``), matching Rizzo's software coder;
  GF(2^16) is available when blocks longer than 255 packets are required.

Example
-------
>>> codec = RSECodec(k=4, h=2)
>>> data = [bytes([i] * 16) for i in range(4)]
>>> parities = codec.encode(data)
>>> received = {0: data[0], 2: data[2], 4: parities[0], 5: parities[1]}
>>> codec.decode(received) == data
True
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.galois.field import GF256, GaloisField
from repro.galois.matrix import invert, systematic_generator

__all__ = ["RSECodec", "DecodeError", "CodecStats", "max_block_length"]


class DecodeError(ValueError):
    """Raised when a block cannot be decoded (fewer than ``k`` packets)."""


def max_block_length(field: GaloisField) -> int:
    """Longest FEC block ``n`` supported by ``field`` (``2^m - 1``)."""
    return field.order - 1


@dataclass
class CodecStats:
    """Cumulative operation counters, used by the Figure-1 benchmark.

    Attributes
    ----------
    packets_encoded:
        Number of *data* packets pushed through :meth:`RSECodec.encode`.
    parities_produced:
        Number of parity packets produced.
    packets_decoded:
        Number of *lost data* packets reconstructed by
        :meth:`RSECodec.decode` (receiving all data costs nothing).
    symbols_multiplied:
        Total constant-times-packet GF multiplications performed.
    """

    packets_encoded: int = 0
    parities_produced: int = 0
    packets_decoded: int = 0
    symbols_multiplied: int = 0

    def reset(self) -> None:
        self.packets_encoded = 0
        self.parities_produced = 0
        self.packets_decoded = 0
        self.symbols_multiplied = 0


@lru_cache(maxsize=128)
def _cached_generator(field: GaloisField, k: int, n: int) -> np.ndarray:
    generator = systematic_generator(field, k, n)
    generator.setflags(write=False)
    return generator


class RSECodec:
    """Encoder/decoder for one ``(k, k + h)`` systematic RSE code.

    Parameters
    ----------
    k:
        Transmission-group size (number of data packets per block).
    h:
        Number of parity packets per block.
    field:
        Galois field to operate in; defaults to GF(2^8).

    The codec is stateless apart from :attr:`stats`; one instance can safely
    encode and decode any number of blocks.
    """

    def __init__(self, k: int, h: int, field: GaloisField = GF256):
        if k < 1:
            raise ValueError(f"transmission group size k must be >= 1, got {k}")
        if h < 0:
            raise ValueError(f"parity count h must be >= 0, got {h}")
        n = k + h
        if n > max_block_length(field):
            raise ValueError(
                f"block length n={n} exceeds limit {max_block_length(field)} "
                f"for GF(2^{field.m}); use a wider field"
            )
        self.k = k
        self.h = h
        self.n = n
        self.field = field
        self._symbol_bytes = field.dtype.itemsize
        self.generator = _cached_generator(field, k, n)
        self.stats = CodecStats()

    # ------------------------------------------------------------------
    # packet <-> symbol conversion
    # ------------------------------------------------------------------
    # Byte payloads map onto field symbols as in Section 2.2: m = 8 uses
    # one byte per symbol, m = 16 two bytes, m = 4 packs two symbols per
    # byte (nibbles).  Other widths support the symbol-level API only.

    def _to_symbols(self, packet: bytes | bytearray | memoryview | np.ndarray) -> np.ndarray:
        if isinstance(packet, np.ndarray):
            arr = np.ascontiguousarray(packet, dtype=self.field.dtype)
            if arr.size and int(arr.max()) >= self.field.order:
                raise ValueError(
                    f"symbol value exceeds GF(2^{self.field.m}) range"
                )
            return arr
        raw = bytes(packet)
        if self.field.m == 4:
            octets = np.frombuffer(raw, dtype=np.uint8)
            symbols = np.empty(2 * octets.size, dtype=np.uint8)
            symbols[0::2] = octets >> 4
            symbols[1::2] = octets & 0x0F
            return symbols
        if self.field.m not in (8, 16):
            raise ValueError(
                f"byte payloads are only supported for m in (4, 8, 16); "
                f"use encode_symbols/decode_symbols for GF(2^{self.field.m})"
            )
        if len(raw) % self._symbol_bytes:
            raise ValueError(
                f"packet length {len(raw)} is not a multiple of the "
                f"{self._symbol_bytes}-byte symbol size of GF(2^{self.field.m})"
            )
        return np.frombuffer(raw, dtype=self.field.dtype)

    def _to_bytes(self, symbols: np.ndarray) -> bytes:
        if self.field.m == 4:
            symbols = symbols.astype(np.uint8, copy=False)
            octets = (symbols[0::2] << 4) | symbols[1::2]
            return octets.tobytes()
        return symbols.astype(self.field.dtype, copy=False).tobytes()

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(self, data_packets: list[bytes]) -> list[bytes]:
        """Produce the ``h`` parity packets for ``k`` equal-length packets.

        The returned parities, appended to the data packets, form the FEC
        block ``d_1 .. d_k, p_1 .. p_h`` of Section 2.1.
        """
        symbols = self.encode_symbols(self._stack(data_packets))
        return [self._to_bytes(row) for row in symbols]

    def _stack(self, data_packets: list[bytes]) -> np.ndarray:
        if len(data_packets) != self.k:
            raise ValueError(
                f"expected exactly k={self.k} data packets, got {len(data_packets)}"
            )
        rows = [self._to_symbols(p) for p in data_packets]
        lengths = {row.shape[0] for row in rows}
        if len(lengths) != 1:
            raise ValueError(
                f"all packets in a transmission group must have equal length; "
                f"saw symbol counts {sorted(lengths)}"
            )
        return np.vstack(rows)

    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(k, S)`` symbol matrix; returns the ``(h, S)`` parities."""
        if data.shape[0] != self.k:
            raise ValueError(f"expected k={self.k} rows, got {data.shape[0]}")
        # dtypes wider than the field (e.g. uint8 for GF(2^4)) can smuggle
        # out-of-range symbols into the lookup tables; reject them here
        if self.field.order <= np.iinfo(self.field.dtype).max:
            data = np.ascontiguousarray(data, dtype=self.field.dtype)
            if data.size and int(data.max()) >= self.field.order:
                raise ValueError(
                    f"symbol value exceeds GF(2^{self.field.m}) range"
                )
        parities = np.zeros((self.h, data.shape[1]), dtype=self.field.dtype)
        parity_rows = self.generator[self.k:]
        for j in range(self.h):
            acc = parities[j]
            for i in range(self.k):
                self.field.scale_accumulate(acc, int(parity_rows[j, i]), data[i])
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += self.h * self.k
        return parities

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def decode(self, received: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the ``k`` data packets from any ``k`` received packets.

        Parameters
        ----------
        received:
            Mapping from block index (``0..n-1``; indices ``>= k`` are
            parities) to packet payload.  At least ``k`` entries are needed.

        Returns
        -------
        The ``k`` data packets, in order.

        Raises
        ------
        DecodeError
            If fewer than ``k`` distinct packets were supplied.
        """
        if not received:
            raise DecodeError("no packets received")
        indices = sorted(received)
        if indices[0] < 0 or indices[-1] >= self.n:
            raise ValueError(
                f"packet index out of range for block length n={self.n}: {indices}"
            )
        if len(indices) < self.k:
            raise DecodeError(
                f"need at least k={self.k} packets to decode, got {len(indices)}"
            )
        rows = {i: self._to_symbols(p) for i, p in received.items()}
        lengths = {row.shape[0] for row in rows.values()}
        if len(lengths) != 1:
            raise ValueError("received packets have inconsistent lengths")

        decoded = self.decode_symbols(rows)
        return [self._to_bytes(decoded[i]) for i in range(self.k)]

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Symbol-level decode; returns ``{data_index: (S,) symbols}``.

        Only missing data packets are actually reconstructed (the Rizzo
        optimisation — cost proportional to the number of losses); received
        data rows are passed through.
        """
        have_data = [i for i in rows if i < self.k]
        missing = [i for i in range(self.k) if i not in rows]
        out: dict[int, np.ndarray] = {i: rows[i] for i in have_data}
        if not missing:
            return out

        # Choose k equations: all received data rows plus enough parities.
        parities = sorted(i for i in rows if i >= self.k)
        needed = self.k - len(have_data)
        if len(parities) < needed:
            raise DecodeError(
                f"unrecoverable block: have {len(have_data)} data + "
                f"{len(parities)} parity packets, need {self.k} total"
            )
        use = sorted(have_data) + parities[:needed]
        submatrix = self.generator[use]  # (k, k)
        inverse = invert(self.field, submatrix)
        stacked = np.vstack([rows[i] for i in use])  # (k, S)

        for data_index in missing:
            coefficients = inverse[data_index]
            acc = np.zeros(stacked.shape[1], dtype=self.field.dtype)
            for c, row in zip(coefficients, stacked):
                self.field.scale_accumulate(acc, int(c), row)
            out[data_index] = acc
            self.stats.symbols_multiplied += self.k
        self.stats.packets_decoded += len(missing)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RSECodec(k={self.k}, h={self.h}, GF(2^{self.field.m}))"
