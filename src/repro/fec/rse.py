"""Systematic Reed-Solomon Erasure (RSE) codec.

This is the coder the paper builds on (Section 2): McAuley's burst-erasure
Reed-Solomon code, in the software formulation of Rizzo.  A *transmission
group* (TG) of ``k`` equal-length data packets is extended with ``h`` parity
packets; a receiver that obtains **any** ``k`` of the ``n = k + h`` packets of
the FEC block reconstructs all ``k`` data packets.

:class:`RSECodec` is the reference (and default) implementation of the
:class:`~repro.fec.code.ErasureCode` contract — the only MDS code in the
registry with ``h > 1`` support; the cheap-decode alternatives live in
``repro.fec.{xor,rect,lrc}``.  ``DecodeError``, ``CodecStats`` and
``max_block_length`` moved to ``repro.fec.code`` and are re-exported here
for compatibility.

Design notes
------------
* The code is *systematic*: the first ``k`` packets of a block are the data
  packets verbatim, so a receiver that loses nothing does no decoding at all,
  and the decode cost is proportional to the number of lost data packets —
  both properties the paper calls out in Section 2.1.
* Packets longer than one field symbol are handled exactly as Section 2.2
  describes: a ``P``-byte packet is treated as ``S = P / (m/8)`` parallel
  symbols and ``S`` independent RSE codes run in lockstep.  With numpy this
  is simply vectorising every field operation over the packet axis.
* The default field is GF(2^8) (``m = 8``), matching Rizzo's software coder;
  GF(2^16) is available when blocks longer than 255 packets are required.

Example
-------
>>> codec = RSECodec(k=4, h=2)
>>> data = [bytes([i] * 16) for i in range(4)]
>>> parities = codec.encode(data)
>>> received = {0: data[0], 2: data[2], 4: parities[0], 5: parities[1]}
>>> codec.decode(received) == data
True
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from threading import Lock

import numpy as np

from repro import obs
from repro.fec.code import (
    CodecStats,
    CodeGeometryError,
    DecodeError,
    ErasureCode,
    max_block_length,
)
from repro.fec.registry import register_codec
from repro.galois.field import GF256, GaloisField
from repro.galois.matrix import invert, systematic_generator

__all__ = [
    "RSECodec",
    "DecodeError",
    "CodecStats",
    "CodeGeometryError",
    "InverseCache",
    "default_inverse_cache",
    "max_block_length",
]


@lru_cache(maxsize=128)
def _cached_generator(field: GaloisField, k: int, n: int) -> np.ndarray:
    generator = systematic_generator(field, k, n)
    generator.setflags(write=False)
    return generator


class InverseCache:
    """Bounded LRU of inverted ``(k, k)`` decode submatrices.

    Keys are ``(field, k, n, use)`` where ``use`` is the sorted tuple of
    block indices whose generator rows form the submatrix — i.e. the
    erasure pattern.  Across 10^6 simulated receivers and repeated MC
    trials the same few patterns recur constantly, so a hit replaces an
    O(k^3) Gaussian elimination with a dictionary lookup.  Cached arrays
    are frozen read-only; the field in the key keeps codecs over different
    fields (or different ``(k, n)``) from ever colliding.

    The key deliberately does *not* include the GF-kernel backend: every
    registered backend is conformance-gated to bit-identity with the
    ``numpy`` oracle (DESIGN.md section 16), so an inverse computed under
    one backend is valid under all of them and cache hits survive backend
    switches mid-run.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.evictions = 0
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            inverse = self._entries.get(key)
            if inverse is not None:
                self._entries.move_to_end(key)
            return inverse

    def put(self, key: tuple, inverse: np.ndarray) -> np.ndarray:
        """Store ``inverse`` (frozen read-only); returns the stored array."""
        inverse.setflags(write=False)
        with self._lock:
            self._entries[key] = inverse
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return inverse

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evictions = 0


#: Process-wide cache shared by codecs that don't bring their own; the key
#: includes the field and code geometry, so sharing is always safe.
_DEFAULT_INVERSE_CACHE = InverseCache(maxsize=512)


def default_inverse_cache() -> InverseCache:
    """The shared inverse cache used by codecs constructed without one."""
    return _DEFAULT_INVERSE_CACHE


@register_codec
class RSECodec(ErasureCode):
    """Encoder/decoder for one ``(k, k + h)`` systematic RSE code.

    Parameters
    ----------
    k:
        Transmission-group size (number of data packets per block).
    h:
        Number of parity packets per block.
    field:
        Galois field to operate in; defaults to GF(2^8).
    inverse_cache:
        Bounded LRU for inverted decode submatrices; defaults to the
        process-wide shared cache (safe: keys carry field and geometry).
    gf_backend:
        Optional GF-kernel backend name (see :mod:`repro.galois.backends`)
        pinning this codec's hot matrix products to one kernel.  ``None``
        (the default) resolves the process-wide selection
        (:func:`repro.galois.active_backend`) at every call, so
        ``set_backend``/``use_backend``/``REPRO_GF_BACKEND`` take effect
        without rebuilding codecs.

    The codec is stateless apart from :attr:`stats`; one instance can safely
    encode and decode any number of blocks.
    """

    name = "rse"
    is_mds = True
    systematic = True

    def __init__(
        self,
        k: int,
        h: int,
        field: GaloisField = GF256,
        inverse_cache: InverseCache | None = None,
        gf_backend: str | None = None,
    ):
        super().__init__(k, h, field=field)
        self.gf_backend = gf_backend
        self.generator = _cached_generator(field, k, self.n)
        self.inverse_cache = (
            inverse_cache if inverse_cache is not None else _DEFAULT_INVERSE_CACHE
        )
        # scale-accumulate operations per encoded block: one per nonzero
        # parity coefficient (systematic generators are dense, but count
        # honestly rather than assuming h * k)
        self._parity_ops = int(np.count_nonzero(self.generator[self.k:]))

    def _observe_encode(self, n_blocks: int) -> None:
        """Registry-side mirror of one encode call (telemetry enabled)."""
        labels = {"k": self.k, "h": self.h}
        obs.counter("rse.blocks_encoded", **labels).inc(n_blocks)
        obs.counter("rse.parities_produced", **labels).inc(n_blocks * self.h)
        obs.counter("rse.symbols_multiplied", **labels).inc(
            n_blocks * self._parity_ops
        )

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(k, S)`` symbol matrix; returns the ``(h, S)`` parities.

        The parity block is one batched GF matrix product
        ``G[k:] @ data`` — a table gather plus XOR reduction instead of the
        ``h * k`` Python-level loop of :meth:`encode_symbols_scalar`.
        """
        data = self._check_symbols(data, rows_axis=0)
        with obs.span("rse.encode", k=self.k, h=self.h):
            parities = self.field.matmul(
                self.generator[self.k:], data, backend=self.gf_backend
            )
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += self._parity_ops
        if obs.is_enabled():
            self._observe_encode(1)
        return parities

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(B, k, S)`` batch of blocks; returns ``(B, h, S)``.

        All ``B`` transmission groups share the generator matrix, so the
        whole batch is a single broadcast matrix product — the sender-side
        pre-encoding fast path.
        """
        if data.ndim != 3:
            raise ValueError(
                f"expected a (B, k, S) symbol batch, got shape {data.shape}"
            )
        data = self._check_symbols(data, rows_axis=1)
        with obs.span("rse.encode", k=self.k, h=self.h, blocks=data.shape[0]):
            parities = self.field.matmul(
                self.generator[self.k:], data, backend=self.gf_backend
            )
        n_blocks = data.shape[0]
        self.stats.packets_encoded += n_blocks * self.k
        self.stats.parities_produced += n_blocks * self.h
        self.stats.symbols_multiplied += n_blocks * self._parity_ops
        if obs.is_enabled():
            self._observe_encode(n_blocks)
        return parities

    def encode_symbols_scalar(self, data: np.ndarray) -> np.ndarray:
        """Reference scalar encode: the row-by-row loop the batched kernel
        replaced.  Kept for differential tests and benchmarks; bit-identical
        to :meth:`encode_symbols` (including the stats accounting)."""
        data = self._check_symbols(data, rows_axis=0)
        parities = np.zeros((self.h, data.shape[1]), dtype=self.field.dtype)
        parity_rows = self.generator[self.k:]
        operations = 0
        for j in range(self.h):
            acc = parities[j]
            for i in range(self.k):
                coefficient = int(parity_rows[j, i])
                if coefficient:
                    operations += 1
                self.field.scale_accumulate(acc, coefficient, data[i])
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += operations
        return parities

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def _decode_plan(
        self, rows: dict[int, np.ndarray]
    ) -> tuple[list[int], list[int], list[int]]:
        """Pick the k equations for a decode: (have_data, missing, use)."""
        have_data = [i for i in rows if i < self.k]
        missing = [i for i in range(self.k) if i not in rows]
        parities = sorted(i for i in rows if i >= self.k)
        needed = self.k - len(have_data)
        if len(parities) < needed:
            raise DecodeError(
                f"unrecoverable block: have {len(have_data)} data + "
                f"{len(parities)} parity packets, need {self.k} total"
            )
        use = sorted(have_data) + parities[:needed]
        return have_data, missing, use

    def _inverted_submatrix(self, use: list[int]) -> np.ndarray:
        """Inverse of ``generator[use]``, via the erasure-pattern cache."""
        key = (self.field, self.k, self.n, tuple(use))
        inverse = self.inverse_cache.get(key)
        if inverse is not None:
            self.stats.decode_cache_hits += 1
            if obs.is_enabled():
                obs.counter("rse.decode_cache", outcome="hit").inc()
            return inverse
        self.stats.decode_cache_misses += 1
        if obs.is_enabled():
            obs.counter("rse.decode_cache", outcome="miss").inc()
        return self.inverse_cache.put(key, invert(self.field, self.generator[use]))

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Symbol-level decode; returns ``{data_index: (S,) symbols}``.

        Only missing data packets are actually reconstructed (the Rizzo
        optimisation — cost proportional to the number of losses); received
        data rows are passed through.  The inverted submatrix for the
        erasure pattern comes from a bounded LRU (:class:`InverseCache`),
        so repeated patterns skip Gaussian elimination, and all missing
        packets are rebuilt in one batched matrix product.
        """
        have_data, missing, use = self._decode_plan(rows)
        out: dict[int, np.ndarray] = {i: rows[i] for i in have_data}
        if not missing:
            # the no-loss fast path stays untimed: nothing happens here
            return out

        with obs.span(
            "rse.decode", k=self.k, h=self.h, missing=len(missing)
        ):
            inverse = self._inverted_submatrix(use)
            stacked = np.vstack([rows[i] for i in use])  # (k, S)
            coefficients = inverse[missing]  # (M, k)
            reconstructed = self.field.matmul(
                coefficients, stacked, backend=self.gf_backend
            )
        for row, data_index in zip(reconstructed, missing):
            out[data_index] = row
        self.stats.symbols_multiplied += int(np.count_nonzero(coefficients))
        self.stats.packets_decoded += len(missing)
        if obs.is_enabled():
            obs.counter(
                "rse.packets_reconstructed", k=self.k, h=self.h
            ).inc(len(missing))
        return out

    def decode_symbols_scalar(
        self, rows: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Reference scalar decode: per-packet loop, no inverse cache.

        Always runs Gaussian elimination; bit-identical output (and stats
        accounting, cache counters aside) to :meth:`decode_symbols`."""
        have_data, missing, use = self._decode_plan(rows)
        out: dict[int, np.ndarray] = {i: rows[i] for i in have_data}
        if not missing:
            return out

        inverse = invert(self.field, self.generator[use])
        stacked = np.vstack([rows[i] for i in use])  # (k, S)
        for data_index in missing:
            coefficients = inverse[data_index]
            acc = np.zeros(stacked.shape[1], dtype=self.field.dtype)
            for c, row in zip(coefficients, stacked):
                coefficient = int(c)
                if coefficient:
                    self.stats.symbols_multiplied += 1
                self.field.scale_accumulate(acc, coefficient, row)
            out[data_index] = acc
        self.stats.packets_decoded += len(missing)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RSECodec(k={self.k}, h={self.h}, GF(2^{self.field.m}))"
