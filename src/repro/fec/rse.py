"""Systematic Reed-Solomon Erasure (RSE) codec.

This is the coder the paper builds on (Section 2): McAuley's burst-erasure
Reed-Solomon code, in the software formulation of Rizzo.  A *transmission
group* (TG) of ``k`` equal-length data packets is extended with ``h`` parity
packets; a receiver that obtains **any** ``k`` of the ``n = k + h`` packets of
the FEC block reconstructs all ``k`` data packets.

Design notes
------------
* The code is *systematic*: the first ``k`` packets of a block are the data
  packets verbatim, so a receiver that loses nothing does no decoding at all,
  and the decode cost is proportional to the number of lost data packets —
  both properties the paper calls out in Section 2.1.
* Packets longer than one field symbol are handled exactly as Section 2.2
  describes: a ``P``-byte packet is treated as ``S = P / (m/8)`` parallel
  symbols and ``S`` independent RSE codes run in lockstep.  With numpy this
  is simply vectorising every field operation over the packet axis.
* The default field is GF(2^8) (``m = 8``), matching Rizzo's software coder;
  GF(2^16) is available when blocks longer than 255 packets are required.

Example
-------
>>> codec = RSECodec(k=4, h=2)
>>> data = [bytes([i] * 16) for i in range(4)]
>>> parities = codec.encode(data)
>>> received = {0: data[0], 2: data[2], 4: parities[0], 5: parities[1]}
>>> codec.decode(received) == data
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from threading import Lock

import numpy as np

from repro import obs
from repro.galois.field import GF256, GaloisField
from repro.galois.matrix import invert, systematic_generator

__all__ = [
    "RSECodec",
    "DecodeError",
    "CodecStats",
    "InverseCache",
    "default_inverse_cache",
    "max_block_length",
]


class DecodeError(ValueError):
    """Raised when a block cannot be decoded (fewer than ``k`` packets)."""


def max_block_length(field: GaloisField) -> int:
    """Longest FEC block ``n`` supported by ``field`` (``2^m - 1``)."""
    return field.order - 1


@dataclass
class CodecStats:
    """Cumulative operation counters, used by the Figure-1 benchmark.

    Attributes
    ----------
    packets_encoded:
        Number of *data* packets pushed through :meth:`RSECodec.encode`.
    parities_produced:
        Number of parity packets produced.
    packets_decoded:
        Number of *lost data* packets reconstructed by
        :meth:`RSECodec.decode` (receiving all data costs nothing).
    symbols_multiplied:
        Constant-times-packet GF scale-accumulate operations actually
        performed, i.e. one per *nonzero* coefficient met while encoding or
        reconstructing (zero coefficients do no work and are not charged).
    decode_cache_hits:
        Decodes that reused a cached inverted submatrix for their erasure
        pattern, skipping Gaussian elimination entirely.
    decode_cache_misses:
        Decodes that had to run Gaussian elimination (and populated the
        cache for the next receiver with the same erasure pattern).
    """

    packets_encoded: int = 0
    parities_produced: int = 0
    packets_decoded: int = 0
    symbols_multiplied: int = 0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0

    def reset(self) -> None:
        self.packets_encoded = 0
        self.parities_produced = 0
        self.packets_decoded = 0
        self.symbols_multiplied = 0
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0


@lru_cache(maxsize=128)
def _cached_generator(field: GaloisField, k: int, n: int) -> np.ndarray:
    generator = systematic_generator(field, k, n)
    generator.setflags(write=False)
    return generator


class InverseCache:
    """Bounded LRU of inverted ``(k, k)`` decode submatrices.

    Keys are ``(field, k, n, use)`` where ``use`` is the sorted tuple of
    block indices whose generator rows form the submatrix — i.e. the
    erasure pattern.  Across 10^6 simulated receivers and repeated MC
    trials the same few patterns recur constantly, so a hit replaces an
    O(k^3) Gaussian elimination with a dictionary lookup.  Cached arrays
    are frozen read-only; the field in the key keeps codecs over different
    fields (or different ``(k, n)``) from ever colliding.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.evictions = 0
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            inverse = self._entries.get(key)
            if inverse is not None:
                self._entries.move_to_end(key)
            return inverse

    def put(self, key: tuple, inverse: np.ndarray) -> np.ndarray:
        """Store ``inverse`` (frozen read-only); returns the stored array."""
        inverse.setflags(write=False)
        with self._lock:
            self._entries[key] = inverse
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return inverse

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evictions = 0


#: Process-wide cache shared by codecs that don't bring their own; the key
#: includes the field and code geometry, so sharing is always safe.
_DEFAULT_INVERSE_CACHE = InverseCache(maxsize=512)


def default_inverse_cache() -> InverseCache:
    """The shared inverse cache used by codecs constructed without one."""
    return _DEFAULT_INVERSE_CACHE


class RSECodec:
    """Encoder/decoder for one ``(k, k + h)`` systematic RSE code.

    Parameters
    ----------
    k:
        Transmission-group size (number of data packets per block).
    h:
        Number of parity packets per block.
    field:
        Galois field to operate in; defaults to GF(2^8).
    inverse_cache:
        Bounded LRU for inverted decode submatrices; defaults to the
        process-wide shared cache (safe: keys carry field and geometry).

    The codec is stateless apart from :attr:`stats`; one instance can safely
    encode and decode any number of blocks.
    """

    def __init__(
        self,
        k: int,
        h: int,
        field: GaloisField = GF256,
        inverse_cache: InverseCache | None = None,
    ):
        if k < 1:
            raise ValueError(f"transmission group size k must be >= 1, got {k}")
        if h < 0:
            raise ValueError(f"parity count h must be >= 0, got {h}")
        n = k + h
        if n > max_block_length(field):
            raise ValueError(
                f"block length n={n} exceeds limit {max_block_length(field)} "
                f"for GF(2^{field.m}); use a wider field"
            )
        self.k = k
        self.h = h
        self.n = n
        self.field = field
        self._symbol_bytes = field.dtype.itemsize
        self.generator = _cached_generator(field, k, n)
        self.inverse_cache = (
            inverse_cache if inverse_cache is not None else _DEFAULT_INVERSE_CACHE
        )
        # scale-accumulate operations per encoded block: one per nonzero
        # parity coefficient (systematic generators are dense, but count
        # honestly rather than assuming h * k)
        self._parity_ops = int(np.count_nonzero(self.generator[self.k:]))
        self.stats = CodecStats()

    def _observe_encode(self, n_blocks: int) -> None:
        """Registry-side mirror of one encode call (telemetry enabled)."""
        labels = {"k": self.k, "h": self.h}
        obs.counter("rse.blocks_encoded", **labels).inc(n_blocks)
        obs.counter("rse.parities_produced", **labels).inc(n_blocks * self.h)
        obs.counter("rse.symbols_multiplied", **labels).inc(
            n_blocks * self._parity_ops
        )

    # ------------------------------------------------------------------
    # packet <-> symbol conversion
    # ------------------------------------------------------------------
    # Byte payloads map onto field symbols as in Section 2.2: m = 8 uses
    # one byte per symbol, m = 16 two bytes, m = 4 packs two symbols per
    # byte (nibbles).  Other widths support the symbol-level API only.

    def _to_symbols(self, packet: bytes | bytearray | memoryview | np.ndarray) -> np.ndarray:
        if isinstance(packet, np.ndarray):
            arr = np.ascontiguousarray(packet, dtype=self.field.dtype)
            if arr.size and int(arr.max()) >= self.field.order:
                raise ValueError(
                    f"symbol value exceeds GF(2^{self.field.m}) range"
                )
            return arr
        raw = bytes(packet)
        if self.field.m == 4:
            octets = np.frombuffer(raw, dtype=np.uint8)
            symbols = np.empty(2 * octets.size, dtype=np.uint8)
            symbols[0::2] = octets >> 4
            symbols[1::2] = octets & 0x0F
            return symbols
        if self.field.m not in (8, 16):
            raise ValueError(
                f"byte payloads are only supported for m in (4, 8, 16); "
                f"use encode_symbols/decode_symbols for GF(2^{self.field.m})"
            )
        if len(raw) % self._symbol_bytes:
            raise ValueError(
                f"packet length {len(raw)} is not a multiple of the "
                f"{self._symbol_bytes}-byte symbol size of GF(2^{self.field.m})"
            )
        return np.frombuffer(raw, dtype=self.field.dtype)

    def _to_bytes(self, symbols: np.ndarray) -> bytes:
        if self.field.m == 4:
            symbols = symbols.astype(np.uint8, copy=False)
            octets = (symbols[0::2] << 4) | symbols[1::2]
            return octets.tobytes()
        return symbols.astype(self.field.dtype, copy=False).tobytes()

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(self, data_packets: list[bytes]) -> list[bytes]:
        """Produce the ``h`` parity packets for ``k`` equal-length packets.

        The returned parities, appended to the data packets, form the FEC
        block ``d_1 .. d_k, p_1 .. p_h`` of Section 2.1.
        """
        symbols = self.encode_symbols(self._stack(data_packets))
        return [self._to_bytes(row) for row in symbols]

    def _stack(self, data_packets: list[bytes]) -> np.ndarray:
        if len(data_packets) != self.k:
            raise ValueError(
                f"expected exactly k={self.k} data packets, got {len(data_packets)}"
            )
        rows = [self._to_symbols(p) for p in data_packets]
        lengths = {row.shape[0] for row in rows}
        if len(lengths) != 1:
            raise ValueError(
                f"all packets in a transmission group must have equal length; "
                f"saw symbol counts {sorted(lengths)}"
            )
        return np.vstack(rows)

    def _check_symbols(self, data: np.ndarray, rows_axis: int) -> np.ndarray:
        """Validate a symbol array's row count and value range."""
        if data.shape[rows_axis] != self.k:
            raise ValueError(
                f"expected k={self.k} rows, got {data.shape[rows_axis]}"
            )
        # dtypes wider than the field (e.g. uint8 for GF(2^4)) can smuggle
        # out-of-range symbols into the lookup tables; reject them here
        if self.field.order <= np.iinfo(self.field.dtype).max:
            data = np.ascontiguousarray(data, dtype=self.field.dtype)
            if data.size and int(data.max()) >= self.field.order:
                raise ValueError(
                    f"symbol value exceeds GF(2^{self.field.m}) range"
                )
        return np.asarray(data, dtype=self.field.dtype)

    def encode_symbols(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(k, S)`` symbol matrix; returns the ``(h, S)`` parities.

        The parity block is one batched GF matrix product
        ``G[k:] @ data`` — a table gather plus XOR reduction instead of the
        ``h * k`` Python-level loop of :meth:`encode_symbols_scalar`.
        """
        data = self._check_symbols(data, rows_axis=0)
        with obs.span("rse.encode", k=self.k, h=self.h):
            parities = self.field.matmul(self.generator[self.k:], data)
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += self._parity_ops
        if obs.is_enabled():
            self._observe_encode(1)
        return parities

    def encode_blocks(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(B, k, S)`` batch of blocks; returns ``(B, h, S)``.

        All ``B`` transmission groups share the generator matrix, so the
        whole batch is a single broadcast matrix product — the sender-side
        pre-encoding fast path.
        """
        if data.ndim != 3:
            raise ValueError(
                f"expected a (B, k, S) symbol batch, got shape {data.shape}"
            )
        data = self._check_symbols(data, rows_axis=1)
        with obs.span("rse.encode", k=self.k, h=self.h, blocks=data.shape[0]):
            parities = self.field.matmul(self.generator[self.k:], data)
        n_blocks = data.shape[0]
        self.stats.packets_encoded += n_blocks * self.k
        self.stats.parities_produced += n_blocks * self.h
        self.stats.symbols_multiplied += n_blocks * self._parity_ops
        if obs.is_enabled():
            self._observe_encode(n_blocks)
        return parities

    def encode_many(self, groups: list[list[bytes]]) -> list[list[bytes]]:
        """Byte-level batch encode: parities for many equal-shape groups."""
        if not groups:
            return []
        stacked = np.stack([self._stack(group) for group in groups])
        parities = self.encode_blocks(stacked)
        return [
            [self._to_bytes(row) for row in block] for block in parities
        ]

    def encode_symbols_scalar(self, data: np.ndarray) -> np.ndarray:
        """Reference scalar encode: the row-by-row loop the batched kernel
        replaced.  Kept for differential tests and benchmarks; bit-identical
        to :meth:`encode_symbols` (including the stats accounting)."""
        data = self._check_symbols(data, rows_axis=0)
        parities = np.zeros((self.h, data.shape[1]), dtype=self.field.dtype)
        parity_rows = self.generator[self.k:]
        operations = 0
        for j in range(self.h):
            acc = parities[j]
            for i in range(self.k):
                coefficient = int(parity_rows[j, i])
                if coefficient:
                    operations += 1
                self.field.scale_accumulate(acc, coefficient, data[i])
        self.stats.packets_encoded += self.k
        self.stats.parities_produced += self.h
        self.stats.symbols_multiplied += operations
        return parities

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def decode(self, received: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the ``k`` data packets from any ``k`` received packets.

        Parameters
        ----------
        received:
            Mapping from block index (``0..n-1``; indices ``>= k`` are
            parities) to packet payload.  At least ``k`` entries are needed.

        Returns
        -------
        The ``k`` data packets, in order.

        Raises
        ------
        DecodeError
            If fewer than ``k`` distinct packets were supplied.
        """
        if not received:
            raise DecodeError("no packets received")
        indices = sorted(received)
        if indices[0] < 0 or indices[-1] >= self.n:
            raise ValueError(
                f"packet index out of range for block length n={self.n}: {indices}"
            )
        if len(indices) < self.k:
            raise DecodeError(
                f"need at least k={self.k} packets to decode, got {len(indices)}"
            )
        rows = {i: self._to_symbols(p) for i, p in received.items()}
        lengths = {row.shape[0] for row in rows.values()}
        if len(lengths) != 1:
            raise ValueError("received packets have inconsistent lengths")

        decoded = self.decode_symbols(rows)
        return [self._to_bytes(decoded[i]) for i in range(self.k)]

    def _decode_plan(
        self, rows: dict[int, np.ndarray]
    ) -> tuple[list[int], list[int], list[int]]:
        """Pick the k equations for a decode: (have_data, missing, use)."""
        have_data = [i for i in rows if i < self.k]
        missing = [i for i in range(self.k) if i not in rows]
        parities = sorted(i for i in rows if i >= self.k)
        needed = self.k - len(have_data)
        if len(parities) < needed:
            raise DecodeError(
                f"unrecoverable block: have {len(have_data)} data + "
                f"{len(parities)} parity packets, need {self.k} total"
            )
        use = sorted(have_data) + parities[:needed]
        return have_data, missing, use

    def _inverted_submatrix(self, use: list[int]) -> np.ndarray:
        """Inverse of ``generator[use]``, via the erasure-pattern cache."""
        key = (self.field, self.k, self.n, tuple(use))
        inverse = self.inverse_cache.get(key)
        if inverse is not None:
            self.stats.decode_cache_hits += 1
            if obs.is_enabled():
                obs.counter("rse.decode_cache", outcome="hit").inc()
            return inverse
        self.stats.decode_cache_misses += 1
        if obs.is_enabled():
            obs.counter("rse.decode_cache", outcome="miss").inc()
        return self.inverse_cache.put(key, invert(self.field, self.generator[use]))

    def decode_symbols(self, rows: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Symbol-level decode; returns ``{data_index: (S,) symbols}``.

        Only missing data packets are actually reconstructed (the Rizzo
        optimisation — cost proportional to the number of losses); received
        data rows are passed through.  The inverted submatrix for the
        erasure pattern comes from a bounded LRU (:class:`InverseCache`),
        so repeated patterns skip Gaussian elimination, and all missing
        packets are rebuilt in one batched matrix product.
        """
        have_data, missing, use = self._decode_plan(rows)
        out: dict[int, np.ndarray] = {i: rows[i] for i in have_data}
        if not missing:
            # the no-loss fast path stays untimed: nothing happens here
            return out

        with obs.span(
            "rse.decode", k=self.k, h=self.h, missing=len(missing)
        ):
            inverse = self._inverted_submatrix(use)
            stacked = np.vstack([rows[i] for i in use])  # (k, S)
            coefficients = inverse[missing]  # (M, k)
            reconstructed = self.field.matmul(coefficients, stacked)
        for row, data_index in zip(reconstructed, missing):
            out[data_index] = row
        self.stats.symbols_multiplied += int(np.count_nonzero(coefficients))
        self.stats.packets_decoded += len(missing)
        if obs.is_enabled():
            obs.counter(
                "rse.packets_reconstructed", k=self.k, h=self.h
            ).inc(len(missing))
        return out

    def decode_symbols_scalar(
        self, rows: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Reference scalar decode: per-packet loop, no inverse cache.

        Always runs Gaussian elimination; bit-identical output (and stats
        accounting, cache counters aside) to :meth:`decode_symbols`."""
        have_data, missing, use = self._decode_plan(rows)
        out: dict[int, np.ndarray] = {i: rows[i] for i in have_data}
        if not missing:
            return out

        inverse = invert(self.field, self.generator[use])
        stacked = np.vstack([rows[i] for i in use])  # (k, S)
        for data_index in missing:
            coefficients = inverse[data_index]
            acc = np.zeros(stacked.shape[1], dtype=self.field.dtype)
            for c, row in zip(coefficients, stacked):
                coefficient = int(c)
                if coefficient:
                    self.stats.symbols_multiplied += 1
                self.field.scale_accumulate(acc, coefficient, row)
            out[data_index] = acc
        self.stats.packets_decoded += len(missing)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RSECodec(k={self.k}, h={self.h}, GF(2^{self.field.m}))"
