"""Transmission-group framing on top of a raw erasure codec.

The paper's unit of loss recovery is the *transmission group* (TG): ``k``
data packets that share one FEC block of ``n = k + h`` packets.  This module
provides the sender- and receiver-side bookkeeping around the codec:

* :class:`BlockEncoder` slices an application byte-stream into fixed-size
  packets, pads the tail, groups packets into TGs and produces parities
  (eagerly or lazily — lazy models protocol NP, which only encodes parities
  that are actually requested; eager models pre-encoding, Section 5's
  throughput booster).
* :class:`BlockDecoder` is the per-TG receive buffer: it absorbs data and
  parity packets in any order, reports how many packets are still missing
  (the quantity carried in the paper's ``NAK(i, l)``), and reconstructs the
  group once a decodable set of packets has arrived.

Both sides work against the :class:`~repro.fec.code.ErasureCode` contract:
``codec`` may be a live instance or a registry name (``"rse"``, ``"xor"``,
``"rect"``, ``"lrc"``).  Non-systematic codes are supported: the sender
transmits the *coded* block prefix in place of the raw data packets, and
the receiver's decodability test defers to the codec's honest
:meth:`~repro.fec.code.ErasureCode.decodable_from` claim rather than a bare
``>= k`` count (these only differ for non-MDS codes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fec.code import DecodeError, ErasureCode
from repro.fec.registry import create_codec
from repro.fec.rse import RSECodec

__all__ = [
    "TransmissionGroup",
    "BlockEncoder",
    "BlockDecoder",
    "slice_stream",
    "join_stream",
]

#: Header layout used by the example applications: (tg_index, block_index).
#: Kept as a plain tuple to stay transport-agnostic.
PacketAddress = tuple[int, int]


def slice_stream(data: bytes, packet_size: int, k: int) -> list[list[bytes]]:
    """Slice ``data`` into transmission groups of ``k`` packets each.

    The final packet is zero-padded to ``packet_size`` and the final group is
    padded with all-zero packets so every group has exactly ``k`` members
    (real protocols carry the true length in a trailer; the examples store it
    out of band).
    """
    if packet_size < 1:
        raise ValueError(f"packet_size must be >= 1, got {packet_size}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    packets = [
        bytes(data[i: i + packet_size]).ljust(packet_size, b"\x00")
        for i in range(0, max(len(data), 1), packet_size)
    ]
    groups: list[list[bytes]] = []
    for start in range(0, len(packets), k):
        group = packets[start: start + k]
        while len(group) < k:
            group.append(b"\x00" * packet_size)
        groups.append(group)
    return groups


def join_stream(groups: list[list[bytes]], total_length: int) -> bytes:
    """Inverse of :func:`slice_stream` given the original byte length."""
    flat = b"".join(packet for group in groups for packet in group)
    return flat[:total_length]


@dataclass
class TransmissionGroup:
    """One sender-side TG: data packets plus (possibly partial) parities.

    For non-systematic codecs :attr:`coded` holds the transformed first
    ``k`` on-the-wire packets; :meth:`packet` serves from it when present.
    """

    index: int
    data: list[bytes]
    parities: list[bytes] = field(default_factory=list)
    coded: list[bytes] | None = None

    @property
    def k(self) -> int:
        return len(self.data)

    def packet(self, block_index: int) -> bytes:
        """Packet by FEC-block index (``0..k-1`` data, ``k..`` parity)."""
        if block_index < self.k:
            if self.coded is not None:
                return self.coded[block_index]
            return self.data[block_index]
        parity_index = block_index - self.k
        if parity_index >= len(self.parities):
            raise IndexError(
                f"parity {parity_index} of TG {self.index} not yet encoded"
            )
        return self.parities[parity_index]


class BlockEncoder:
    """Sender-side framing: byte-stream -> TGs -> parities on demand.

    Parameters
    ----------
    k, h:
        Transmission-group size and maximum parities per group.
    packet_size:
        Payload bytes per packet.
    codec:
        Optional shared :class:`~repro.fec.code.ErasureCode` instance or
        registry name; an :class:`RSECodec` is built if omitted.
    pre_encode:
        If true, all ``h`` parities of every group are produced at
        construction time (the paper's "pre-encoding" variant that removes
        encoding from the sender's critical path).  Non-systematic codecs
        always encode eagerly: their on-the-wire data prefix is itself a
        coding product.
    """

    def __init__(
        self,
        data: bytes,
        k: int,
        h: int,
        packet_size: int,
        codec: ErasureCode | str | None = None,
        pre_encode: bool = False,
    ):
        if isinstance(codec, str):
            codec = create_codec(codec, k, h)
        self.codec = codec if codec is not None else RSECodec(k, h)
        if self.codec.k != k or self.codec.h < h:
            raise ValueError(
                f"codec {self.codec!r} incompatible with k={k}, h={h}"
            )
        self.k = k
        self.h = h
        self.packet_size = packet_size
        self.total_length = len(data)
        self.groups = [
            TransmissionGroup(index=i, data=group)
            for i, group in enumerate(slice_stream(data, packet_size, k))
        ]
        if not self.codec.systematic:
            for group in self.groups:
                block = self.codec.encode_block(group.data)
                group.coded = block[:k]
                group.parities = block[k:k + h]
        elif pre_encode and h > 0:
            # all groups share the packet size, so the whole stream is one
            # batched (B, k, S) encode instead of a per-group Python loop
            all_parities = self.codec.encode_many(
                [group.data for group in self.groups]
            )
            for group, parities in zip(self.groups, all_parities):
                group.parities = parities

    def __len__(self) -> int:
        return len(self.groups)

    def data_packet(self, tg_index: int, block_index: int) -> bytes:
        """On-the-wire packet for block index ``0..k-1``.

        For systematic codecs this is the raw data packet; for
        non-systematic codecs it is the coded packet carrying that slot.
        """
        if not 0 <= block_index < self.k:
            raise IndexError(f"data index {block_index} outside 0..{self.k - 1}")
        return self.groups[tg_index].packet(block_index)

    def parity_packet(self, tg_index: int, parity_index: int) -> bytes:
        """Parity ``parity_index`` of group ``tg_index``, encoding lazily."""
        if not 0 <= parity_index < self.h:
            raise IndexError(
                f"parity index {parity_index} outside 0..{self.h - 1}"
            )
        group = self.groups[tg_index]
        self._ensure_parities(group, parity_index + 1)
        return group.parities[parity_index]

    def _ensure_parities(self, group: TransmissionGroup, count: int) -> None:
        if len(group.parities) >= count:
            return
        # Parity sets are computed in full on first demand: producing them
        # incrementally would redo the k multiplies per parity anyway.
        group.parities = self.codec.encode(group.data)[: self.h]


class BlockDecoder:
    """Receiver-side buffer for a single transmission group.

    Mirrors the FEC-receiver behaviour of Section 3.1 and protocol NP's
    receiver (Section 5.1): store whatever arrives, expose the number of
    packets still needed (``l`` in ``NAK(i, l)``) and decode once the codec
    claims the held pattern decodable (any ``k`` packets for MDS codes).
    """

    def __init__(self, k: int, codec: ErasureCode | str, h: int | None = None):
        if isinstance(codec, str):
            if h is None:
                raise ValueError(
                    "resolving a codec name needs the block's parity count: "
                    "pass h= alongside the registry name"
                )
            codec = create_codec(codec, k, h)
        if codec.k != k:
            raise ValueError(f"codec k={codec.k} does not match group k={k}")
        self.k = k
        self.codec = codec
        #: values are whatever the caller handed in — ``bytes`` payloads or
        #: zero-copy symbol views (:func:`repro.protocols.packets.payload_symbols`);
        #: the codec's ``decode`` accepts both and nothing here reads the data
        self.received: dict[int, bytes | np.ndarray] = {}
        self._decoded: list[bytes] | None = None
        self.duplicates = 0

    def add(self, block_index: int, payload: bytes | np.ndarray) -> bool:
        """Absorb one packet; returns True if the group is now decodable."""
        if self._decoded is not None:
            self.duplicates += 1
            return True
        if block_index in self.received:
            self.duplicates += 1
        else:
            self.received[block_index] = payload
        return self.decodable

    @property
    def decodable(self) -> bool:
        if self._decoded is not None:
            return True
        if len(self.received) < self.k:
            return False
        return self.codec.decodable_from(self.received)

    @property
    def missing(self) -> int:
        """Packets still required to reconstruct the group (``l``).

        For non-MDS codecs this is a *lower bound*: a stalled pattern
        (``>= k`` packets held but structurally unrecoverable) still
        reports 1 so the receiver keeps soliciting — returning 0 there
        would silence the NAK loop and stall the transfer.  The true
        requirement surfaces as more packets arrive.
        """
        if self._decoded is not None:
            return 0
        if len(self.received) >= self.k:
            return 0 if self.decodable else 1
        return self.k - len(self.received)

    def reconstruct(self) -> list[bytes]:
        """Decode and return the ``k`` data packets (cached after first call)."""
        if self._decoded is None:
            if len(self.received) < self.k:
                raise DecodeError(
                    f"group incomplete: {len(self.received)}/{self.k} packets"
                )
            self._decoded = self.codec.decode(self.received)
        return self._decoded

    def decoding_work(self) -> int:
        """Number of data packets that decoding had to reconstruct.

        Non-systematic codecs rebuild the whole group from coded packets,
        so their work is always ``k`` once any decode happens.
        """
        if not self.codec.systematic:
            return self.k
        return sum(1 for i in range(self.k) if i not in self.received)
