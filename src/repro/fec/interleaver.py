"""Block interleaving for burst-loss resistance.

Section 4.2 of the paper discusses interleaving as the classic FEC answer to
bursty loss: spread the packets of one FEC block over a period longer than
the loss burst so that a single burst cannot wipe out more packets of a block
than the code can repair.  "Integrated FEC 2" achieves a mild form of this by
spacing parity rounds ``Delta + T`` apart; a generic depth-``D`` block
interleaver is the stronger form.

:class:`BlockInterleaver` reorders a packet sequence so that consecutive
transmissions come from ``D`` different FEC blocks; :class:`Deinterleaver`
restores the original order at the receiver.  Both are pure permutations —
they add latency, never bandwidth.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["BlockInterleaver", "Deinterleaver", "interleave_indices"]


def interleave_indices(block_length: int, depth: int) -> list[int]:
    """Transmission order for ``depth`` consecutive blocks of ``block_length``.

    Index ``b * block_length + s`` (packet ``s`` of block ``b``) is emitted at
    position ``s * depth + b`` — column-major readout of the standard
    row-per-block interleaver matrix.
    """
    if block_length < 1 or depth < 1:
        raise ValueError("block_length and depth must both be >= 1")
    order = []
    for slot in range(block_length):
        for block in range(depth):
            order.append(block * block_length + slot)
    return order


class BlockInterleaver:
    """Reorders packets so bursts spread across ``depth`` FEC blocks.

    Feed packets with :meth:`push`; complete interleaved batches of
    ``depth * block_length`` packets come out of :meth:`pop_ready`.
    :meth:`flush` drains a final partial batch (padding is the caller's
    concern — protocols simply send a shorter tail batch).
    """

    def __init__(self, block_length: int, depth: int):
        self.block_length = block_length
        self.depth = depth
        self._order = interleave_indices(block_length, depth)
        self._pending: list = []

    def push(self, packet) -> None:
        self._pending.append(packet)

    def push_block(self, packets: Iterable) -> None:
        for packet in packets:
            self.push(packet)

    def pop_ready(self) -> list:
        """Return all complete interleaved batches accumulated so far."""
        batch_size = self.block_length * self.depth
        out: list = []
        while len(self._pending) >= batch_size:
            batch, self._pending = (
                self._pending[:batch_size],
                self._pending[batch_size:],
            )
            out.extend(batch[i] for i in self._order)
        return out

    def flush(self) -> list:
        """Drain any trailing partial batch in original order."""
        out, self._pending = self._pending, []
        return out


class Deinterleaver:
    """Inverse permutation of :class:`BlockInterleaver` for full batches."""

    def __init__(self, block_length: int, depth: int):
        self.block_length = block_length
        self.depth = depth
        order = interleave_indices(block_length, depth)
        self._inverse = [0] * len(order)
        for position, original in enumerate(order):
            self._inverse[original] = position

    def restore(self, batch: Sequence) -> list:
        """Reorder one full interleaved batch back to block order."""
        expected = self.block_length * self.depth
        if len(batch) != expected:
            raise ValueError(
                f"deinterleaver needs a full batch of {expected} packets, "
                f"got {len(batch)}"
            )
        return [batch[self._inverse[i]] for i in range(expected)]
