"""Simulation substrate: event engine, loss models, trees, network.

* :class:`repro.sim.Simulator` — discrete-event scheduler;
* :mod:`repro.sim.loss` — the paper's four loss behaviours;
* :mod:`repro.sim.tree` — multicast-tree builders;
* :class:`repro.sim.MulticastNetwork` — event-driven transport for the
  protocol state machines.
"""

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.loss import (
    BernoulliLoss,
    ScriptedLoss,
    BurstyTreeLoss,
    FullBinaryTreeLoss,
    GilbertLoss,
    HeterogeneousLoss,
    LossModel,
    LossSampler,
    TreeLoss,
    two_class_probabilities,
)
from repro.sim.network import MulticastNetwork, NetworkStats
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.tree import (
    full_binary_tree,
    full_kary_tree,
    leaves_of,
    linear_chain,
    path_to_root,
    random_multicast_tree,
    star_topology,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "LossModel",
    "LossSampler",
    "BernoulliLoss",
    "HeterogeneousLoss",
    "two_class_probabilities",
    "GilbertLoss",
    "FullBinaryTreeLoss",
    "BurstyTreeLoss",
    "ScriptedLoss",
    "TreeLoss",
    "MulticastNetwork",
    "NetworkStats",
    "TraceRecorder",
    "TraceEvent",
    "full_binary_tree",
    "full_kary_tree",
    "linear_chain",
    "star_topology",
    "random_multicast_tree",
    "leaves_of",
    "path_to_root",
]
