"""Simulation substrate: event engine, loss models, trees, network.

* :class:`repro.sim.Simulator` — discrete-event scheduler;
* :mod:`repro.sim.loss` — the paper's four loss behaviours;
* :mod:`repro.sim.tree` — multicast-tree builders;
* :class:`repro.sim.MulticastNetwork` — event-driven transport for the
  protocol state machines;
* :mod:`repro.sim.failure` — availability generators, failure domains
  and correlated-churn composition over any loss model.
"""

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.loss import (
    BernoulliLoss,
    ScriptedLoss,
    BurstyTreeLoss,
    FullBinaryTreeLoss,
    GilbertLoss,
    HeterogeneousLoss,
    LossModel,
    LossSampler,
    TreeLoss,
    two_class_probabilities,
)
from repro.sim.network import MulticastNetwork, NetworkStats
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.tree import (
    full_binary_tree,
    full_kary_tree,
    leaves_of,
    linear_chain,
    path_to_root,
    random_multicast_tree,
    star_topology,
)

# imported last: repro.sim.failure pulls in repro.resilience.faults, which
# itself imports from repro.sim — the engine/loss imports above must have
# completed first
from repro.sim.failure import (
    AvailabilityGenerator,
    AvailabilitySchedule,
    DomainOutageLoss,
    DomainTree,
    DownWindow,
    EmpiricalAvailability,
    PiecewiseRateAvailability,
    TraceAvailability,
    WeibullAvailability,
    churn_fault_plan,
    generator_from_spec,
    member_blackout_windows,
    named_generator,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "LossModel",
    "LossSampler",
    "BernoulliLoss",
    "HeterogeneousLoss",
    "two_class_probabilities",
    "GilbertLoss",
    "FullBinaryTreeLoss",
    "BurstyTreeLoss",
    "ScriptedLoss",
    "TreeLoss",
    "MulticastNetwork",
    "NetworkStats",
    "TraceRecorder",
    "TraceEvent",
    "full_binary_tree",
    "full_kary_tree",
    "linear_chain",
    "star_topology",
    "random_multicast_tree",
    "leaves_of",
    "path_to_root",
    "DownWindow",
    "AvailabilitySchedule",
    "AvailabilityGenerator",
    "WeibullAvailability",
    "PiecewiseRateAvailability",
    "EmpiricalAvailability",
    "TraceAvailability",
    "generator_from_spec",
    "named_generator",
    "DomainTree",
    "DomainOutageLoss",
    "churn_fault_plan",
    "member_blackout_windows",
]
