"""Packet-level event tracing for protocol debugging and analysis.

A :class:`TraceRecorder` hooks the :class:`repro.sim.network.MulticastNetwork`
send paths and records a timeline of everything on the wire.  Used by the
test-suite to assert ordering/timing properties of the protocol machines
and handy when digging into a protocol pathology::

    recorder = TraceRecorder(sim)
    recorder.attach(network)
    ... run the transfer ...
    for event in recorder.query(kind="nak"):
        print(event)
    print(recorder.summary())
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.sim.engine import Simulator
from repro.sim.network import MulticastNetwork

__all__ = ["TraceEvent", "TraceRecorder"]


def _json_safe(value: Any) -> Any:
    """A JSON-dumpable stand-in for any packet field.

    Payload bytes are summarised (length + CRC-32), not embedded — a
    trace should identify packets, not double the transfer in base64.
    Dataclass packets become dicts tagged with their type name; anything
    else unrecognised degrades to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        return {"bytes": len(raw), "crc32": zlib.crc32(raw)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"packet_type": type(value).__name__}
        for field in dataclasses.fields(value):
            out[field.name] = _json_safe(getattr(value, field.name))
        return out
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One wire event: what was sent, when, over which channel."""

    time: float
    channel: str  # "downstream" | "control" | "feedback"
    kind: str  # "data" | "parity" | "poll" | "nak" | ...
    packet: Any
    sequence: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.4f}s] {self.channel:10s} {self.kind:8s} {self.packet}"

    def to_json(self) -> dict:
        """JSON-serializable form; raw packet objects are summarised via
        :func:`_json_safe` (payload bytes become length + CRC-32)."""
        return {
            "time": self.time,
            "channel": self.channel,
            "kind": self.kind,
            "sequence": self.sequence,
            "packet": _json_safe(self.packet),
        }


class TraceRecorder:
    """Records every transmission passing through an attached network.

    Attaching wraps the network's ``multicast`` / ``multicast_control`` /
    ``multicast_feedback`` methods; :meth:`detach` restores them.  The
    recorder is purely observational — packet delivery is unchanged.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None):
        self.sim = sim
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        self._attached: list[tuple[MulticastNetwork, dict]] = []

    # ------------------------------------------------------------------
    def attach(self, network: MulticastNetwork) -> None:
        """Start recording the given network's transmissions."""
        originals = {
            "multicast": network.multicast,
            "multicast_control": network.multicast_control,
            "multicast_feedback": network.multicast_feedback,
        }

        def wrap_downstream(packet, kind="data"):
            self._record("downstream", kind, packet)
            return originals["multicast"](packet, kind)

        def wrap_control(packet, kind="poll"):
            self._record("control", kind, packet)
            return originals["multicast_control"](packet, kind)

        def wrap_feedback(packet, origin, kind="nak"):
            self._record("feedback", kind, packet)
            return originals["multicast_feedback"](packet, origin, kind)

        network.multicast = wrap_downstream
        network.multicast_control = wrap_control
        network.multicast_feedback = wrap_feedback
        self._attached.append((network, originals))

    def detach(self) -> None:
        """Restore every attached network's original send methods."""
        for network, originals in self._attached:
            network.multicast = originals["multicast"]
            network.multicast_control = originals["multicast_control"]
            network.multicast_feedback = originals["multicast_feedback"]
        self._attached.clear()

    def _record(self, channel: str, kind: str, packet: Any) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped_events += 1
            return
        self.events.append(
            TraceEvent(self.sim.now, channel, kind, packet, len(self.events))
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def query(
        self,
        channel: str | None = None,
        kind: str | None = None,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> Iterator[TraceEvent]:
        """Filtered view of the timeline (all filters optional)."""
        for event in self.events:
            if channel is not None and event.channel != channel:
                continue
            if kind is not None and event.kind != kind:
                continue
            if not since <= event.time <= until:
                continue
            yield event

    def kinds(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def inter_send_gaps(self, kind: str | None = None) -> list[float]:
        """Gaps between consecutive downstream transmissions (pacing check)."""
        times = [
            event.time
            for event in self.query(channel="downstream", kind=kind)
        ]
        return [b - a for a, b in zip(times, times[1:])]

    def to_ndjson(self, path: str | pathlib.Path, mode: str = "w") -> int:
        """Write one ``{"record": "trace", ...}`` object per line.

        The ``record`` discriminator matches the obs span/metric exports
        (:mod:`repro.obs`), so a simulator trace and a span trace can
        share one file (pass ``mode="a"`` to append).  Returns the number
        of lines written.
        """
        path = pathlib.Path(path)
        count = 0
        with open(path, mode) as fh:
            for event in self.events:
                fh.write(
                    json.dumps(
                        {"record": "trace", **event.to_json()}, sort_keys=True
                    )
                )
                fh.write("\n")
                count += 1
        return count

    def summary(self) -> str:
        parts = [f"{len(self.events)} events"]
        parts.extend(
            f"{kind}={count}" for kind, count in sorted(self.kinds().items())
        )
        if self.dropped_events:
            parts.append(f"dropped={self.dropped_events}")
        return ", ".join(parts)
