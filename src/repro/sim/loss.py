"""Packet-loss models.

The paper evaluates FEC/ARQ combinations under four loss behaviours; each is
a :class:`LossModel` here:

* **independent homogeneous** loss — :class:`BernoulliLoss` (Section 3),
* **independent heterogeneous** loss — :class:`HeterogeneousLoss` with the
  two-class populations of Section 3.3,
* **spatially correlated (shared)** loss on a full binary tree —
  :class:`FullBinaryTreeLoss` (Section 4.1), plus :class:`TreeLoss` for
  arbitrary multicast trees,
* **temporally correlated (burst)** loss from a two-state continuous-time
  Markov chain — :class:`GilbertLoss` (Section 4.2, Bolot's channel).

Every model answers one question: *given packet transmissions at simulated
times ``t_1 < ... < t_T``, which receivers lose which transmissions?*  The
answer is a boolean ``(R, T)`` matrix from :meth:`LossModel.sample_at`
(``True`` means lost), which both the vectorised Monte-Carlo experiments and
the event-driven protocol network consume.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "LossModel",
    "LossSampler",
    "BernoulliLoss",
    "HeterogeneousLoss",
    "two_class_probabilities",
    "GilbertLoss",
    "GilbertSampler",
    "ScriptedLoss",
    "BurstyTreeLoss",
    "FullBinaryTreeLoss",
    "TreeLoss",
    "loss_model_from_spec",
    "register_spec_builder",
    "spec_kinds",
]


def _validate_times(times: np.ndarray) -> np.ndarray:
    times = np.asarray(times, dtype=float)
    if times.ndim != 1:
        raise ValueError(f"times must be a 1-D array, got shape {times.shape}")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    return times


class LossModel(ABC):
    """Base class: a joint loss process over ``n_receivers`` receivers."""

    def __init__(self, n_receivers: int):
        if n_receivers < 1:
            raise ValueError(f"need at least one receiver, got {n_receivers}")
        self.n_receivers = n_receivers

    @abstractmethod
    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample loss indicators at the given transmission times.

        Returns a boolean array of shape ``(n_receivers, len(times))`` where
        ``True`` marks a lost packet.  Successive calls are independent
        realisations of the process.
        """

    @abstractmethod
    def marginal_loss_probability(self) -> np.ndarray:
        """Per-receiver stationary packet-loss probability, shape ``(R,)``."""

    def sample_one(self, time: float, rng: np.random.Generator) -> np.ndarray:
        """Loss vector for a single transmission at ``time`` (shape ``(R,)``)."""
        return self.sample_at(np.array([time]), rng)[:, 0]

    def start(self, rng: np.random.Generator) -> "LossSampler":
        """Begin *one realisation* of the process for incremental sampling.

        Unlike :meth:`sample_at`, successive :meth:`LossSampler.sample`
        calls on the returned object continue the same realisation — which
        matters for temporally-correlated models, where the chain state must
        carry across retransmission rounds.  Models without temporal
        correlation return a stateless wrapper.
        """
        return _MemorylessSampler(self, rng)

    def to_spec(self) -> dict:
        """JSON-safe description rebuildable by :func:`loss_model_from_spec`.

        The sharded Monte-Carlo engine ships loss models to spawned worker
        processes through campaign tasks (plain-data JSON), so every model
        that should parallelise across processes must round-trip here.
        Models that cannot (e.g. :class:`TreeLoss`, which wraps a live
        ``networkx`` graph) raise ``NotImplementedError`` and are still
        usable in-process (``jobs=1``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no spec serialization; "
            f"it can only run in-process (jobs=1)"
        )


class LossSampler:
    """One realisation of a loss process, sampled forward in time."""

    def __init__(self, model: "LossModel"):
        self.model = model
        self.last_time = -math.inf

    def _check_forward(self, times: np.ndarray) -> np.ndarray:
        times = _validate_times(times)
        if times.size and times[0] < self.last_time:
            raise ValueError(
                f"sampler already advanced to t={self.last_time}; "
                f"cannot sample at earlier t={times[0]}"
            )
        if times.size:
            self.last_time = float(times[-1])
        return times

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Loss matrix ``(R, len(times))`` for further transmissions."""
        raise NotImplementedError


class _MemorylessSampler(LossSampler):
    """Sampler for models with no temporal correlation."""

    def __init__(self, model: LossModel, rng: np.random.Generator):
        super().__init__(model)
        self.rng = rng

    def sample(self, times: np.ndarray) -> np.ndarray:
        times = self._check_forward(times)
        return self.model.sample_at(times, self.rng)


class BernoulliLoss(LossModel):
    """Independent, homogeneous loss: every packet at every receiver is lost
    with probability ``p``, independently in space and time (Section 3)."""

    def __init__(self, n_receivers: int, p: float):
        super().__init__(n_receivers)
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        self.p = p

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        times = _validate_times(times)
        return rng.random((self.n_receivers, times.size)) < self.p

    def marginal_loss_probability(self) -> np.ndarray:
        return np.full(self.n_receivers, self.p)

    def to_spec(self) -> dict:
        return {"kind": "bernoulli", "n_receivers": self.n_receivers, "p": self.p}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BernoulliLoss(R={self.n_receivers}, p={self.p})"


class HeterogeneousLoss(LossModel):
    """Independent loss with a per-receiver probability vector ``p(r)``."""

    def __init__(self, probabilities: np.ndarray):
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.ndim != 1:
            raise ValueError("probabilities must be a 1-D vector")
        if np.any((probabilities < 0) | (probabilities >= 1)):
            raise ValueError("all loss probabilities must be in [0, 1)")
        super().__init__(probabilities.size)
        self.probabilities = probabilities

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        times = _validate_times(times)
        draws = rng.random((self.n_receivers, times.size))
        return draws < self.probabilities[:, None]

    def marginal_loss_probability(self) -> np.ndarray:
        return self.probabilities.copy()

    def to_spec(self) -> dict:
        return {
            "kind": "heterogeneous",
            "probabilities": [float(p) for p in self.probabilities],
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"HeterogeneousLoss(R={self.n_receivers})"


def two_class_probabilities(
    n_receivers: int,
    fraction_high: float,
    p_low: float = 0.01,
    p_high: float = 0.25,
) -> np.ndarray:
    """The two-class population of Section 3.3.

    ``round(fraction_high * R)`` receivers get loss probability ``p_high``
    (placed at the end of the vector), the rest ``p_low``.
    """
    if not 0.0 <= fraction_high <= 1.0:
        raise ValueError(f"fraction_high must be in [0, 1], got {fraction_high}")
    n_high = int(round(fraction_high * n_receivers))
    probabilities = np.full(n_receivers, p_low)
    if n_high:
        probabilities[n_receivers - n_high:] = p_high
    return probabilities


class GilbertLoss(LossModel):
    """Two-state continuous-time Markov burst-loss channel (Section 4.2).

    State 0 is *good* (no loss), state 1 is *bad* (every packet sent while
    the chain is in state 1 is lost).  ``rate_good_to_bad`` is the paper's
    ``lambda_0`` and ``rate_bad_to_good`` its ``lambda_1``; the stationary
    loss probability is ``lambda_0 / (lambda_0 + lambda_1)``.

    Each receiver runs an independent chain; chains start in their
    stationary distribution.
    """

    def __init__(self, n_receivers: int, rate_good_to_bad: float, rate_bad_to_good: float):
        super().__init__(n_receivers)
        if rate_good_to_bad <= 0 or rate_bad_to_good <= 0:
            raise ValueError("both transition rates must be positive")
        self.rate_good_to_bad = rate_good_to_bad
        self.rate_bad_to_good = rate_bad_to_good

    @classmethod
    def from_loss_and_burst(
        cls,
        n_receivers: int,
        p: float,
        mean_burst_length: float,
        packet_interval: float,
    ) -> "GilbertLoss":
        """The paper's parameterisation.

        Given packet-loss probability ``p``, mean number of *consecutively
        lost packets* ``mean_burst_length`` and packet spacing
        ``packet_interval`` (the paper's ``Delta``), set

        ``lambda_1 = -(1/Delta) * ln(1 - 1/mean_burst)`` so that a packet
        following a lost packet is again lost with probability
        ``1 - 1/mean_burst`` (geometric bursts of the right mean), and
        ``lambda_0 = lambda_1 * p / (1 - p)`` so the stationary loss
        probability is ``p``.
        """
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        if mean_burst_length <= 1.0:
            raise ValueError(
                f"mean burst length must exceed 1 packet, got {mean_burst_length}"
            )
        if packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        rate_bad_to_good = -math.log(1.0 - 1.0 / mean_burst_length) / packet_interval
        rate_good_to_bad = rate_bad_to_good * p / (1.0 - p)
        return cls(n_receivers, rate_good_to_bad, rate_bad_to_good)

    # -- stationary quantities -----------------------------------------
    @property
    def stationary_loss_probability(self) -> float:
        total = self.rate_good_to_bad + self.rate_bad_to_good
        return self.rate_good_to_bad / total

    def marginal_loss_probability(self) -> np.ndarray:
        return np.full(self.n_receivers, self.stationary_loss_probability)

    def transition_probabilities(self, gap: float) -> tuple[float, float]:
        """``(P(bad | was good), P(bad | was bad))`` after time ``gap``."""
        total = self.rate_good_to_bad + self.rate_bad_to_good
        pi_bad = self.rate_good_to_bad / total
        decay = math.exp(-total * gap)
        p_bad_from_good = pi_bad * (1.0 - decay)
        p_bad_from_bad = pi_bad + (1.0 - pi_bad) * decay
        return p_bad_from_good, p_bad_from_bad

    # -- sampling -------------------------------------------------------
    def start(self, rng: np.random.Generator) -> "GilbertSampler":
        return GilbertSampler(self, rng)

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Stepwise sampling: vectorised over receivers, sequential in time.

        Efficient when the number of transmission instants is moderate (the
        protocol experiments).  For very long single-receiver traces use
        :meth:`sample_chain`.
        """
        return GilbertSampler(self, rng).sample(times)

    def sample_chain(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Single-chain sampling via exponential sojourn times.

        Cost is proportional to the number of *state changes*, not the number
        of packets, which makes million-packet traces (Figure 14) cheap.
        Returns a boolean vector of length ``len(times)``.
        """
        times = _validate_times(times)
        if times.size == 0:
            return np.zeros(0, dtype=bool)
        horizon = float(times[-1])
        state = bool(rng.random() < self.stationary_loss_probability)

        boundaries = [0.0]
        states = [state]
        t = 0.0
        while t <= horizon:
            rate = self.rate_bad_to_good if state else self.rate_good_to_bad
            t += rng.exponential(1.0 / rate)
            boundaries.append(t)
            state = not state
            states.append(state)
        # interval i is [boundaries[i], boundaries[i+1]) with states[i]
        interval = np.searchsorted(np.asarray(boundaries), times, side="right") - 1
        return np.asarray(states, dtype=bool)[interval]

    def to_spec(self) -> dict:
        return {
            "kind": "gilbert",
            "n_receivers": self.n_receivers,
            "rate_good_to_bad": self.rate_good_to_bad,
            "rate_bad_to_good": self.rate_bad_to_good,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"GilbertLoss(R={self.n_receivers}, "
            f"l0={self.rate_good_to_bad:.4g}, l1={self.rate_bad_to_good:.4g})"
        )


class GilbertSampler(LossSampler):
    """Stateful per-receiver Markov chains, advanced call by call.

    The chains start in the stationary distribution on the first sample and
    thereafter evolve with the exact two-state CTMC transition probabilities
    over each inter-packet gap — including the gaps *between* successive
    :meth:`sample` calls, so retransmission rounds see the correlated state
    they would in a continuous simulation.
    """

    def __init__(self, model: GilbertLoss, rng: np.random.Generator):
        super().__init__(model)
        self.model: GilbertLoss = model
        self.rng = rng
        self._states: np.ndarray | None = None  # lazily drawn, (R,) bool
        self._state_time = 0.0

    def sample(self, times: np.ndarray) -> np.ndarray:
        times = self._check_forward(times)
        model = self.model
        lost = np.empty((model.n_receivers, times.size), dtype=bool)
        for j, t in enumerate(times):
            if self._states is None:
                pi_bad = model.stationary_loss_probability
                self._states = self.rng.random(model.n_receivers) < pi_bad
            else:
                gap = float(t) - self._state_time
                if gap > 0:
                    p_from_good, p_from_bad = model.transition_probabilities(gap)
                    threshold = np.where(self._states, p_from_bad, p_from_good)
                    self._states = self.rng.random(model.n_receivers) < threshold
            self._state_time = float(t)
            lost[:, j] = self._states
        return lost


class FullBinaryTreeLoss(LossModel):
    """Shared loss on a full binary tree of height ``d`` (Section 4.1).

    The source sits at the root, the ``R = 2^d`` receivers at the leaves and
    *every* node (root and leaves included) independently drops each packet
    with probability ``p_node``, chosen so that each receiver's end-to-end
    loss probability equals ``p``::

        p = 1 - (1 - p_node)**(d + 1)

    A drop at an interior node is shared by its whole subtree, producing the
    spatial correlation the section studies.  There is no temporal
    correlation: transmissions are independent.
    """

    def __init__(self, depth: int, p: float):
        if depth < 0:
            raise ValueError(f"tree height must be >= 0, got {depth}")
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        super().__init__(2**depth)
        self.depth = depth
        self.p = p
        self.p_node = 1.0 - (1.0 - p) ** (1.0 / (depth + 1))

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        times = _validate_times(times)
        n = times.size
        survive = rng.random((1, n)) >= self.p_node  # the root / source node
        for level in range(1, self.depth + 1):
            survive = np.repeat(survive, 2, axis=0)
            survive &= rng.random((2**level, n)) >= self.p_node
        return ~survive

    def marginal_loss_probability(self) -> np.ndarray:
        return np.full(self.n_receivers, self.p)

    def to_spec(self) -> dict:
        return {"kind": "fbt", "depth": self.depth, "p": self.p}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FullBinaryTreeLoss(d={self.depth}, p={self.p})"


class ScriptedLoss(LossModel):
    """Deterministic loss from an explicit schedule (testing aid).

    ``schedule`` is a boolean ``(R, T)`` matrix; the j-th transmission
    (regardless of its timestamp) uses column ``j``.  Transmissions beyond
    the schedule are lossless.  Sampling consumes columns statefully via
    :meth:`start`; the stateless :meth:`sample_at` starts a fresh cursor.

    This exists so protocol tests can force exact loss patterns — "the
    second parity is lost at receiver 3" — instead of fishing for seeds.
    """

    def __init__(self, schedule):
        schedule = np.asarray(schedule, dtype=bool)
        if schedule.ndim != 2:
            raise ValueError("schedule must be a 2-D (receivers, packets) matrix")
        super().__init__(schedule.shape[0])
        self.schedule = schedule

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self.start(rng).sample(times)

    def start(self, rng: np.random.Generator) -> "_ScriptedSampler":
        return _ScriptedSampler(self)

    def marginal_loss_probability(self) -> np.ndarray:
        if self.schedule.shape[1] == 0:
            return np.zeros(self.n_receivers)
        return self.schedule.mean(axis=1)

    def to_spec(self) -> dict:
        return {"kind": "scripted", "schedule": self.schedule.tolist()}


class _ScriptedSampler(LossSampler):
    def __init__(self, model: ScriptedLoss):
        super().__init__(model)
        self.model: ScriptedLoss = model
        self._cursor = 0

    def sample(self, times: np.ndarray) -> np.ndarray:
        times = self._check_forward(times)
        count = times.size
        out = np.zeros((self.model.n_receivers, count), dtype=bool)
        available = self.model.schedule.shape[1]
        take = max(0, min(count, available - self._cursor))
        if take:
            out[:, :take] = self.model.schedule[
                :, self._cursor: self._cursor + take
            ]
        self._cursor += count
        return out


class BurstyTreeLoss(LossModel):
    """Spatially *and* temporally correlated loss: Gilbert chains at nodes.

    The paper studies shared loss (Section 4.1) and burst loss (Section
    4.2) separately; real congested routers produce both at once.  This
    model runs an independent two-state Markov chain at every node of a
    full binary tree: while a node's chain is in the bad state the node
    drops every packet, so a congested interior router produces loss
    bursts shared by its whole subtree.

    Parameterisation mirrors :meth:`GilbertLoss.from_loss_and_burst`, with
    the per-node stationary loss chosen so the end-to-end rate is ``p``;
    the mean burst length applies at each node.
    """

    def __init__(
        self,
        depth: int,
        p: float,
        mean_burst_length: float = 2.0,
        packet_interval: float = 0.040,
    ):
        if depth < 0:
            raise ValueError(f"tree height must be >= 0, got {depth}")
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        super().__init__(2**depth)
        self.depth = depth
        self.p = p
        self.mean_burst_length = mean_burst_length
        self.packet_interval = packet_interval
        self.p_node = 1.0 - (1.0 - p) ** (1.0 / (depth + 1))
        self.n_nodes = 2 ** (depth + 1) - 1
        # one Gilbert process shared by all nodes' chains (they only need
        # the common rates; states are sampled per node)
        self._node_chain = GilbertLoss.from_loss_and_burst(
            self.n_nodes, self.p_node, mean_burst_length, packet_interval
        )

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self.start(rng).sample(times)

    def start(self, rng: np.random.Generator) -> "BurstyTreeSampler":
        return BurstyTreeSampler(self, rng)

    def marginal_loss_probability(self) -> np.ndarray:
        return np.full(self.n_receivers, self.p)

    def to_spec(self) -> dict:
        return {
            "kind": "bursty_tree",
            "depth": self.depth,
            "p": self.p,
            "mean_burst_length": self.mean_burst_length,
            "packet_interval": self.packet_interval,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BurstyTreeLoss(d={self.depth}, p={self.p})"


class BurstyTreeSampler(LossSampler):
    """One realisation: per-node Gilbert chains propagated down the tree."""

    def __init__(self, model: BurstyTreeLoss, rng: np.random.Generator):
        super().__init__(model)
        self.model: BurstyTreeLoss = model
        self._node_sampler = model._node_chain.start(rng)

    def sample(self, times: np.ndarray) -> np.ndarray:
        times = self._check_forward(times)
        node_bad = self._node_sampler.sample(times)  # (n_nodes, T)
        # level-order layout: node 0 is the root, children of i are 2i+1/2i+2
        survive = ~node_bad[0:1]
        offset = 1
        for level in range(1, self.model.depth + 1):
            width = 2**level
            level_ok = ~node_bad[offset: offset + width]
            survive = np.repeat(survive, 2, axis=0) & level_ok
            offset += width
        return ~survive


class TreeLoss(LossModel):
    """Shared loss on an arbitrary multicast tree.

    Parameters
    ----------
    tree:
        A ``networkx.DiGraph`` that is an out-tree rooted at ``source``.
    source:
        Root node (the sender).
    receivers:
        The receiver nodes, in the order receiver indices should follow.
        Defaults to the leaves of the tree in sorted order.
    node_loss:
        Either a scalar loss probability applied to every node, or a mapping
        ``node -> probability``.  As in the FBT model, a loss at a node
        affects its entire subtree (the node itself included; set the
        source's probability to 0 to model a loss-free sender).
    """

    def __init__(self, tree, source, receivers=None, node_loss=0.01):
        import networkx as nx

        if not nx.is_arborescence(tree):
            raise ValueError("tree must be an arborescence (rooted out-tree)")
        if source not in tree:
            raise ValueError(f"source {source!r} not in tree")
        if next(iter(nx.topological_sort(tree))) != source:
            raise ValueError(f"{source!r} is not the root of the tree")
        if receivers is None:
            receivers = sorted(
                node for node in tree if tree.out_degree(node) == 0
            )
        receivers = list(receivers)
        super().__init__(len(receivers))
        self.tree = tree
        self.source = source
        self.receivers = receivers

        self._order = list(nx.topological_sort(tree))
        self._index = {node: i for i, node in enumerate(self._order)}
        self._parent = np.full(len(self._order), -1, dtype=np.int64)
        for node in self._order:
            for child in tree.successors(node):
                self._parent[self._index[child]] = self._index[node]
        if np.isscalar(node_loss):
            self._node_p = np.full(len(self._order), float(node_loss))
        else:
            self._node_p = np.array(
                [float(node_loss[node]) for node in self._order]
            )
        if np.any((self._node_p < 0) | (self._node_p >= 1)):
            raise ValueError("node loss probabilities must be in [0, 1)")
        self._receiver_rows = np.array([self._index[r] for r in receivers])

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        times = _validate_times(times)
        n = times.size
        n_nodes = len(self._order)
        survive = rng.random((n_nodes, n)) >= self._node_p[:, None]
        for i in range(1, n_nodes):  # topological order: parents first
            parent = self._parent[i]
            if parent >= 0:
                survive[i] &= survive[parent]
        return ~survive[self._receiver_rows]

    def marginal_loss_probability(self) -> np.ndarray:
        out = np.empty(self.n_receivers)
        for j, row in enumerate(self._receiver_rows):
            survive = 1.0
            i = int(row)
            while i >= 0:
                survive *= 1.0 - self._node_p[i]
                i = int(self._parent[i])
            out[j] = 1.0 - survive
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TreeLoss(R={self.n_receivers}, nodes={len(self._order)})"


#: spec ``kind`` -> rebuilder; see :meth:`LossModel.to_spec`
_SPEC_BUILDERS = {
    "bernoulli": lambda spec: BernoulliLoss(
        int(spec["n_receivers"]), float(spec["p"])
    ),
    "heterogeneous": lambda spec: HeterogeneousLoss(
        np.asarray(spec["probabilities"], dtype=float)
    ),
    "gilbert": lambda spec: GilbertLoss(
        int(spec["n_receivers"]),
        float(spec["rate_good_to_bad"]),
        float(spec["rate_bad_to_good"]),
    ),
    "fbt": lambda spec: FullBinaryTreeLoss(
        int(spec["depth"]), float(spec["p"])
    ),
    "bursty_tree": lambda spec: BurstyTreeLoss(
        int(spec["depth"]),
        float(spec["p"]),
        float(spec["mean_burst_length"]),
        float(spec["packet_interval"]),
    ),
    "scripted": lambda spec: ScriptedLoss(
        np.asarray(spec["schedule"], dtype=bool)
    ),
}

#: spec ``kind`` -> the exact set of parameter keys its builder reads.
#: ``loss_model_from_spec`` validates against this *before* calling the
#: builder, so a malformed spec always fails with a ``ValueError`` naming
#: the valid keys — never a bare ``KeyError`` from inside a lambda.
_SPEC_FIELDS = {
    "bernoulli": frozenset({"n_receivers", "p"}),
    "heterogeneous": frozenset({"probabilities"}),
    "gilbert": frozenset(
        {"n_receivers", "rate_good_to_bad", "rate_bad_to_good"}
    ),
    "fbt": frozenset({"depth", "p"}),
    "bursty_tree": frozenset(
        {"depth", "p", "mean_burst_length", "packet_interval"}
    ),
    "scripted": frozenset({"schedule"}),
}


def register_spec_builder(kind, builder, fields):
    """Register an external loss-model spec kind (e.g. from an extension
    module) so :func:`loss_model_from_spec` can rebuild it.

    ``fields`` is the exact set of parameter keys the spec carries beside
    ``kind``; it powers the same unknown/missing-key validation the
    built-in kinds get.  Re-registering a kind replaces it, which keeps
    module reloads idempotent.
    """
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"spec kind must be a non-empty string: {kind!r}")
    _SPEC_BUILDERS[kind] = builder
    _SPEC_FIELDS[kind] = frozenset(fields)


def spec_kinds() -> tuple[str, ...]:
    """Every registered spec kind, sorted (the round-trippable models)."""
    return tuple(sorted(_SPEC_BUILDERS))


def loss_model_from_spec(spec: dict) -> LossModel:
    """Rebuild a loss model from its :meth:`LossModel.to_spec` dict.

    The round trip is exact: JSON preserves the defining float parameters
    bit-for-bit, so a rebuilt model samples identically to the original
    under the same rng stream — which is what lets the sharded Monte-Carlo
    engine promise bit-identical statistics across process boundaries.

    Every malformed spec raises ``ValueError`` — not a spec dict, unknown
    ``kind``, unknown parameter keys, or missing parameter keys — and the
    message always names the valid alternatives.
    """
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ValueError(
            f"not a loss-model spec: {spec!r}; "
            f"known kinds: {list(spec_kinds())}"
        ) from None
    if kind not in _SPEC_BUILDERS:
        # extension kinds (e.g. "domain_outage") live in modules that are
        # not imported by default; pull them in before giving up
        try:
            import repro.sim.failure  # noqa: F401  (registers its kinds)
        except ImportError:  # pragma: no cover - failure.py always ships
            pass
    if kind not in _SPEC_BUILDERS:
        raise ValueError(
            f"unknown loss-model kind {kind!r}; "
            f"known: {list(spec_kinds())}"
        )
    fields = _SPEC_FIELDS[kind]
    given = set(spec) - {"kind"}
    unknown = given - fields
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} for loss-model kind "
            f"{kind!r}; valid keys: {sorted(fields)}"
        )
    missing = fields - given
    if missing:
        raise ValueError(
            f"missing key(s) {sorted(missing)} for loss-model kind "
            f"{kind!r}; valid keys: {sorted(fields)}"
        )
    return _SPEC_BUILDERS[kind](spec)
