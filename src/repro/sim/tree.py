"""Multicast-tree builders.

Section 4.1 models the multicast distribution tree as a full binary tree
(FBT) with the source at the root and receivers at the leaves.  This module
builds that tree — and a few other shapes useful for sensitivity studies —
as ``networkx`` arborescences that plug into
:class:`repro.sim.loss.TreeLoss`.

Node naming: the root is ``0``; children of node ``v`` in a ``b``-ary tree
are ``b*v + 1 .. b*v + b``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "full_binary_tree",
    "full_kary_tree",
    "linear_chain",
    "star_topology",
    "random_multicast_tree",
    "leaves_of",
    "path_to_root",
]


def full_kary_tree(depth: int, arity: int = 2) -> nx.DiGraph:
    """Full ``arity``-ary out-tree of height ``depth`` (root = node 0)."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    tree = nx.DiGraph()
    tree.add_node(0)
    frontier = [0]
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            for j in range(1, arity + 1):
                child = arity * node + j
                tree.add_edge(node, child)
                next_frontier.append(child)
        frontier = next_frontier
    return tree


def full_binary_tree(depth: int) -> nx.DiGraph:
    """The paper's FBT of height ``depth`` with ``2**depth`` leaves."""
    return full_kary_tree(depth, arity=2)


def linear_chain(length: int) -> nx.DiGraph:
    """A degenerate tree: a chain of ``length`` hops ending in one receiver.

    The extreme case of fully shared loss the paper mentions (all losses
    shared by all receivers behave like a single receiver).
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    tree = nx.DiGraph()
    tree.add_node(0)
    for i in range(length):
        tree.add_edge(i, i + 1)
    return tree


def star_topology(n_receivers: int) -> nx.DiGraph:
    """Source directly connected to every receiver: zero shared loss.

    With per-node loss this reduces to the independent-loss model, which is
    handy for cross-validating :class:`repro.sim.loss.TreeLoss` against
    :class:`repro.sim.loss.BernoulliLoss`.
    """
    if n_receivers < 1:
        raise ValueError(f"need at least one receiver, got {n_receivers}")
    tree = nx.DiGraph()
    tree.add_node(0)
    for r in range(1, n_receivers + 1):
        tree.add_edge(0, r)
    return tree


def random_multicast_tree(
    n_receivers: int,
    rng: np.random.Generator,
    max_children: int = 4,
) -> nx.DiGraph:
    """A random out-tree with ``n_receivers`` leaves.

    Grows the tree by attaching each new internal-or-leaf node to a uniformly
    chosen existing node that still has capacity — a crude but serviceable
    stand-in for "real" multicast trees in sensitivity experiments.
    """
    if n_receivers < 1:
        raise ValueError(f"need at least one receiver, got {n_receivers}")
    if max_children < 2:
        raise ValueError("max_children must be >= 2 to grow beyond a chain")
    tree = nx.DiGraph()
    tree.add_node(0)
    open_nodes = [0]
    next_id = 1
    # First grow a random internal skeleton, then hang receivers off it.
    n_internal = max(1, n_receivers // 2)
    for _ in range(n_internal):
        parent = open_nodes[rng.integers(len(open_nodes))]
        tree.add_edge(parent, next_id)
        open_nodes.append(next_id)
        if tree.out_degree(parent) >= max_children:
            open_nodes.remove(parent)
        next_id += 1
    internal = list(tree.nodes)
    for _ in range(n_receivers):
        parent = internal[rng.integers(len(internal))]
        tree.add_edge(parent, next_id)
        next_id += 1
    return tree


def leaves_of(tree: nx.DiGraph) -> list:
    """Leaves of an out-tree in sorted order (the receiver set)."""
    return sorted(node for node in tree if tree.out_degree(node) == 0)


def path_to_root(tree: nx.DiGraph, node) -> list:
    """Nodes from ``node`` up to (and including) the root."""
    path = [node]
    while True:
        parents = list(tree.predecessors(path[-1]))
        if not parents:
            return path
        if len(parents) > 1:
            raise ValueError("not a tree: node has multiple parents")
        path.append(parents[0])
