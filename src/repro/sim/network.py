"""Event-driven multicast network connecting one sender to R receivers.

This is the transport substrate the protocol state machines
(:mod:`repro.protocols`) run on.  It models exactly what the paper's
analysis assumes:

* a downstream multicast channel from the sender to every receiver, with
  per-receiver packet loss drawn from any :class:`repro.sim.loss.LossModel`
  (so independent, heterogeneous, tree-shared and burst loss all plug in),
* an upstream/feedback channel that is also multicast (receivers hear each
  other's NAKs — required for NAK suppression) and is lossless by default,
  matching the paper's "NAKs are never lost" assumption; a feedback loss
  probability can be configured for robustness experiments,
* constant one-way propagation latency in each direction.

The network knows nothing about packet semantics; it delivers opaque
objects to registered handlers and counts what passed through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.loss import LossModel

__all__ = ["MulticastNetwork", "NetworkStats"]


@dataclass
class NetworkStats:
    """Counters of everything the network carried.

    ``downstream_sent`` counts multicast transmissions (one per send call,
    not per receiver); ``downstream_delivered`` counts per-receiver
    deliveries.  The expected number of transmissions per packet — the
    paper's E[M] — is computed by the protocol harness from these plus the
    protocol's own accounting.
    """

    downstream_sent: int = 0
    downstream_delivered: int = 0
    downstream_lost: int = 0
    feedback_sent: int = 0
    feedback_delivered: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    #: faults injected by a wrapping :class:`repro.resilience.FaultInjector`
    #: (empty unless a fault plan is in force)
    injected: dict[str, int] = field(default_factory=dict)

    def count_kind(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def count_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1


class MulticastNetwork:
    """One sender, ``R`` receivers, loss-model-driven multicast delivery.

    Parameters
    ----------
    sim:
        The discrete-event scheduler.
    loss_model:
        Joint downstream loss process across receivers.
    rng:
        Source of randomness for loss draws and feedback jitter.
    latency:
        One-way propagation delay, seconds (applies both directions).
    feedback_loss:
        Probability that a feedback packet is lost at an individual
        listener (0 reproduces the paper's assumption).
    control_loss:
        Probability that a downstream *control* packet (a POLL) is lost at
        an individual receiver.  The paper treats the feedback round as
        reliable, so the default is 0; raise it (together with receiver
        watchdogs) for robustness experiments.
    """

    def __init__(
        self,
        sim: Simulator,
        loss_model: LossModel,
        rng: np.random.Generator,
        latency: float = 0.02,
        feedback_loss: float = 0.0,
        control_loss: float = 0.0,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if not 0.0 <= feedback_loss < 1.0:
            raise ValueError(f"feedback_loss must be in [0, 1), got {feedback_loss}")
        if not 0.0 <= control_loss < 1.0:
            raise ValueError(f"control_loss must be in [0, 1), got {control_loss}")
        self.sim = sim
        self.loss_model = loss_model
        self.rng = rng
        self.latency = latency
        self.feedback_loss = feedback_loss
        self.control_loss = control_loss
        self.stats = NetworkStats()
        # one realisation of the loss process for the network's lifetime:
        # temporally-correlated models (burst loss) must carry their chain
        # state across transmissions, not restart per packet
        self._loss_sampler = loss_model.start(rng)

        self._sender_handler: Callable[[Any], None] | None = None
        self._receiver_handlers: list[Callable[[Any], None]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @property
    def n_receivers(self) -> int:
        return self.loss_model.n_receivers

    def attach_sender(self, handler: Callable[[Any], None]) -> None:
        """Register the sender's feedback-reception callback."""
        self._sender_handler = handler

    def attach_receiver(self, handler: Callable[[Any], None]) -> int:
        """Register one receiver's packet callback; returns its id."""
        if len(self._receiver_handlers) >= self.n_receivers:
            raise ValueError(
                f"loss model supports {self.n_receivers} receivers; "
                f"all slots already attached"
            )
        self._receiver_handlers.append(handler)
        return len(self._receiver_handlers) - 1

    def _require_wired(self) -> None:
        if self._sender_handler is None:
            raise RuntimeError("no sender attached")
        if len(self._receiver_handlers) != self.n_receivers:
            raise RuntimeError(
                f"{len(self._receiver_handlers)} receivers attached, "
                f"loss model expects {self.n_receivers}"
            )

    # ------------------------------------------------------------------
    # downstream (sender -> receivers)
    # ------------------------------------------------------------------
    def multicast(self, packet: Any, kind: str = "data") -> np.ndarray:
        """Multicast ``packet`` to all receivers, applying the loss model.

        Returns the boolean loss vector for observability in tests.
        Delivery happens ``latency`` seconds later via the event queue.
        """
        self._require_wired()
        lost = self._loss_sampler.sample(np.array([self.sim.now]))[:, 0]
        self.stats.downstream_sent += 1
        self.stats.count_kind(kind)
        self.stats.downstream_lost += int(lost.sum())
        self.stats.downstream_delivered += int((~lost).sum())
        for receiver_id in np.flatnonzero(~lost):
            handler = self._receiver_handlers[receiver_id]
            self.sim.schedule(self.latency, _deliver(handler, packet))
        return lost

    def multicast_control(self, packet: Any, kind: str = "poll") -> None:
        """Multicast a downstream control packet (POLL).

        Control packets ride outside the data loss model: the paper's
        analysis assumes the poll/NAK round trip is reliable.  An optional
        ``control_loss`` probability lets robustness tests break that
        assumption deliberately.
        """
        self._require_wired()
        self.stats.downstream_sent += 1
        self.stats.count_kind(kind)
        for handler in self._receiver_handlers:
            if self.control_loss and self.rng.random() < self.control_loss:
                self.stats.downstream_lost += 1
                continue
            self.stats.downstream_delivered += 1
            self.sim.schedule(self.latency, _deliver(handler, packet))

    # ------------------------------------------------------------------
    # feedback (receiver -> sender + other receivers)
    # ------------------------------------------------------------------
    def multicast_feedback(self, packet: Any, origin: int, kind: str = "nak") -> None:
        """Multicast a feedback packet from receiver ``origin``.

        Delivered to the sender and to every *other* receiver (the origin
        obviously has it), each delivery independently subject to
        ``feedback_loss``.
        """
        self._require_wired()
        self.stats.feedback_sent += 1
        self.stats.count_kind(kind)
        if self.rng.random() >= self.feedback_loss:
            self.stats.feedback_delivered += 1
            self.sim.schedule(self.latency, _deliver(self._sender_handler, packet))
        for receiver_id, handler in enumerate(self._receiver_handlers):
            if receiver_id == origin:
                continue
            if self.rng.random() < self.feedback_loss:
                continue
            self.sim.schedule(self.latency, _deliver(handler, packet))

    def unicast_feedback(self, packet: Any, kind: str = "ack") -> None:
        """Send feedback to the sender only (used by ACK-style extensions)."""
        self._require_wired()
        self.stats.feedback_sent += 1
        self.stats.count_kind(kind)
        if self.rng.random() >= self.feedback_loss:
            self.stats.feedback_delivered += 1
            self.sim.schedule(self.latency, _deliver(self._sender_handler, packet))


def _deliver(handler: Callable[[Any], None], packet: Any) -> Callable[[], None]:
    """Bind handler+packet without the late-binding lambda pitfall."""
    return lambda: handler(packet)
