"""A small discrete-event simulation engine.

Everything event-driven in this repository (the NP and N2 protocol machines,
the example applications) runs on this scheduler.  It is intentionally
minimal: a monotonic simulated clock, a binary-heap event queue with stable
FIFO ordering for simultaneous events, and cancellable timers — the three
things a NAK-suppression protocol actually needs.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(2.0, lambda: fired.append(sim.now))
>>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[1.0, 2.0]
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, runaway event loops)."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        self.cancelled = True


class Simulator:
    """Discrete-event scheduler with a floating-point clock.

    Parameters
    ----------
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after this
        many dispatched events, catching protocol livelocks in tests instead
        of hanging them.
    """

    def __init__(self, max_events: int = 50_000_000):
        self.now = 0.0
        self.max_events = max_events
        self.events_dispatched = 0
        self._queue: list[_QueueEntry] = []
        self._sequence = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._sequence), handle))
        return handle

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self.now = entry.time
            self.events_dispatched += 1
            if self.events_dispatched > self.max_events:
                raise SimulationError(
                    f"event budget exhausted after {self.max_events} events — "
                    f"likely a protocol livelock "
                    f"(sim clock t={self.now:.3f}, "
                    f"{len(self._queue)} events pending, "
                    f"{self.events_dispatched} dispatched)"
                )
            entry.handle.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run until the queue empties or the clock would pass ``until``."""
        if until is None:
            while self.step():
                pass
            return
        while self._queue:
            entry = self._queue[0]
            if entry.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            if entry.time > until:
                break
            self.step()
        self.now = max(self.now, until)
