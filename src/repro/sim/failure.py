"""Availability-driven failure domains: correlated churn as a loss process.

The paper's four loss behaviours (independent, heterogeneous, FBT-shared,
Gilbert burst) all model the *wire*.  Real deployments also lose whole
receivers to *availability* processes — machines behind a shared rack or
switch fail together, lifetimes are Weibull-ish rather than memoryless,
and measured outage logs are trace-shaped.  This module turns those
processes into the same vocabulary the rest of the repo speaks:

* **Availability generators** (:class:`WeibullAvailability`,
  :class:`PiecewiseRateAvailability`, :class:`EmpiricalAvailability`,
  :class:`TraceAvailability`) each emit a deterministic per-entity
  :class:`AvailabilitySchedule` — the **schedule determinism contract**:
  ``schedule_for(entity)`` is a pure function of ``(seed, entity)``,
  independent of call order, instance identity or process, so the same
  spec replays the same outage world in the simulator, on the real UDP
  loopback and across campaign worker processes.
* **Failure domains** (:class:`DomainTree`): receivers attach to the
  leaves of a site → rack → machine tree; an outage of any domain takes
  down its whole subtree at once.
* **Composition** (:class:`DomainOutageLoss`): a :class:`LossModel`
  whose loss is *link loss OR any-ancestor-down*, wrapping any existing
  model — and registered with :func:`repro.sim.loss.loss_model_from_spec`
  so it crosses process boundaries like every other model.
* **Churn bridges**: :func:`churn_fault_plan` drives the simulator's
  crash/rejoin fault layer from the same schedule, and
  :func:`member_blackout_windows` feeds the net chaos proxy's per-member
  blackout mode, so one seeded schedule stresses all three stacks.
"""

from __future__ import annotations

import json
import math
import zlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.resilience.faults import FaultPlan, OutageWindow, ReceiverCrash
from repro.sim.loss import (
    LossModel,
    LossSampler,
    loss_model_from_spec,
    register_spec_builder,
)

__all__ = [
    "DownWindow",
    "AvailabilitySchedule",
    "AvailabilityGenerator",
    "WeibullAvailability",
    "PiecewiseRateAvailability",
    "EmpiricalAvailability",
    "TraceAvailability",
    "GENERATOR_NAMES",
    "generator_from_spec",
    "named_generator",
    "DomainTree",
    "DomainOutageLoss",
    "churn_fault_plan",
    "member_blackout_windows",
]

#: names accepted by :func:`named_generator` (and the CLI ``--failure`` knob)
GENERATOR_NAMES = ("weibull", "piecewise", "gfs", "trace")

#: a window shorter than this is noise, not an outage; dropping it keeps
#: schedules finite even for pathological shape parameters
_MIN_WINDOW = 1e-9


@dataclass(frozen=True)
class DownWindow:
    """One ``[start, end)`` interval during which an entity is down."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end:
            raise ValueError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


class AvailabilitySchedule:
    """One entity's up/down timeline over ``[0, horizon)``.

    Windows are normalised at construction — clipped to the horizon,
    sorted, and overlapping/touching windows merged — so two schedules
    describing the same downtime compare equal window-for-window.
    """

    def __init__(
        self, windows: Iterable[DownWindow | tuple], horizon: float
    ):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        raw = []
        for window in windows:
            if not isinstance(window, DownWindow):
                window = DownWindow(float(window[0]), float(window[1]))
            if window.start >= self.horizon:
                continue
            raw.append(
                DownWindow(window.start, min(window.end, self.horizon))
            )
        raw.sort(key=lambda w: w.start)
        merged: list[DownWindow] = []
        for window in raw:
            if merged and window.start <= merged[-1].end:
                if window.end > merged[-1].end:
                    merged[-1] = DownWindow(merged[-1].start, window.end)
            else:
                merged.append(window)
        self.windows: tuple[DownWindow, ...] = tuple(merged)
        self._starts = np.array([w.start for w in merged])
        self._ends = np.array([w.end for w in merged])

    def down_at(self, time: float) -> bool:
        """Is the entity down at ``time``? (False beyond the horizon.)"""
        i = bisect_right(self._starts.tolist(), time) - 1
        return i >= 0 and time < self._ends[i]

    def down_mask(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask over ``times``: True where the entity is down."""
        times = np.asarray(times, dtype=float)
        if not self.windows:
            return np.zeros(times.shape, dtype=bool)
        i = np.searchsorted(self._starts, times, side="right") - 1
        hit = i >= 0
        return hit & (times < self._ends[np.maximum(i, 0)])

    def down_fraction(self) -> float:
        """Fraction of ``[0, horizon)`` spent down."""
        return float(sum(w.duration for w in self.windows) / self.horizon)

    @classmethod
    def union(
        cls, schedules: Sequence["AvailabilitySchedule"], horizon: float
    ) -> "AvailabilitySchedule":
        """Down whenever *any* input schedule is down (subtree semantics)."""
        windows: list[DownWindow] = []
        for schedule in schedules:
            windows.extend(schedule.windows)
        return cls(windows, horizon)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AvailabilitySchedule)
            and self.horizon == other.horizon
            and self.windows == other.windows
        )

    def __hash__(self) -> int:
        return hash((self.horizon, self.windows))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AvailabilitySchedule({len(self.windows)} windows, "
            f"down={self.down_fraction():.3f}, horizon={self.horizon})"
        )


def _entity_rng(seed: int, entity: str) -> np.random.Generator:
    # crc32 folds the entity name into the seed sequence, so schedules are
    # pure functions of (seed, entity) — no per-instance or call-order state
    return np.random.default_rng([seed, zlib.crc32(str(entity).encode())])


class AvailabilityGenerator(ABC):
    """Deterministic per-entity up/down schedules over a finite horizon.

    The contract every generator obeys (and the suite pins):

    * :meth:`schedule_for` is a **pure function** of ``(seed, entity)`` —
      same inputs, same windows, on any instance, in any order, in any
      process;
    * :meth:`availability` is the configured long-run up-fraction, which
      the empirical down-fraction of sampled schedules converges to;
    * :meth:`to_spec` round-trips through :func:`generator_from_spec`.
    """

    kind: str = ""

    def __init__(self, seed: int, horizon: float):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.seed = int(seed)
        self.horizon = float(horizon)

    def _rng(self, entity: str) -> np.random.Generator:
        return _entity_rng(self.seed, entity)

    @abstractmethod
    def schedule_for(self, entity: str) -> AvailabilitySchedule:
        """The entity's schedule; pure in ``(seed, entity)``."""

    @abstractmethod
    def availability(self) -> float:
        """Configured long-run up-fraction in ``(0, 1]``."""

    @abstractmethod
    def to_spec(self) -> dict:
        """JSON-safe dict rebuildable by :func:`generator_from_spec`."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(seed={self.seed}, "
            f"horizon={self.horizon}, A={self.availability():.3f})"
        )


class _RenewalGenerator(AvailabilityGenerator):
    """Shared alternating up/down renewal skeleton.

    Subclasses supply the per-cycle draws; the skeleton walks the clock
    from 0 to the horizon alternating up and down periods, which keeps
    every generator's schedule shape (and its purity argument) identical.
    """

    def schedule_for(self, entity: str) -> AvailabilitySchedule:
        rng = self._rng(entity)
        windows: list[DownWindow] = []
        t = 0.0
        while t < self.horizon:
            t += max(_MIN_WINDOW, self._draw_up(rng, t))
            if t >= self.horizon:
                break
            down = max(_MIN_WINDOW, self._draw_down(rng, t))
            windows.append(
                DownWindow(t, min(t + down, self.horizon))
            )
            t += down
        return AvailabilitySchedule(windows, self.horizon)

    def _draw_up(self, rng: np.random.Generator, now: float) -> float:
        raise NotImplementedError

    def _draw_down(self, rng: np.random.Generator, now: float) -> float:
        raise NotImplementedError


class WeibullAvailability(_RenewalGenerator):
    """Weibull lifetimes and repairs (the classic machine-lifetime fit).

    Up periods are ``Weibull(up_shape, up_scale)``, down periods
    ``Weibull(down_shape, down_scale)``; shape < 1 gives the heavy-tailed
    infant-mortality flavour measured in real fleets.  Long-run
    availability is ``E[up] / (E[up] + E[down])`` with
    ``E = scale * gamma(1 + 1/shape)``.
    """

    kind = "weibull"

    def __init__(
        self,
        seed: int = 0,
        horizon: float = 1000.0,
        up_shape: float = 1.5,
        up_scale: float = 8.0,
        down_shape: float = 0.9,
        down_scale: float = 0.7,
    ):
        super().__init__(seed, horizon)
        for name, value in (
            ("up_shape", up_shape),
            ("up_scale", up_scale),
            ("down_shape", down_shape),
            ("down_scale", down_scale),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.up_shape = float(up_shape)
        self.up_scale = float(up_scale)
        self.down_shape = float(down_shape)
        self.down_scale = float(down_scale)

    def _draw_up(self, rng, now):
        return self.up_scale * float(rng.weibull(self.up_shape))

    def _draw_down(self, rng, now):
        return self.down_scale * float(rng.weibull(self.down_shape))

    def availability(self) -> float:
        mean_up = self.up_scale * math.gamma(1.0 + 1.0 / self.up_shape)
        mean_down = self.down_scale * math.gamma(1.0 + 1.0 / self.down_shape)
        return mean_up / (mean_up + mean_down)

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "horizon": self.horizon,
            "up_shape": self.up_shape,
            "up_scale": self.up_scale,
            "down_shape": self.down_shape,
            "down_scale": self.down_scale,
        }


class PiecewiseRateAvailability(_RenewalGenerator):
    """Phase-dependent failure/repair rates cycling over the horizon.

    ``phases`` is a sequence of ``(duration, mtbf, mttr)`` triples; the
    schedule cycles through them, and an up (down) period starting inside
    a phase is drawn ``Exp(mtbf)`` (``Exp(mttr)``) with that phase's
    parameters — a day/night or load-dependent failure profile.  The
    configured availability is the duration-weighted mean of the per-phase
    ``mtbf / (mtbf + mttr)``; with phase durations long against the mean
    cycle this is also the empirical limit.
    """

    kind = "piecewise"

    def __init__(
        self,
        seed: int = 0,
        horizon: float = 1000.0,
        phases: Sequence[tuple[float, float, float]] = (
            (20.0, 10.0, 0.8),
            (20.0, 4.0, 0.8),
        ),
    ):
        super().__init__(seed, horizon)
        phases = tuple(
            (float(d), float(mtbf), float(mttr)) for d, mtbf, mttr in phases
        )
        if not phases:
            raise ValueError("need at least one phase")
        for duration, mtbf, mttr in phases:
            if duration <= 0 or mtbf <= 0 or mttr <= 0:
                raise ValueError(
                    f"phase values must be positive, got "
                    f"({duration}, {mtbf}, {mttr})"
                )
        self.phases = phases
        self._cycle = sum(d for d, _, _ in phases)

    def _phase_at(self, time: float) -> tuple[float, float, float]:
        position = time % self._cycle
        for duration, mtbf, mttr in self.phases:
            if position < duration:
                return duration, mtbf, mttr
            position -= duration
        return self.phases[-1]

    def _draw_up(self, rng, now):
        _, mtbf, _ = self._phase_at(now)
        return float(rng.exponential(mtbf))

    def _draw_down(self, rng, now):
        _, _, mttr = self._phase_at(now)
        return float(rng.exponential(mttr))

    def availability(self) -> float:
        weighted = sum(
            duration * mtbf / (mtbf + mttr)
            for duration, mtbf, mttr in self.phases
        )
        return weighted / self._cycle

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "horizon": self.horizon,
            "phases": [list(phase) for phase in self.phases],
        }


class EmpiricalAvailability(_RenewalGenerator):
    """GFS-style empirical availability: Exp lifetimes, quantile repairs.

    Lifetimes are exponential with mean ``mtbf``; repair durations are
    drawn from a piecewise-linear inverse CDF through
    ``repair_quantiles`` — ``((0.9, 0.4), (0.99, 2.0), (1.0, 6.0))``
    reads "90% of repairs finish within 0.4, 99% within 2, all within 6",
    the shape of measured restart-vs-reimage repair distributions.
    """

    kind = "gfs"

    def __init__(
        self,
        seed: int = 0,
        horizon: float = 1000.0,
        mtbf: float = 12.0,
        repair_quantiles: Sequence[tuple[float, float]] = (
            (0.9, 0.4),
            (0.99, 2.0),
            (1.0, 6.0),
        ),
    ):
        super().__init__(seed, horizon)
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        quantiles = tuple(
            (float(p), float(d)) for p, d in repair_quantiles
        )
        if not quantiles or quantiles[-1][0] != 1.0:
            raise ValueError("repair_quantiles must end at probability 1.0")
        last_p, last_d = 0.0, 0.0
        for p, d in quantiles:
            if not (last_p < p <= 1.0) or d <= last_d:
                raise ValueError(
                    "repair_quantiles must be strictly increasing in both "
                    f"probability and duration, got {quantiles}"
                )
            last_p, last_d = p, d
        self.mtbf = float(mtbf)
        self.repair_quantiles = quantiles

    def _draw_up(self, rng, now):
        return float(rng.exponential(self.mtbf))

    def _draw_down(self, rng, now):
        u = float(rng.random())
        p0, d0 = 0.0, 0.0
        for p1, d1 in self.repair_quantiles:
            if u <= p1:
                return d0 + (d1 - d0) * (u - p0) / (p1 - p0)
            p0, d0 = p1, d1
        return self.repair_quantiles[-1][1]

    def mean_repair(self) -> float:
        """Mean of the piecewise-linear repair distribution."""
        total, p0, d0 = 0.0, 0.0, 0.0
        for p1, d1 in self.repair_quantiles:
            total += (p1 - p0) * (d0 + d1) / 2.0
            p0, d0 = p1, d1
        return total

    def availability(self) -> float:
        return self.mtbf / (self.mtbf + self.mean_repair())

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "horizon": self.horizon,
            "mtbf": self.mtbf,
            "repair_quantiles": [list(q) for q in self.repair_quantiles],
        }


class TraceAvailability(AvailabilityGenerator):
    """Replay of a measured outage log (no randomness at all).

    ``outages`` maps entity name to ``(start, duration)`` pairs.  Entities
    absent from the trace are always up; the ``seed`` exists only for
    interface symmetry and changes nothing.  :meth:`availability` is the
    mean up-fraction over the *traced* entities.
    """

    kind = "trace"

    def __init__(
        self,
        outages: Mapping[str, Sequence[tuple[float, float]]],
        horizon: float,
        seed: int = 0,
    ):
        super().__init__(seed, horizon)
        self.outages: dict[str, tuple[tuple[float, float], ...]] = {
            str(entity): tuple(
                (float(start), float(duration))
                for start, duration in windows
            )
            for entity, windows in outages.items()
        }
        for entity, windows in self.outages.items():
            for start, duration in windows:
                if start < 0 or duration <= 0:
                    raise ValueError(
                        f"trace outage for {entity!r} must have start >= 0 "
                        f"and duration > 0, got ({start}, {duration})"
                    )

    @classmethod
    def from_ndjson(
        cls, text: str, horizon: float | None = None, seed: int = 0
    ) -> "TraceAvailability":
        """Parse an NDJSON outage log.

        One record per line: ``{"entity": ..., "start": ..., "duration":
        ...}``.  ``horizon`` defaults to the latest outage end, so a raw
        log is loadable without metadata.
        """
        outages: dict[str, list[tuple[float, float]]] = {}
        latest = 0.0
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                entity = str(record["entity"])
                start = float(record["start"])
                duration = float(record["duration"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise ValueError(
                    f"bad outage record on line {lineno}: {line!r} "
                    "(need {\"entity\", \"start\", \"duration\"})"
                ) from None
            outages.setdefault(entity, []).append((start, duration))
            latest = max(latest, start + duration)
        if horizon is None:
            horizon = latest if latest > 0 else 1.0
        return cls(outages, horizon, seed=seed)

    def schedule_for(self, entity: str) -> AvailabilitySchedule:
        windows = [
            (start, start + duration)
            for start, duration in self.outages.get(str(entity), ())
        ]
        return AvailabilitySchedule(windows, self.horizon)

    def availability(self) -> float:
        if not self.outages:
            return 1.0
        fractions = [
            1.0 - self.schedule_for(entity).down_fraction()
            for entity in self.outages
        ]
        return float(sum(fractions) / len(fractions))

    def to_spec(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "horizon": self.horizon,
            "outages": {
                entity: [list(w) for w in windows]
                for entity, windows in self.outages.items()
            },
        }


# ----------------------------------------------------------------------
# generator spec registry (same ValueError taxonomy as the loss models)
# ----------------------------------------------------------------------
_GENERATOR_BUILDERS = {
    "weibull": lambda spec: WeibullAvailability(
        seed=int(spec["seed"]),
        horizon=float(spec["horizon"]),
        up_shape=float(spec["up_shape"]),
        up_scale=float(spec["up_scale"]),
        down_shape=float(spec["down_shape"]),
        down_scale=float(spec["down_scale"]),
    ),
    "piecewise": lambda spec: PiecewiseRateAvailability(
        seed=int(spec["seed"]),
        horizon=float(spec["horizon"]),
        phases=[tuple(phase) for phase in spec["phases"]],
    ),
    "gfs": lambda spec: EmpiricalAvailability(
        seed=int(spec["seed"]),
        horizon=float(spec["horizon"]),
        mtbf=float(spec["mtbf"]),
        repair_quantiles=[tuple(q) for q in spec["repair_quantiles"]],
    ),
    "trace": lambda spec: TraceAvailability(
        outages=spec["outages"],
        horizon=float(spec["horizon"]),
        seed=int(spec["seed"]),
    ),
}

_GENERATOR_FIELDS = {
    "weibull": frozenset(
        {"seed", "horizon", "up_shape", "up_scale", "down_shape",
         "down_scale"}
    ),
    "piecewise": frozenset({"seed", "horizon", "phases"}),
    "gfs": frozenset({"seed", "horizon", "mtbf", "repair_quantiles"}),
    "trace": frozenset({"seed", "horizon", "outages"}),
}


def generator_from_spec(spec: dict) -> AvailabilityGenerator:
    """Rebuild an availability generator from its :meth:`to_spec` dict."""
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ValueError(
            f"not an availability-generator spec: {spec!r}; "
            f"known kinds: {sorted(_GENERATOR_BUILDERS)}"
        ) from None
    if kind not in _GENERATOR_BUILDERS:
        raise ValueError(
            f"unknown availability-generator kind {kind!r}; "
            f"known: {sorted(_GENERATOR_BUILDERS)}"
        )
    fields = _GENERATOR_FIELDS[kind]
    given = set(spec) - {"kind"}
    unknown = given - fields
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} for availability-generator "
            f"kind {kind!r}; valid keys: {sorted(fields)}"
        )
    missing = fields - given
    if missing:
        raise ValueError(
            f"missing key(s) {sorted(missing)} for availability-generator "
            f"kind {kind!r}; valid keys: {sorted(fields)}"
        )
    return _GENERATOR_BUILDERS[kind](spec)


def _synthetic_trace(horizon: float, n_entities: int = 16) -> dict:
    """A deterministic staggered-outage trace for the named "trace" world."""
    outages = {}
    for i in range(n_entities):
        start = ((i * 0.37 + 0.11) % 1.0) * horizon * 0.8
        duration = max(_MIN_WINDOW, 0.05 * horizon)
        outages[str(i)] = [(start, duration)]
    return outages


def named_generator(
    name: str, seed: int = 0, horizon: float = 1000.0, time_scale: float = 1.0
) -> AvailabilityGenerator:
    """A canned generator by name (the CLI/campaign ``--failure`` worlds).

    The canned parameters target ~0.88–0.97 availability with outages a
    few percent of the horizon; ``time_scale`` multiplies every duration
    parameter so the same worlds fit simulator seconds or wall-clock
    minutes.
    """
    if name not in GENERATOR_NAMES:
        raise ValueError(
            f"unknown failure generator {name!r}; known: "
            f"{sorted(GENERATOR_NAMES)}"
        )
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    s = time_scale
    if name == "weibull":
        return WeibullAvailability(
            seed=seed, horizon=horizon,
            up_shape=1.5, up_scale=8.0 * s,
            down_shape=0.9, down_scale=0.7 * s,
        )
    if name == "piecewise":
        return PiecewiseRateAvailability(
            seed=seed, horizon=horizon,
            phases=((20.0 * s, 10.0 * s, 0.8 * s), (20.0 * s, 4.0 * s, 0.8 * s)),
        )
    if name == "gfs":
        return EmpiricalAvailability(
            seed=seed, horizon=horizon, mtbf=12.0 * s,
            repair_quantiles=((0.9, 0.4 * s), (0.99, 2.0 * s), (1.0, 6.0 * s)),
        )
    return TraceAvailability(
        _synthetic_trace(horizon), horizon, seed=seed
    )


# ----------------------------------------------------------------------
# hierarchical failure domains
# ----------------------------------------------------------------------
_LEVEL_NAMES = ("site", "rack", "machine", "node")


class DomainTree:
    """A regular domain hierarchy with receivers attached to the leaves.

    ``branching`` gives the fan-out per level: ``(2, 3)`` is 2 sites of 3
    racks.  Domains are addressed by slash paths (``"site0/rack2"``); an
    outage of a domain takes down every receiver under it.  Receivers are
    spread evenly across the leaves in index order, so receiver ``r``
    attaches to leaf ``r * n_leaves // n_receivers``.
    """

    def __init__(
        self,
        n_receivers: int,
        branching: Sequence[int] = (2, 2),
        levels: Sequence[str] | None = None,
    ):
        branching = tuple(int(b) for b in branching)
        if not branching or any(b < 1 for b in branching):
            raise ValueError(
                f"branching must be non-empty positive ints, got {branching}"
            )
        if n_receivers < 1:
            raise ValueError(f"need >= 1 receiver, got {n_receivers}")
        if levels is None:
            levels = tuple(
                _LEVEL_NAMES[i] if i < len(_LEVEL_NAMES) else f"level{i}"
                for i in range(len(branching))
            )
        else:
            levels = tuple(str(level) for level in levels)
        if len(levels) != len(branching):
            raise ValueError(
                f"{len(levels)} level names for {len(branching)} levels"
            )
        self.n_receivers = int(n_receivers)
        self.branching = branching
        self.levels = levels

        # enumerate leaf paths in index order, collecting every prefix
        self._leaves: list[str] = []
        self._all_domains: list[str] = []
        seen: set[str] = set()

        def walk(prefix: str, depth: int) -> None:
            for i in range(self.branching[depth]):
                path = (
                    f"{prefix}/{self.levels[depth]}{i}"
                    if prefix
                    else f"{self.levels[depth]}{i}"
                )
                if path not in seen:
                    seen.add(path)
                    self._all_domains.append(path)
                if depth + 1 == len(self.branching):
                    self._leaves.append(path)
                else:
                    walk(path, depth + 1)

        walk("", 0)
        n_leaves = len(self._leaves)
        self._leaf_of = [
            r * n_leaves // self.n_receivers for r in range(self.n_receivers)
        ]
        self._members: dict[str, list[int]] = {d: [] for d in self._all_domains}
        for r, leaf_index in enumerate(self._leaf_of):
            for ancestor in self._prefixes(self._leaves[leaf_index]):
                self._members[ancestor].append(r)

    @staticmethod
    def _prefixes(path: str) -> list[str]:
        parts = path.split("/")
        return ["/".join(parts[: i + 1]) for i in range(len(parts))]

    @classmethod
    def regular(
        cls,
        n_receivers: int,
        branching: Sequence[int] = (2, 2),
        levels: Sequence[str] | None = None,
    ) -> "DomainTree":
        """Alias constructor mirroring :func:`repro.sim.tree` builders."""
        return cls(n_receivers, branching=branching, levels=levels)

    @property
    def leaves(self) -> tuple[str, ...]:
        return tuple(self._leaves)

    def domains(self) -> tuple[str, ...]:
        """Every domain path, shallowest first within each subtree."""
        return tuple(self._all_domains)

    def domain_of(self, receiver: int) -> str:
        """The leaf domain receiver ``receiver`` attaches to."""
        self._check_receiver(receiver)
        return self._leaves[self._leaf_of[receiver]]

    def ancestors_of(self, receiver: int) -> tuple[str, ...]:
        """Every domain containing the receiver, shallowest first."""
        self._check_receiver(receiver)
        return tuple(self._prefixes(self.domain_of(receiver)))

    def receivers_in(self, domain: str) -> tuple[int, ...]:
        """Receivers under ``domain`` (its whole subtree)."""
        try:
            return tuple(self._members[domain])
        except KeyError:
            raise ValueError(
                f"unknown domain {domain!r}; known: {self._all_domains}"
            ) from None

    def receivers_by_leaf(self) -> dict[str, tuple[int, ...]]:
        """Leaf path -> its receivers, only non-empty leaves."""
        return {
            leaf: self.receivers_in(leaf)
            for leaf in self._leaves
            if self._members[leaf]
        }

    def _check_receiver(self, receiver: int) -> None:
        if not 0 <= receiver < self.n_receivers:
            raise ValueError(
                f"receiver must be in [0, {self.n_receivers}), got {receiver}"
            )

    def to_spec(self) -> dict:
        return {
            "n_receivers": self.n_receivers,
            "branching": list(self.branching),
            "levels": list(self.levels),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "DomainTree":
        return cls(
            int(spec["n_receivers"]),
            branching=spec["branching"],
            levels=spec.get("levels"),
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DomainTree(R={self.n_receivers}, branching={self.branching})"
        )


def _leaf_schedules(
    tree: DomainTree, generator: AvailabilityGenerator
) -> dict[str, AvailabilitySchedule]:
    """Leaf path -> union of every ancestor domain's schedule.

    The union is the subtree semantics: a receiver is down whenever *any*
    domain above it is down.  Domain schedules are keyed by path, so two
    receivers under the same rack share that rack's outages exactly.
    """
    domain_schedules = {
        domain: generator.schedule_for(domain) for domain in tree.domains()
    }
    out = {}
    for leaf in tree.leaves:
        chain = [domain_schedules[d] for d in DomainTree._prefixes(leaf)]
        out[leaf] = AvailabilitySchedule.union(chain, generator.horizon)
    if obs.is_enabled():
        obs.counter("churn.windows", generator=generator.kind).inc(
            sum(len(s.windows) for s in out.values())
        )
    return out


class DomainOutageLoss(LossModel):
    """Loss = link loss OR any-ancestor-domain-down.

    Wraps any base :class:`LossModel`; while a receiver's site, rack or
    machine is down per the generator's schedule, every packet to it is
    lost regardless of what the base model says.  The schedule is a fixed
    (seed-determined) function of absolute simulation time, so two
    realisations of the same model lose to the same outage windows — the
    randomness lives entirely in the base model and in the generator's
    seed.
    """

    def __init__(
        self,
        base: LossModel,
        tree: DomainTree,
        generator: AvailabilityGenerator,
    ):
        if tree.n_receivers != base.n_receivers:
            raise ValueError(
                f"domain tree has {tree.n_receivers} receivers but the base "
                f"model has {base.n_receivers}"
            )
        super().__init__(base.n_receivers)
        self.base = base
        self.tree = tree
        self.generator = generator
        leaf_schedules = _leaf_schedules(tree, generator)
        self._schedules = [
            leaf_schedules[tree.domain_of(r)] for r in range(self.n_receivers)
        ]

    def receiver_schedule(self, receiver: int) -> AvailabilitySchedule:
        """The merged outage schedule governing ``receiver``."""
        self.tree._check_receiver(receiver)
        return self._schedules[receiver]

    def _down_mask(self, times: np.ndarray) -> np.ndarray:
        return np.stack(
            [schedule.down_mask(times) for schedule in self._schedules]
        )

    def sample_at(self, times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        base = self.base.sample_at(times, rng)
        return base | self._down_mask(np.asarray(times, dtype=float))

    def start(self, rng: np.random.Generator) -> "DomainOutageSampler":
        return DomainOutageSampler(self, rng)

    def marginal_loss_probability(self) -> np.ndarray:
        base = self.base.marginal_loss_probability()
        down = np.array(
            [schedule.down_fraction() for schedule in self._schedules]
        )
        return 1.0 - (1.0 - base) * (1.0 - down)

    def to_spec(self) -> dict:
        return {
            "kind": "domain_outage",
            "base": self.base.to_spec(),
            "tree": self.tree.to_spec(),
            "generator": self.generator.to_spec(),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DomainOutageLoss(base={self.base!r}, tree={self.tree!r}, "
            f"generator={self.generator!r})"
        )


class DomainOutageSampler(LossSampler):
    """One realisation: the base model's sampler OR the fixed schedule."""

    def __init__(self, model: DomainOutageLoss, rng: np.random.Generator):
        super().__init__(model)
        self.model: DomainOutageLoss = model
        self._base_sampler = model.base.start(rng)

    def sample(self, times: np.ndarray) -> np.ndarray:
        times = self._check_forward(times)
        base = self._base_sampler.sample(times)
        return base | self.model._down_mask(times)


register_spec_builder(
    "domain_outage",
    lambda spec: DomainOutageLoss(
        loss_model_from_spec(spec["base"]),
        DomainTree.from_spec(spec["tree"]),
        generator_from_spec(spec["generator"]),
    ),
    fields=("base", "tree", "generator"),
)


# ----------------------------------------------------------------------
# churn bridges: the same schedule drives all three stacks
# ----------------------------------------------------------------------
def churn_fault_plan(
    tree: DomainTree,
    generator: AvailabilityGenerator,
    mode: str = "crash",
    seed: int | None = None,
) -> FaultPlan:
    """A simulator :class:`FaultPlan` realising the domain schedule.

    ``mode="crash"`` turns each of a receiver's merged down-windows into a
    :class:`ReceiverCrash` (decoder state lost, rejoin re-solicits) — the
    machine-reboot reading of an outage.  ``mode="outage"`` emits one
    :class:`OutageWindow` per leaf window instead (partition only, state
    kept) — the switch-blackout reading, gentler on protocols without
    crash hooks.  The plan is a pure function of ``(tree, generator,
    mode)``, so replaying a seed replays the identical churn.
    """
    if mode not in ("crash", "outage"):
        raise ValueError(
            f"mode must be 'crash' or 'outage', got {mode!r}"
        )
    leaf_schedules = _leaf_schedules(tree, generator)
    crashes: list[ReceiverCrash] = []
    outages: list[OutageWindow] = []
    affected: set[int] = set()
    for leaf, receivers in tree.receivers_by_leaf().items():
        for window in leaf_schedules[leaf].windows:
            if mode == "crash":
                for receiver in receivers:
                    crashes.append(
                        ReceiverCrash(
                            receiver=receiver,
                            at=window.start,
                            downtime=window.duration,
                        )
                    )
            else:
                outages.append(
                    OutageWindow(
                        start=window.start,
                        duration=window.duration,
                        receivers=receivers,
                    )
                )
            affected.update(receivers)
    if obs.is_enabled():
        obs.counter(
            "churn.receivers_affected", generator=generator.kind, mode=mode
        ).inc(len(affected))
    return FaultPlan(
        seed=generator.seed if seed is None else seed,
        crashes=tuple(crashes),
        outages=tuple(outages),
    )


def member_blackout_windows(
    generator: AvailabilityGenerator,
    n_members: int,
    tree: DomainTree | None = None,
    offset: float = 0.0,
) -> tuple[tuple[tuple[float, float], ...], ...]:
    """Per-member blackout windows for the chaos proxy's churn mode.

    Member ``i`` gets the schedule of entity ``str(i)`` — or, with a
    ``tree``, the merged schedule of receiver ``i``'s domain chain, so a
    rack outage eclipses every member behind that rack at once.
    ``offset`` shifts all windows later (time to let the join handshake
    land before the first blackout).  Windows are wall-clock seconds
    since proxy start, matching :class:`repro.net.chaos.ChaosPlan`.
    """
    if n_members < 1:
        raise ValueError(f"need >= 1 member, got {n_members}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if tree is not None:
        if tree.n_receivers != n_members:
            raise ValueError(
                f"domain tree has {tree.n_receivers} receivers, "
                f"proxy expects {n_members} members"
            )
        leaf_schedules = _leaf_schedules(tree, generator)
        schedules = [
            leaf_schedules[tree.domain_of(i)] for i in range(n_members)
        ]
    else:
        schedules = [generator.schedule_for(str(i)) for i in range(n_members)]
    return tuple(
        tuple(
            (window.start + offset, window.end + offset)
            for window in schedule.windows
        )
        for schedule in schedules
    )
