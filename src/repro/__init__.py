"""repro — Parity-Based Loss Recovery for Reliable Multicast Transmission.

A full Python reproduction of Nonnenmacher, Biersack & Towsley (SIGCOMM
'97): Reed-Solomon erasure coding, the hybrid-ARQ multicast protocol NP and
its baselines, the paper's closed-form performance models, Monte-Carlo
simulators for correlated-loss scenarios, and a harness regenerating every
figure of the evaluation.

Quick start::

    from repro import ReliableMulticastSession, ScenarioConfig
    session = ReliableMulticastSession(ScenarioConfig(n_receivers=50, seed=7))
    report = session.send(open("payload.bin", "rb").read())
    print(report.summary())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.galois` / :mod:`repro.fec` — GF(2^m) + systematic RSE codec;
* :mod:`repro.sim` — event engine, loss models, trees, network;
* :mod:`repro.protocols` — NP, N2, layered-FEC state machines + harness;
* :mod:`repro.analysis` — every equation in the paper;
* :mod:`repro.mc` — vectorised Monte-Carlo experiments;
* :mod:`repro.experiments` — per-figure reproduction runners;
* :mod:`repro.core` — high-level session facade and FEC planning.
"""

from repro.core import (
    ReliableMulticastSession,
    ScenarioConfig,
    compare_protocols,
    expected_overhead,
    proactive_parities_for_single_round,
    required_parities,
)
from repro.fec import RSECodec
from repro.protocols import NPConfig, TransferReport, run_transfer
from repro.resilience import (
    DeliveryCorrupt,
    FaultInjector,
    FaultPlan,
    OutageWindow,
    ReceiverCrash,
    ResilienceSummary,
    StallReport,
    TransferError,
    TransferStalled,
    TransferTimeout,
)

__version__ = "1.0.0"

__all__ = [
    "ReliableMulticastSession",
    "ScenarioConfig",
    "compare_protocols",
    "required_parities",
    "proactive_parities_for_single_round",
    "expected_overhead",
    "RSECodec",
    "NPConfig",
    "TransferReport",
    "run_transfer",
    "FaultPlan",
    "FaultInjector",
    "OutageWindow",
    "ReceiverCrash",
    "TransferError",
    "TransferTimeout",
    "TransferStalled",
    "DeliveryCorrupt",
    "StallReport",
    "ResilienceSummary",
    "__version__",
]
