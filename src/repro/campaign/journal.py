"""Append-only JSONL journal: the campaign's crash-safe source of truth.

Every supervision event — campaign start/resume/end, task start, success,
failure, retry scheduling, quarantine — is one JSON object on one line,
written with a single ``write`` + ``flush`` + ``fsync`` so a record is
either fully on disk or absent.  The only partial state a crash can leave
is a *torn final line* (the runner died mid-append); the reader tolerates
exactly that case and surfaces it as :attr:`JournalState.torn_tail`.
Garbage anywhere *before* the final line means the file is not one of our
journals (or was edited), and raises :class:`JournalError` instead of
guessing.

Record schema (every record carries ``v`` = :data:`JOURNAL_VERSION` and
``ts``, the wall-clock append time used only by read-only status views):

``campaign_start``
    ``campaign_id``, ``seed``, ``jobs``, ``timeout``, ``retry`` (policy
    JSON), ``tasks`` (full task JSON list) — the journal is
    self-contained: ``--resume`` needs no other input.
``campaign_resume``
    ``campaign_id`` — appended each time a runner picks the journal back up.
``task_start``
    ``task``, ``attempt`` (1-based), ``seed``.
``task_success``
    ``task``, ``attempt``, ``duration``, ``result`` (payload JSON, e.g. a
    serialized :class:`~repro.experiments.series.FigureResult`),
    ``digest`` (sha256 of the canonical payload encoding), and — when the
    campaign captures telemetry — ``metrics``, the worker's
    :class:`repro.obs.MetricsSnapshot` JSON, deliberately outside the
    digested payload so result fingerprints stay metric-independent.
``task_failure``
    ``task``, ``attempt``, ``duration``, ``failure`` (``kind`` in
    ``{"error", "timeout", "crash"}``, serialized typed error with its
    ``StallReport`` when one was raised, ``exitcode``), ``will_retry``,
    ``retry_delay``.
``task_quarantined``
    ``task``, ``attempts`` — the retry budget is spent; the campaign
    completes *degraded* with this task listed.
``campaign_end``
    ``status`` (``"ok"`` | ``"degraded"``), ``quarantined`` id list.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.campaign.tasks import CampaignTask

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "JournalState",
    "TaskLedger",
    "read_journal",
    "replay_journal",
    "load_journal",
    "payload_digest",
]

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is not readable as a campaign journal."""


def _encode(record: dict) -> bytes:
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        + b"\n"
    )


def payload_digest(payload: Any) -> str:
    """sha256 over the canonical JSON encoding of a result payload.

    The digest is the deterministic fingerprint of *what a task computed*;
    resumed and uninterrupted campaigns with the same seeds must agree on
    it bit-for-bit (that is what the crash-consistency tests assert).
    """
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(encoded).hexdigest()


class JournalWriter:
    """Appends records durably; safe to reopen an existing journal.

    Reopening repairs a torn final line (a crash mid-append) by truncating
    back to the last complete record, so resumed appends never merge onto
    the fragment.  An exclusive advisory lock is held for the writer's
    lifetime: a second runner on the same journal fails fast instead of
    interleaving records.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # "a+b": writes always append (O_APPEND), reads allowed for repair
        self._file = open(self.path, "a+b")
        try:
            self._lock()
            self._repair_tail()
        except BaseException:
            self._file.close()
            raise

    def _lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        try:
            fcntl.flock(self._file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            raise JournalError(
                f"journal {self.path} is locked by another live runner; "
                f"refusing concurrent writes"
            ) from exc

    def _repair_tail(self) -> None:
        """Truncate a torn final line so new records start on a fresh line."""
        self._file.seek(0)
        raw = self._file.read()
        if not raw or raw.endswith(b"\n"):
            return
        self._file.truncate(raw.rfind(b"\n") + 1)
        self._file.flush()
        os.fsync(self._file.fileno())

    def append(self, record: dict) -> None:
        # "ts" (wall clock) is display metadata for read-only status views;
        # replay and digests never read it, so it cannot affect resume
        record = {"v": JOURNAL_VERSION, "ts": time.time(), **record}
        self._file.write(_encode(record))
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | pathlib.Path) -> tuple[list[dict], bool]:
    """All complete records, plus whether a torn final line was dropped.

    A torn final line is the expected signature of a runner killed
    mid-append and is silently tolerated; an unparsable line anywhere else
    raises :class:`JournalError`.
    """
    raw = pathlib.Path(path).read_bytes()
    records: list[dict] = []
    torn = False
    lines = raw.split(b"\n")
    # find the last line holding any content; everything after is empty
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except ValueError as exc:
            if i == last_content:
                torn = True
                break
            raise JournalError(
                f"{path}: unparsable journal record on line {i + 1} "
                f"(only the final line may be torn): {exc}"
            ) from exc
        records.append(record)
    return records, torn


@dataclass
class TaskLedger:
    """Everything the journal knows about one task."""

    task: CampaignTask
    #: attempts with a recorded terminal outcome (success or failure)
    failed_attempts: int = 0
    started_attempts: int = 0
    success: dict | None = None  # the task_success record
    quarantined: bool = False
    failures: list[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.success is not None or self.quarantined

    @property
    def torn_attempt(self) -> bool:
        """A ``task_start`` with no matching terminal record: the worker
        (or the runner) died mid-attempt.  Resume re-runs this attempt."""
        terminal = self.failed_attempts + (1 if self.success else 0)
        return not self.complete and self.started_attempts > terminal


@dataclass
class JournalState:
    """The replayed journal: campaign metadata + per-task ledgers."""

    meta: dict
    ledgers: dict[str, TaskLedger]
    torn_tail: bool = False
    finished: bool = False

    @property
    def tasks(self) -> list[CampaignTask]:
        return [ledger.task for ledger in self.ledgers.values()]

    @property
    def completed_ids(self) -> list[str]:
        return [
            task_id
            for task_id, ledger in self.ledgers.items()
            if ledger.success is not None
        ]


def replay_journal(
    records: Iterable[dict], torn_tail: bool = False
) -> JournalState:
    """Fold journal records into the resumable per-task state."""
    records = list(records)
    meta: dict | None = None
    ledgers: dict[str, TaskLedger] = {}
    finished = False
    for record in records:
        kind = record.get("type")
        if kind == "campaign_start":
            if meta is not None:
                raise JournalError("journal holds two campaign_start records")
            meta = record
            for task_json in record.get("tasks", ()):
                task = CampaignTask.from_json(task_json)
                if task.task_id in ledgers:
                    raise JournalError(
                        f"duplicate task id {task.task_id!r} in campaign_start"
                    )
                ledgers[task.task_id] = TaskLedger(task)
            continue
        if kind in ("campaign_resume", "campaign_end"):
            finished = kind == "campaign_end"
            continue
        task_id = record.get("task")
        if meta is None or task_id not in ledgers:
            raise JournalError(
                f"journal record for unknown task {task_id!r} "
                f"(missing or incomplete campaign_start?)"
            )
        ledger = ledgers[task_id]
        if kind == "task_start":
            ledger.started_attempts += 1
            finished = False
        elif kind == "task_success":
            ledger.success = record
            finished = False
        elif kind == "task_failure":
            ledger.failed_attempts += 1
            ledger.failures.append(record)
            finished = False
        elif kind == "task_quarantined":
            ledger.quarantined = True
            finished = False
        else:
            raise JournalError(f"unknown journal record type {kind!r}")
    if meta is None:
        raise JournalError("journal has no campaign_start record")
    return JournalState(
        meta=meta, ledgers=ledgers, torn_tail=torn_tail, finished=finished
    )


def load_journal(path: str | pathlib.Path) -> JournalState:
    """Read + replay in one step (the ``--resume`` entry point)."""
    records, torn = read_journal(path)
    return replay_journal(records, torn_tail=torn)
