"""Declarative campaign tasks: what to run, picklable across processes.

A :class:`CampaignTask` is pure data — an id, a kind, a spec dict, a seed
and an optional per-task timeout — so it survives the JSONL journal and
the spawn boundary unchanged.  Execution (:func:`execute_task`) resolves
the spec *inside the worker process*:

* ``"experiment"`` tasks name a figure/ablation id in
  :data:`repro.experiments.registry.EXPERIMENTS`; the task seed is
  forwarded as ``rng=`` when the runner accepts one, so simulation figures
  are reproducible cells.
* ``"callable"`` tasks name any module-level function by ``"pkg.mod:func"``
  dotted path plus kwargs — the escape hatch for sweep cells, ad-hoc
  studies and the crash-consistency test fixtures.  The task seed is
  forwarded as ``seed=`` when the function accepts one.

Sweep campaigns are expanded up front: :func:`sweep_grid_tasks` turns a
named grid (one task per parameter cell) into independent tasks, which is
exactly the shape the supervisor wants — cells fail, retry and resume
individually instead of losing a whole grid to one bad point.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "CampaignTask",
    "experiment_task",
    "callable_task",
    "tasks_from_registry",
    "sweep_grid_tasks",
    "SWEEP_GRIDS",
    "em_bound_cell",
    "failure_em_cell",
    "execute_task",
    "serialize_result",
    "deserialize_result",
]

_KINDS = ("experiment", "callable")


@dataclass(frozen=True)
class CampaignTask:
    """One unit of supervised work: a figure, an ablation or a sweep cell."""

    task_id: str
    kind: str
    spec: dict = field(default_factory=dict)
    #: forwarded to the runner as ``rng=seed`` when it accepts one; part of
    #: the journal record so a resumed cell re-runs bit-identically
    seed: int | None = None
    #: per-task wall-clock override (None -> the campaign default)
    timeout: float | None = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown task kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"task timeout must be positive, got {self.timeout}"
            )

    def to_json(self) -> dict:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "spec": dict(self.spec),
            "seed": self.seed,
            "timeout": self.timeout,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignTask":
        seed = data.get("seed")
        timeout = data.get("timeout")
        return cls(
            task_id=data["task_id"],
            kind=data["kind"],
            spec=dict(data.get("spec", {})),
            seed=None if seed is None else int(seed),
            timeout=None if timeout is None else float(timeout),
        )


def experiment_task(
    figure_id: str,
    seed: int | None = None,
    timeout: float | None = None,
    **kwargs: Any,
) -> CampaignTask:
    """A task running one registered experiment (validated eagerly)."""
    from repro.experiments.registry import EXPERIMENTS, experiment_ids

    if figure_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {figure_id!r}; known: {experiment_ids()}"
        )
    return CampaignTask(
        task_id=figure_id,
        kind="experiment",
        spec={"experiment_id": figure_id, "kwargs": kwargs},
        seed=seed,
        timeout=timeout,
    )


def callable_task(
    task_id: str,
    target: str,
    seed: int | None = None,
    timeout: float | None = None,
    **kwargs: Any,
) -> CampaignTask:
    """A task calling ``target`` (``"pkg.mod:func"``) with ``kwargs``."""
    if ":" not in target:
        raise ValueError(
            f"target must be 'module:function', got {target!r}"
        )
    return CampaignTask(
        task_id=task_id,
        kind="callable",
        spec={"target": target, "kwargs": kwargs},
        seed=seed,
        timeout=timeout,
    )


def tasks_from_registry(
    figure_ids: Iterable[str] | None = None, seed: int = 0, **kwargs: Any
) -> list[CampaignTask]:
    """One task per registered experiment (all of them by default).

    Extra ``kwargs`` (e.g. the sharded-MC knobs ``mc_jobs`` / ``target_ci``)
    are forwarded to each runner that accepts them by signature and
    silently dropped for the rest, so one flag can apply across a mixed
    campaign of analytic and simulated figures.
    """
    from repro.experiments.registry import EXPERIMENTS, experiment_ids

    ids = experiment_ids() if figure_ids is None else list(figure_ids)
    tasks = []
    for figure_id in ids:
        experiment = EXPERIMENTS.get(figure_id)
        accepted = {}
        if experiment is not None and kwargs:
            params = inspect.signature(experiment.runner).parameters
            accepted = {
                key: value for key, value in kwargs.items() if key in params
            }
        # unknown ids flow through to experiment_task's canonical error
        tasks.append(experiment_task(figure_id, seed=seed, **accepted))
    return tasks


# ----------------------------------------------------------------------
# sweep grids: named parameter grids expanded one-task-per-cell
# ----------------------------------------------------------------------
def em_bound_cell(
    k: int,
    p: float,
    receivers: Sequence[int] = (1, 10, 100, 1000, 10**4, 10**5, 10**6),
) -> "Any":
    """One ``(k, p)`` cell of the integrated-FEC lower-bound sweep."""
    from repro.analysis import integrated
    from repro.experiments.sweep import sweep

    return sweep(
        lambda R: integrated.expected_transmissions_lower_bound(k, p, R),
        x=("R", list(receivers)),
        figure_id=f"em_bound_k{k}_p{p:g}",
        title=f"integrated-FEC lower bound, k={k}, p={p:g}",
        y_label="E[M]",
    )


def codec_em_cell(
    codec: str,
    k: int = 7,
    h: int = 3,
    p: float = 0.01,
    receivers: Sequence[int] = (1, 10, 100, 1000),
    replications: int = 60,
    seed: int = 0,
) -> "Any":
    """One codec cell of the per-scheme layered E[M] sweep.

    ``h`` is the *requested* parity count; each codec clamps it onto its
    supported lattice via :meth:`~repro.fec.code.ErasureCode.nearest_h`
    (``xor`` -> 1, ``rect`` -> rows + cols, ...), so one grid definition
    covers codes with incompatible geometry constraints.
    """
    from repro.experiments.series import FigureResult, Series
    from repro.fec.registry import get_codec
    from repro.mc.layered import simulate_layered
    from repro.sim.loss import BernoulliLoss

    h_eff = get_codec(codec).nearest_h(k, h)
    values, errors = [], []
    for receiver_count in receivers:
        result = simulate_layered(
            BernoulliLoss(receiver_count, p),
            k,
            h_eff,
            replications,
            rng=seed,
            codec=codec,
        )
        values.append(result.mean)
        errors.append(result.stderr)
    return FigureResult(
        figure_id=f"codec_em_{codec}",
        title=f"layered E[M], codec={codec} ({k}+{h_eff}), p={p:g}",
        x_label="R",
        y_label="E[M]",
        series=[
            Series(
                f"{codec} ({k}+{h_eff})",
                list(map(float, receivers)),
                values,
                errors,
            )
        ],
        notes=f"requested h={h}, effective h={h_eff}",
    )


def failure_em_cell(
    failure: str = "weibull",
    protocol: str = "np",
    receivers: tuple[int, ...] = (4, 8),
    replications: int = 3,
    seed: int = 0,
):
    """One cell of the ``failure_em`` sweep: E[M] under one churn world.

    Thin campaign wrapper over
    :func:`repro.experiments.figures_failure.failure_em` (imported
    lazily, like every cell, so workers pay only for what they run).
    """
    from repro.experiments.figures_failure import failure_em

    return failure_em(
        failure=failure,
        protocol=protocol,
        receivers=receivers,
        replications=replications,
        seed=seed,
    )


#: grid name -> list of (cell task id suffix, target, kwargs)
SWEEP_GRIDS: dict[str, list[tuple[str, str, dict]]] = {
    "em_bound": [
        (
            f"k{k}_p{p:g}",
            "repro.campaign.tasks:em_bound_cell",
            {"k": k, "p": p},
        )
        for k in (7, 20, 100)
        for p in (0.001, 0.01, 0.05)
    ],
    # one cell per registered erasure code, same requested geometry: the
    # clamped effective h and the honest decodability both come from the
    # codec itself, so new registrations extend this grid by name alone
    "codec_em": [
        (
            codec,
            "repro.campaign.tasks:codec_em_cell",
            {"codec": codec, "k": 7, "h": 3},
        )
        for codec in ("rse", "xor", "rect", "lrc")
    ],
    # every availability world crossed with both churned protocols: one
    # resumable campaign sweeps the whole correlated-failure matrix
    "failure_em": [
        (
            f"{failure}_{protocol}",
            "repro.campaign.tasks:failure_em_cell",
            {"failure": failure, "protocol": protocol},
        )
        for failure in ("weibull", "piecewise", "gfs", "trace")
        for protocol in ("np", "layered")
    ],
}


def sweep_grid_tasks(
    grid: str = "em_bound", seed: int = 0
) -> list[CampaignTask]:
    """Expand a named sweep grid into one campaign task per cell."""
    try:
        cells = SWEEP_GRIDS[grid]
    except KeyError:
        raise KeyError(
            f"unknown sweep grid {grid!r}; known: {sorted(SWEEP_GRIDS)}"
        ) from None
    return [
        callable_task(f"sweep_{grid}_{suffix}", target, seed=seed, **kwargs)
        for suffix, target, kwargs in cells
    ]


# ----------------------------------------------------------------------
# execution + result payloads (runs inside the worker process)
# ----------------------------------------------------------------------
def _resolve_target(path: str) -> Any:
    module_name, _, attribute = path.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ImportError(
            f"{module_name!r} has no attribute {attribute!r}"
        ) from None


def execute_task(task: CampaignTask) -> Any:
    """Run one task to completion and return its raw result object."""
    if task.kind == "experiment":
        from repro.experiments.registry import EXPERIMENTS, run_experiment

        experiment = EXPERIMENTS[task.spec["experiment_id"]]
        kwargs = dict(task.spec.get("kwargs", {}))
        if (
            task.seed is not None
            and "rng" in inspect.signature(experiment.runner).parameters
        ):
            kwargs.setdefault("rng", task.seed)
        # through run_experiment, not the bare runner: a campaign worker
        # then emits the same figure.<id> span a sequential run would
        return run_experiment(task.spec["experiment_id"], **kwargs)
    fn = _resolve_target(task.spec["target"])
    kwargs = dict(task.spec.get("kwargs", {}))
    if (
        task.seed is not None
        and "seed" in inspect.signature(fn).parameters
    ):
        kwargs.setdefault("seed", task.seed)
    return fn(**kwargs)


def serialize_result(result: Any) -> dict:
    """Journal-ready payload for a task result.

    Figures and transfer reports serialize losslessly (tagged, so
    :func:`deserialize_result` restores the original object); anything
    else JSON-serializable is stored verbatim; the rest degrade to their
    ``repr``.
    """
    from repro.experiments.series import FigureResult
    from repro.protocols.harness import TransferReport

    if isinstance(result, FigureResult):
        return {"type": "figure", "data": result.to_json()}
    if isinstance(result, TransferReport):
        return {"type": "transfer_report", "data": result.to_json()}
    try:
        import json

        # sort_keys matches the journal's canonical encoding: a payload
        # that cannot sort (e.g. mixed-type dict keys) must degrade here,
        # in the worker, not crash the supervisor's digest/journal write
        json.dumps(result, sort_keys=True)
    except (TypeError, ValueError):
        return {"type": "repr", "data": repr(result)}
    return {"type": "json", "data": result}


def deserialize_result(payload: dict) -> Any:
    """Inverse of :func:`serialize_result` (repr payloads stay strings)."""
    from repro.experiments.series import FigureResult
    from repro.protocols.harness import TransferReport

    kind = payload.get("type")
    if kind == "figure":
        return FigureResult.from_json(payload["data"])
    if kind == "transfer_report":
        return TransferReport.from_json(payload["data"])
    return payload.get("data")
