"""Campaign outcomes: per-task results, retries, timings, quarantine.

:class:`CampaignReport` has two serialized faces:

* :meth:`CampaignReport.to_json` — the full operational record including
  attempt counts and wall-clock timings.
* :meth:`CampaignReport.canonical` — the *deterministic* subset: task ids,
  seeds, statuses, result digests and failure types.  This is what a
  campaign computed, stripped of how long it took and how often the
  scheduler had to retry around external interference — so an interrupted
  campaign resumed from its journal is bit-identical to an uninterrupted
  run with the same seeds, which the crash-consistency suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["TaskOutcome", "CampaignReport"]

#: wall-clock histogram bucket upper bounds (seconds); last bucket is open
_HISTOGRAM_EDGES = (0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)


@dataclass(frozen=True)
class TaskOutcome:
    """Terminal state of one campaign task."""

    task_id: str
    status: str  # "ok" | "quarantined"
    attempts: int
    #: wall-clock seconds summed over recorded attempts
    duration: float
    seed: int | None = None
    #: sha256 of the canonical result payload (None when quarantined)
    result_digest: str | None = None
    #: failure kind per failed attempt: "error" | "timeout" | "crash"
    failure_kinds: tuple[str, ...] = ()
    #: typed error class name of the final failure (quarantined tasks)
    error_type: str | None = None
    error_message: str | None = None

    def __post_init__(self) -> None:
        if self.status not in ("ok", "quarantined"):
            raise ValueError(f"unknown outcome status {self.status!r}")
        object.__setattr__(
            self, "failure_kinds", tuple(self.failure_kinds)
        )

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def to_json(self) -> dict:
        return {
            "task_id": self.task_id,
            "status": self.status,
            "attempts": self.attempts,
            "duration": self.duration,
            "seed": self.seed,
            "result_digest": self.result_digest,
            "failure_kinds": list(self.failure_kinds),
            "error_type": self.error_type,
            "error_message": self.error_message,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TaskOutcome":
        return cls(
            task_id=data["task_id"],
            status=data["status"],
            attempts=int(data.get("attempts", 1)),
            duration=float(data.get("duration", 0.0)),
            seed=data.get("seed"),
            result_digest=data.get("result_digest"),
            failure_kinds=tuple(data.get("failure_kinds", ())),
            error_type=data.get("error_type"),
            error_message=data.get("error_message"),
        )


@dataclass
class CampaignReport:
    """Everything a finished (possibly degraded) campaign has to say."""

    campaign_id: str
    outcomes: list[TaskOutcome] = field(default_factory=list)
    #: total supervisor wall clock, start to finish, this run only
    wall_clock: float = 0.0
    #: tasks satisfied straight from the journal on resume (no re-run)
    resumed_tasks: int = 0

    @property
    def quarantined(self) -> tuple[str, ...]:
        return tuple(
            o.task_id for o in self.outcomes if o.status == "quarantined"
        )

    @property
    def ok_tasks(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def status(self) -> str:
        """``"ok"`` iff every task delivered a result; else ``"degraded"``."""
        return "degraded" if self.quarantined else "ok"

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    def wall_clock_histogram(self) -> list[tuple[str, int]]:
        """Per-task duration counts in fixed log-ish buckets."""
        counts = [0] * (len(_HISTOGRAM_EDGES) + 1)
        for outcome in self.outcomes:
            for i, edge in enumerate(_HISTOGRAM_EDGES):
                if outcome.duration < edge:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        labels = [f"<{edge:g}s" for edge in _HISTOGRAM_EDGES] + [
            f">={_HISTOGRAM_EDGES[-1]:g}s"
        ]
        return list(zip(labels, counts))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "outcomes": [o.to_json() for o in self.outcomes],
            "quarantined": list(self.quarantined),
            "wall_clock": self.wall_clock,
            "resumed_tasks": self.resumed_tasks,
            "total_retries": self.total_retries,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignReport":
        return cls(
            campaign_id=data["campaign_id"],
            outcomes=[
                TaskOutcome.from_json(o) for o in data.get("outcomes", ())
            ],
            wall_clock=float(data.get("wall_clock", 0.0)),
            resumed_tasks=int(data.get("resumed_tasks", 0)),
        )

    def canonical(self) -> dict:
        """The deterministic subset: what was computed, not how it went.

        Excludes durations, attempt counts and resume bookkeeping — those
        legitimately differ when a campaign is interrupted and resumed —
        and keeps ids, seeds, statuses, result digests and failure types,
        which must not.
        """
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "tasks": [
                {
                    "task_id": o.task_id,
                    "seed": o.seed,
                    "status": o.status,
                    "result_digest": o.result_digest,
                    "error_type": o.error_type,
                }
                for o in sorted(self.outcomes, key=lambda o: o.task_id)
            ],
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, indent=None)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_table(self) -> str:
        header = ["task", "status", "attempts", "time", "result"]
        rows = [header]
        for outcome in self.outcomes:
            if outcome.status == "ok":
                detail = (outcome.result_digest or "")[:12]
            else:
                detail = outcome.error_type or (
                    outcome.failure_kinds[-1] if outcome.failure_kinds else "?"
                )
            rows.append(
                [
                    outcome.task_id,
                    outcome.status,
                    str(outcome.attempts),
                    f"{outcome.duration:.2f}s",
                    detail,
                ]
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        lines = [
            f"campaign {self.campaign_id}: {len(self.outcomes)} tasks, "
            f"{self.ok_tasks} ok, {len(self.quarantined)} quarantined — "
            f"{self.status.upper()} "
            f"({self.total_retries} retries, "
            f"{self.resumed_tasks} resumed, wall clock {self.wall_clock:.1f}s)"
        ]
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                ).rstrip()
            )
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        histogram = "  ".join(
            f"[{label}: {count}]"
            for label, count in self.wall_clock_histogram()
            if count
        )
        if histogram:
            lines.append(f"wall-clock histogram: {histogram}")
        if self.quarantined:
            lines.append(f"quarantined: {' '.join(self.quarantined)}")
        return "\n".join(lines)
