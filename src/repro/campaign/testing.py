"""Spawn-safe fixture tasks for exercising the campaign supervisor.

The crash-consistency suite (and the CI smoke job) need tasks with
*controllable* pathologies — hang, crash, typed failure, crash-once —
that are importable by dotted path inside a freshly spawned worker.
Keeping them in the package (rather than in ``tests/``) guarantees they
resolve no matter where the worker process starts, and gives examples a
ready-made vocabulary for demos.  Nothing here is imported by production
code paths.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time

from repro.experiments.series import FigureResult, Series
from repro.resilience.errors import (
    DeliveryCorrupt,
    TransferStalled,
    TransferTimeout,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.report import ReceiverStall, StallReport

__all__ = [
    "tiny_figure",
    "transfer_cell",
    "slow_figure",
    "hang",
    "fail_typed",
    "crash_sigkill_once",
    "mixed_key_result",
    "sample_stall_report",
    "fixture_tasks",
    "run_fixture_campaign",
]


def tiny_figure(label: str = "cell", seed: int = 0, points: int = 4) -> FigureResult:
    """A deterministic, instantly-computed figure keyed by (label, seed)."""
    xs = [float(i) for i in range(points)]
    ys = [float((seed + 1) * (i + 1)) for i in range(points)]
    return FigureResult(
        figure_id=f"tiny_{label}",
        title=f"deterministic fixture {label}",
        x_label="x",
        y_label="y",
        series=[Series(label, xs, ys)],
    )


def transfer_cell(seed: int = 0, payload_bytes: int = 4096) -> dict:
    """One small seeded NP transfer; returns the report as a dict.

    Used by the observability integration tests: each cell emits the
    full set of ``transfer.*`` instruments from a fixed RNG stream, so
    the supervisor's merged registry must be bit-identical no matter
    how the cells are spread over workers.
    """
    from repro.protocols.harness import run_transfer
    from repro.protocols.np_protocol import NPConfig
    from repro.sim.loss import BernoulliLoss

    payload = bytes((seed + i) % 251 for i in range(payload_bytes))
    config = NPConfig(k=7, h=8, packet_size=256, packet_interval=0.01)
    report = run_transfer(
        "np", payload, BernoulliLoss(8, 0.05), config, rng=seed
    )
    assert report.verified
    return report.to_json()


def slow_figure(
    label: str = "slow", seed: int = 0, duration: float = 0.3
) -> FigureResult:
    """``tiny_figure`` after sleeping ``duration`` seconds (interruptible)."""
    time.sleep(duration)
    return tiny_figure(label=label, seed=seed)


def mixed_key_result(seed: int = 0) -> dict:
    """A payload ``json.dumps`` accepts but ``sort_keys=True`` rejects
    (mixed-type dict keys): exercises the degrade-to-repr path end-to-end."""
    return {1: "one", "b": seed}


def hang(ignore_sigterm: bool = False) -> None:
    """Never return.  With ``ignore_sigterm`` the worker shrugs off the
    supervisor's SIGTERM, forcing the SIGKILL escalation path."""
    if ignore_sigterm:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(3600)


def sample_stall_report(seed: int = 0) -> StallReport:
    """A small but fully-populated stall report for failure fixtures."""
    return StallReport(
        protocol="np",
        sim_time=12.5,
        events_dispatched=4096,
        pending_events=3,
        receivers=(
            ReceiverStall(
                receiver_id=1,
                missing_groups=(2, 5),
                last_progress_time=11.0,
                watchdog_retries=4,
                watchdog_exhaustions=1,
                crashes=0,
            ),
        ),
        abandoned_groups=(5,),
        injected_faults={"corrupted": 3, "outage_dropped": 7},
        seed=seed,
        fault_plan=FaultPlan(seed=seed, corrupt_prob=0.01),
    )


_TYPED = {
    "timeout": TransferTimeout,
    "stalled": TransferStalled,
    "corrupt": DeliveryCorrupt,
}


def fail_typed(kind: str = "stalled", seed: int = 0) -> None:
    """Raise one of the typed transfer errors, stall report attached."""
    error_cls = _TYPED[kind]
    raise error_cls(
        f"fixture {kind} failure (seed={seed})", sample_stall_report(seed)
    )


def fixture_tasks(n: int = 4, duration: float = 0.2, seed: int = 0) -> list:
    """``n`` deterministic slow-figure tasks (distinct ids and seeds)."""
    from repro.campaign.tasks import callable_task

    return [
        callable_task(
            f"cell{i:02d}",
            "repro.campaign.testing:slow_figure",
            seed=seed + i,
            label=f"cell{i:02d}",
            duration=duration,
        )
        for i in range(n)
    ]


def run_fixture_campaign(
    journal: str | None = None,
    n: int = 4,
    duration: float = 0.2,
    seed: int = 0,
    jobs: int = 1,
    timeout: float = 60.0,
):
    """Run a deterministic fixture campaign; spawn-importable by dotted
    path so crash tests can SIGKILL the *supervisor* mid-campaign."""
    from repro.campaign.supervisor import CampaignRunner

    runner = CampaignRunner(
        fixture_tasks(n=n, duration=duration, seed=seed),
        jobs=jobs,
        timeout=timeout,
        journal_path=journal,
        seed=seed,
        campaign_id="fixture",
    )
    return runner.run()


def crash_sigkill_once(
    sentinel: str, label: str = "flaky", seed: int = 0
) -> FigureResult:
    """SIGKILL the worker mid-task on the first run; succeed afterwards.

    ``sentinel`` is a filesystem path recording that the first (fatal)
    attempt already happened — the supervisor's retry then sees a clean
    deterministic success, so the canonical report matches a run where
    the kill never happened.
    """
    path = pathlib.Path(sentinel)
    if not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("first attempt died here\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return tiny_figure(label=label, seed=seed)
