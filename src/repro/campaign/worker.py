"""The spawned worker: runs exactly one task attempt in its own process.

Isolation is the point — a segfault, OOM kill or runaway loop in a figure
runner costs one attempt, never the campaign.  The contract with the
supervisor is a single message on a one-shot pipe:

* ``("ok", payload)`` — the task returned; ``payload`` is the
  journal-ready dict from :func:`repro.campaign.tasks.serialize_result`.
* ``("ok", payload, metrics)`` — same, when the supervisor asked for
  telemetry (``capture_metrics=True``): ``metrics`` is the worker's
  merged :class:`repro.obs.MetricsSnapshot` as a JSON dict, covering
  everything the attempt recorded (codec counters, transfer counters,
  spans-as-histograms).  It rides beside the payload, never inside it,
  so result digests stay metric-independent.
* ``("error", exc)`` — the task raised; typed errors from
  :mod:`repro.resilience.errors` pickle with their ``StallReport``
  attached (their ``__reduce__`` guarantees it), so diagnostics cross the
  process boundary intact.  Unpicklable exceptions degrade to a
  ``RuntimeError`` carrying the original type name and message.

No message at all means the process died before finishing — the
supervisor reads the exit code and classifies the attempt as a crash (or
a timeout, if it was the one doing the killing).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.campaign.tasks import CampaignTask, execute_task, serialize_result

__all__ = ["worker_main"]


def worker_main(
    conn: Any, task_json: dict, capture_metrics: bool = False
) -> None:
    """Process entry point: execute the task, send one message, exit.

    ``task_json`` (not a live :class:`CampaignTask`) keeps the spawn
    pickle surface to plain data; the task is rebuilt here, inside the
    worker, where its imports are resolved.  With ``capture_metrics``,
    telemetry is enabled for the whole attempt and the resulting snapshot
    is appended to the success message (failures ship no metrics — a
    failed attempt's partial counters would double-count on retry).
    """
    if capture_metrics:
        from repro import obs

        obs.reset()
        obs.enable()
    try:
        task = CampaignTask.from_json(task_json)
        result = execute_task(task)
        message: tuple = ("ok", serialize_result(result))
        if capture_metrics:
            message = (*message, obs.snapshot().to_json())
    except BaseException as exc:  # noqa: BLE001 - the pipe IS the error path
        try:
            pickle.dumps(exc)
            message = ("error", exc)
        except Exception:
            message = (
                "error",
                RuntimeError(f"{type(exc).__name__}: {exc}"),
            )
    try:
        conn.send(message)
    finally:
        conn.close()
