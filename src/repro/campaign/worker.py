"""The spawned worker: runs exactly one task attempt in its own process.

Isolation is the point — a segfault, OOM kill or runaway loop in a figure
runner costs one attempt, never the campaign.  The contract with the
supervisor is a single message on a one-shot pipe:

* ``("ok", payload)`` — the task returned; ``payload`` is the
  journal-ready dict from :func:`repro.campaign.tasks.serialize_result`.
* ``("ok", payload, metrics)`` — same, when the supervisor asked for
  telemetry (``capture_metrics=True``): ``metrics`` is the worker's
  merged :class:`repro.obs.MetricsSnapshot` as a JSON dict, covering
  everything the attempt recorded (codec counters, transfer counters,
  spans-as-histograms).  It rides beside the payload, never inside it,
  so result digests stay metric-independent.
* ``("ok", payload, metrics, trace)`` — same again, when the supervisor
  also minted a ``trace_id`` for the attempt: every span the worker
  records carries that trace id (set as the ambient trace context), and
  ``trace`` ships the span records home — capped at
  :data:`SPAN_SHIP_CAP`, with anything beyond the cap counted under
  ``obs.spans_dropped{reason="ship_cap"}`` *before* the snapshot is
  taken, so the drop is visible in every export path.
* ``("error", exc)`` — the task raised; typed errors from
  :mod:`repro.resilience.errors` pickle with their ``StallReport``
  attached (their ``__reduce__`` guarantees it), so diagnostics cross the
  process boundary intact.  Unpicklable exceptions degrade to a
  ``RuntimeError`` carrying the original type name and message.

No message at all means the process died before finishing — the
supervisor reads the exit code and classifies the attempt as a crash (or
a timeout, if it was the one doing the killing).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.campaign.tasks import CampaignTask, execute_task, serialize_result

__all__ = ["worker_main", "SPAN_SHIP_CAP"]

#: Most span records one attempt ships home over the result pipe.  A
#: runaway span producer costs trace fidelity (counted, never silent),
#: not a pipe stuffed past its buffer.
SPAN_SHIP_CAP = 512


def _trace_message(trace_id: str) -> dict:
    """Span records for the success message, capped and drop-counted."""
    from repro import obs

    records = [record.to_json() for record in obs.recorder()]
    truncated = max(0, len(records) - SPAN_SHIP_CAP)
    if truncated:
        # labelled so it cannot collide with the unlabelled instrument
        # runtime.snapshot() levels from the recorder's own drop count
        obs.counter("obs.spans_dropped", reason="ship_cap").inc(truncated)
    return {
        "trace_id": trace_id,
        "spans": records[:SPAN_SHIP_CAP],
        "dropped": obs.recorder().dropped + truncated,
    }


def worker_main(
    conn: Any,
    task_json: dict,
    capture_metrics: bool = False,
    trace_id: str | None = None,
) -> None:
    """Process entry point: execute the task, send one message, exit.

    ``task_json`` (not a live :class:`CampaignTask`) keeps the spawn
    pickle surface to plain data; the task is rebuilt here, inside the
    worker, where its imports are resolved.  With ``capture_metrics``,
    telemetry is enabled for the whole attempt and the resulting snapshot
    is appended to the success message (failures ship no metrics — a
    failed attempt's partial counters would double-count on retry).
    With a ``trace_id``, it becomes the ambient trace context for the
    whole attempt, so every span recorded here stitches into the
    campaign-wide trace (see :mod:`repro.obs.tracecontext`).
    """
    if capture_metrics:
        from repro import obs

        obs.reset()
        obs.enable()
        if trace_id is not None:
            from repro.obs.tracecontext import set_trace_id

            set_trace_id(trace_id)
    try:
        task = CampaignTask.from_json(task_json)
        result = execute_task(task)
        message: tuple = ("ok", serialize_result(result))
        if capture_metrics:
            trace = (
                None if trace_id is None else _trace_message(trace_id)
            )
            message = (*message, obs.snapshot().to_json())
            if trace is not None:
                message = (*message, trace)
    except BaseException as exc:  # noqa: BLE001 - the pipe IS the error path
        try:
            pickle.dumps(exc)
            message = ("error", exc)
        except Exception:
            message = (
                "error",
                RuntimeError(f"{type(exc).__name__}: {exc}"),
            )
    try:
        conn.send(message)
    finally:
        conn.close()
