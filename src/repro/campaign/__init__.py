"""Crash-safe campaign runner: the orchestration layer above transfers.

The repo's real workload is whole *campaigns* — 18 paper figures plus
ablations and open-ended sweeps, each a long stochastic simulation.  This
package supervises them the way a training/eval job runner supervises
jobs:

* :mod:`repro.campaign.tasks` — declarative, picklable task descriptions
  derived from the experiment registry and named sweep grids.
* :mod:`repro.campaign.worker` — one spawned process per attempt; typed
  transfer errors cross the boundary with their diagnostics intact.
* :mod:`repro.campaign.retry` — bounded exponential backoff + jitter,
  the same policy shape as the transfer-level NAK watchdog.
* :mod:`repro.campaign.journal` — fsync'd append-only JSONL; every
  supervision event is durable before it is acted on, a torn final line
  is tolerated, and ``--resume`` rebuilds everything from the file alone.
* :mod:`repro.campaign.supervisor` — deadlines with SIGTERM→SIGKILL
  escalation, retry scheduling, quarantine-and-continue degradation.
* :mod:`repro.campaign.report` — :class:`CampaignReport` with a
  deterministic ``canonical()`` form (resume must be bit-identical to an
  uninterrupted run) and a rendered table for humans.

Wired into ``python -m repro.experiments`` via ``--jobs / --timeout /
--retries / --journal / --resume``.
"""

from repro.campaign.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalState,
    JournalWriter,
    TaskLedger,
    load_journal,
    payload_digest,
    read_journal,
    replay_journal,
)
from repro.campaign.report import CampaignReport, TaskOutcome
from repro.campaign.retry import RetryPolicy
from repro.campaign.status import (
    CampaignStatus,
    TaskStatus,
    campaign_status,
    render_status,
)
from repro.campaign.supervisor import CampaignRunner, run_campaign
from repro.campaign.tasks import (
    SWEEP_GRIDS,
    CampaignTask,
    callable_task,
    deserialize_result,
    execute_task,
    experiment_task,
    serialize_result,
    sweep_grid_tasks,
    tasks_from_registry,
)

__all__ = [
    "CampaignRunner",
    "run_campaign",
    "CampaignReport",
    "TaskOutcome",
    "CampaignTask",
    "RetryPolicy",
    "experiment_task",
    "callable_task",
    "tasks_from_registry",
    "sweep_grid_tasks",
    "SWEEP_GRIDS",
    "execute_task",
    "serialize_result",
    "deserialize_result",
    "JournalWriter",
    "JournalError",
    "JournalState",
    "TaskLedger",
    "JOURNAL_VERSION",
    "read_journal",
    "replay_journal",
    "load_journal",
    "payload_digest",
    "CampaignStatus",
    "TaskStatus",
    "campaign_status",
    "render_status",
]
