"""Read-only campaign status: what a journal says is happening right now.

The ``--status`` CLI view for an operator watching (or post-morteming) a
campaign.  It reads the journal exactly like ``--resume`` does — complete
records only, a torn final line silently tolerated — but **never takes
the writer lock**: a live runner keeps appending undisturbed while any
number of status readers poll the same file.

Per-task states are derived purely from the record sequence:

``succeeded`` / ``quarantined``
    A terminal record exists.
``running``
    A ``task_start`` with no terminal record yet.  If the journal later
    turns out to be from a crashed runner, "running" really means "torn
    attempt that resume will re-run" — a read-only view cannot tell a
    live worker from a dead one, and says so in the rendering.
``retrying``
    The latest attempt failed with ``will_retry`` set; the next attempt
    has not started.
``pending``
    No attempt recorded yet.

Elapsed times come from the ``ts`` wall-clock stamps the writer puts on
every record (journals from before those stamps existed render with
blank timing rather than failing).
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

from repro.campaign.journal import read_journal, replay_journal

__all__ = ["CampaignStatus", "TaskStatus", "campaign_status", "render_status"]

#: Task display states, in rendering order.
_STATES = ("running", "retrying", "pending", "succeeded", "quarantined")


@dataclass
class TaskStatus:
    """One task's current state as the journal tells it."""

    task_id: str
    state: str  # one of _STATES
    attempts: int = 0
    #: ts of the latest task_start (running tasks), for elapsed display
    started_ts: float | None = None
    #: summed durations of recorded attempts
    spent: float = 0.0
    error: str | None = None


@dataclass
class CampaignStatus:
    """The whole campaign's current state as the journal tells it."""

    campaign_id: str
    tasks: dict[str, TaskStatus]
    torn_tail: bool
    finished: bool
    #: ts of the campaign_start record, None on pre-``ts`` journals
    started_ts: float | None = None
    #: ts of the newest record — the last sign of life
    last_ts: float | None = None
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        return self.counts.get("running", 0)


def campaign_status(
    path: str | pathlib.Path, now: float | None = None
) -> CampaignStatus:
    """Derive the campaign's current state from its journal, read-only.

    ``now`` (wall-clock seconds, defaults to ``time.time()``) only feeds
    elapsed-time rendering; record interpretation is time-independent.
    """
    records, torn = read_journal(path)
    state = replay_journal(records, torn_tail=torn)

    # latest task_start per task (replay keeps counts, not timestamps)
    last_start_ts: dict[str, float] = {}
    last_ts: float | None = None
    for record in records:
        ts = record.get("ts")
        if ts is not None:
            last_ts = float(ts)
        if record.get("type") == "task_start" and ts is not None:
            last_start_ts[record["task"]] = float(ts)

    tasks: dict[str, TaskStatus] = {}
    for task_id, ledger in state.ledgers.items():
        attempts = ledger.started_attempts
        spent = sum(
            float(f.get("duration", 0.0)) for f in ledger.failures
        )
        if ledger.success is not None:
            spent += float(ledger.success.get("duration", 0.0))
            task_state = "succeeded"
        elif ledger.quarantined:
            task_state = "quarantined"
        elif ledger.started_attempts > ledger.failed_attempts:
            task_state = "running"
        elif ledger.failed_attempts:
            task_state = "retrying"
        else:
            task_state = "pending"
        error = None
        if ledger.failures:
            info = ledger.failures[-1].get("failure", {})
            err = info.get("error") or {}
            error = (
                f"{err.get('error_type', info.get('kind', 'error'))}: "
                f"{err.get('message', '')}"
            )
        tasks[task_id] = TaskStatus(
            task_id=task_id,
            state=task_state,
            attempts=attempts,
            started_ts=(
                last_start_ts.get(task_id) if task_state == "running" else None
            ),
            spent=spent,
            error=error,
        )

    counts = {name: 0 for name in _STATES}
    for status in tasks.values():
        counts[status.state] += 1
    meta = state.meta
    start_ts = float(meta["ts"]) if meta.get("ts") is not None else None
    return CampaignStatus(
        campaign_id=meta.get("campaign_id", "campaign"),
        tasks=tasks,
        torn_tail=torn,
        finished=state.finished,
        started_ts=start_ts,
        last_ts=last_ts,
        counts=counts,
    )


def _fmt_elapsed(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(
    status: CampaignStatus,
    now: float | None = None,
    alerts: list | None = None,
) -> str:
    """Human-readable status table (the ``--status`` output).

    ``alerts`` — :class:`~repro.obs.slo.DriftAlert` records (typically
    from :func:`repro.obs.read_alerts` over the run's telemetry NDJSON);
    breached ones are appended so a drifting run is visible from the
    same terminal that watches its tasks.
    """
    now = time.time() if now is None else now
    lines = []
    head = f"campaign {status.campaign_id!r}"
    if status.finished:
        head += " — finished"
    elif status.torn_tail:
        head += " — torn tail (runner died mid-append?)"
    if status.started_ts is not None:
        head += f" — started {_fmt_elapsed(max(0.0, now - status.started_ts))} ago"
    if status.last_ts is not None and not status.finished:
        head += f", last activity {_fmt_elapsed(max(0.0, now - status.last_ts))} ago"
    lines.append(head)
    summary = "  ".join(
        f"{name}={status.counts.get(name, 0)}"
        for name in _STATES
        if status.counts.get(name, 0)
    )
    lines.append(summary or "no tasks")
    for name in _STATES:
        group = [t for t in status.tasks.values() if t.state == name]
        if not group or name == "pending":
            continue
        for task in sorted(group, key=lambda t: t.task_id):
            line = f"  [{task.state:11s}] {task.task_id}  attempts={task.attempts}"
            if task.state == "running" and task.started_ts is not None:
                line += (
                    f"  in-flight {_fmt_elapsed(max(0.0, now - task.started_ts))}"
                )
            elif task.spent:
                line += f"  spent {_fmt_elapsed(task.spent)}"
            if task.error and task.state in ("retrying", "quarantined"):
                line += f"  last-error {task.error}"
            lines.append(line)
    if status.counts.get("running") and not status.finished:
        lines.append(
            "  (read-only view: a 'running' task on a dead runner is a torn "
            "attempt that --resume will re-run)"
        )
    breached = [a for a in (alerts or ()) if getattr(a, "breached", False)]
    if breached:
        lines.append(f"drift alerts ({len(breached)} breached):")
        # newest evaluation per SLO: later records supersede earlier ones
        latest: dict[str, object] = {a.slo: a for a in breached}
        for name in sorted(latest):
            lines.append(f"  !! {latest[name].describe()}")
    return "\n".join(lines)
