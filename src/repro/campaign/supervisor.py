"""The campaign supervisor: isolation, deadlines, retries, quarantine.

:class:`CampaignRunner` drives a set of :class:`CampaignTask` objects to
completion under four guarantees:

* **Isolation** — every attempt runs in a freshly *spawned* process
  (:mod:`repro.campaign.worker`); a segfault, OOM kill or hang costs one
  attempt, never the campaign.  At most ``jobs`` workers run at once.
* **Deadlines** — an attempt exceeding its wall-clock budget is sent
  SIGTERM; a worker that ignores it (or is wedged in C code) is SIGKILLed
  after ``term_grace`` seconds.  Both classify the attempt as ``timeout``.
* **Bounded retry** — failed attempts are re-run under a
  :class:`~repro.campaign.retry.RetryPolicy` (exponential backoff +
  seeded jitter, the NAK-watchdog shape).  A task that exhausts its
  budget is *quarantined*: the campaign completes **degraded** with the
  quarantine list on the report, mirroring the transfer layer's
  eject-and-continue GroupAbort semantics rather than failing the world.
* **Durability** — with a journal attached, every supervision event is
  fsync'd to JSONL *before* the supervisor acts on it, so killing the
  runner at any instant loses at most the in-flight attempts.
  :meth:`CampaignRunner.resume` replays the journal, keeps completed
  results (their payloads live in the journal), re-runs pending or torn
  tasks, and produces a report whose :meth:`~CampaignReport.canonical`
  form is bit-identical to an uninterrupted run with the same seeds.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import time
import zlib
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.campaign.journal import (
    JournalState,
    JournalWriter,
    load_journal,
    payload_digest,
)
from repro.obs.export import TelemetryFlusher
from repro.obs.httpd import MetricsEndpoint
from repro.obs.metrics import MetricsSnapshot
from repro.obs.slo import DriftMonitor
from repro.obs.tracecontext import mint_trace_id
from repro.campaign.report import CampaignReport, TaskOutcome
from repro.campaign.retry import RetryPolicy
from repro.campaign.tasks import CampaignTask
from repro.campaign.worker import worker_main
from repro.resilience.errors import TransferError

__all__ = ["CampaignRunner", "run_campaign"]


@dataclass
class _TaskState:
    """Supervisor-side ledger for one task."""

    task: CampaignTask
    failed_attempts: int = 0
    failure_kinds: list[str] = field(default_factory=list)
    #: (error_type, message) of the most recent failure
    last_error: tuple[str, str] | None = None
    durations: list[float] = field(default_factory=list)
    success_payload: dict | None = None
    success_digest: str | None = None
    success_attempt: int = 0
    quarantined: bool = False
    resumed: bool = False
    eligible_at: float = 0.0

    @property
    def complete(self) -> bool:
        return self.success_payload is not None or self.quarantined


@dataclass
class _Running:
    """One live worker process."""

    state: _TaskState
    attempt: int
    proc: Any
    conn: Any
    started: float
    deadline: float
    term_sent_at: float | None = None
    timed_out: bool = False
    killed: bool = False


class CampaignRunner:
    """Supervised, resumable, parallel execution of campaign tasks."""

    def __init__(
        self,
        tasks: Sequence[CampaignTask],
        *,
        jobs: int = 1,
        timeout: float = 600.0,
        retry: RetryPolicy | None = None,
        journal_path: str | pathlib.Path | None = None,
        seed: int = 0,
        campaign_id: str = "campaign",
        term_grace: float = 2.0,
        capture_metrics: bool = False,
        metrics_port: int | None = None,
        telemetry_path: str | pathlib.Path | None = None,
        telemetry_interval: float = 5.0,
        slos: Sequence[Any] | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if term_grace < 0:
            raise ValueError(f"term_grace must be >= 0, got {term_grace}")
        if metrics_port is not None and not 0 <= metrics_port <= 65535:
            raise ValueError(f"metrics_port {metrics_port} outside 0..65535")
        if telemetry_interval < 0:
            raise ValueError(
                f"telemetry_interval must be >= 0, got {telemetry_interval}"
            )
        tasks = list(tasks)
        if not tasks:
            raise ValueError("a campaign needs at least one task")
        seen: set[str] = set()
        for task in tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
        self.tasks = tasks
        self.jobs = jobs
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal_path = (
            None if journal_path is None else pathlib.Path(journal_path)
        )
        self.seed = seed
        self.campaign_id = campaign_id
        self.term_grace = term_grace
        self.capture_metrics = capture_metrics or (
            metrics_port is not None or telemetry_path is not None
        )
        self.metrics_port = metrics_port
        self.telemetry_path = (
            None if telemetry_path is None else pathlib.Path(telemetry_path)
        )
        self.telemetry_interval = float(telemetry_interval)
        #: drift SLOs evaluated on every telemetry flush; breached alerts
        #: land in the NDJSON stream and on ``last_alerts``
        self.drift_monitor = DriftMonitor(list(slos or ()))
        #: exact merge of every successful worker's MetricsSnapshot
        #: (empty unless ``capture_metrics``); nested shard workers roll
        #: up through their figure worker, so one merge level suffices
        self.worker_metrics = MetricsSnapshot()
        #: span records shipped home by successful workers, each already
        #: stamped with its attempt's trace id — feed to
        #: :func:`repro.obs.stitch_traces` / ``to_trace_events``
        self.worker_spans: list[dict] = []
        #: ``http://host:port`` of the live scrape endpoint while running
        self.metrics_address: tuple[str, int] | None = None
        self._states = {
            task.task_id: _TaskState(task=task) for task in tasks
        }
        self._writer: JournalWriter | None = None
        self._flusher: TelemetryFlusher | None = None
        self._endpoint: MetricsEndpoint | None = None
        self._resuming = False
        #: task_id -> deserializable result payload (ok tasks only)
        self.results: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        journal_path: str | pathlib.Path,
        *,
        jobs: int | None = None,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        term_grace: float = 2.0,
        capture_metrics: bool | None = None,
        metrics_port: int | None = None,
        telemetry_path: str | pathlib.Path | None = None,
        telemetry_interval: float = 5.0,
        slos: Sequence[Any] | None = None,
    ) -> "CampaignRunner":
        """Rebuild a runner from its journal; completed work is kept.

        The journal is self-contained (tasks, seeds, policy all travel in
        ``campaign_start``), so this is the only input a resume needs.
        Overrides (``jobs`` etc.) apply to the remaining work only.
        """
        state = load_journal(journal_path)
        meta = state.meta
        runner = cls(
            state.tasks,
            jobs=jobs if jobs is not None else int(meta.get("jobs", 1)),
            timeout=(
                timeout
                if timeout is not None
                else float(meta.get("timeout", 600.0))
            ),
            retry=(
                retry
                if retry is not None
                else RetryPolicy.from_json(meta.get("retry", {}))
            ),
            journal_path=journal_path,
            seed=int(meta.get("seed", 0)),
            campaign_id=meta.get("campaign_id", "campaign"),
            term_grace=term_grace,
            capture_metrics=(
                capture_metrics
                if capture_metrics is not None
                else bool(meta.get("capture_metrics", False))
            ),
            metrics_port=metrics_port,
            telemetry_path=telemetry_path,
            telemetry_interval=telemetry_interval,
            slos=slos,
        )
        runner._preload(state)
        return runner

    def _preload(self, state: JournalState) -> None:
        """Fold replayed journal ledgers into supervisor task state."""
        self._resuming = True
        for task_id, ledger in state.ledgers.items():
            task_state = self._states[task_id]
            task_state.failed_attempts = ledger.failed_attempts
            for failure in ledger.failures:
                info = failure.get("failure", {})
                task_state.failure_kinds.append(info.get("kind", "error"))
                error = info.get("error") or {}
                task_state.last_error = (
                    error.get("error_type", info.get("kind", "error")),
                    error.get("message", ""),
                )
                task_state.durations.append(float(failure.get("duration", 0.0)))
            if ledger.success is not None:
                record = ledger.success
                task_state.success_payload = record.get("result")
                task_state.success_digest = record.get("digest")
                task_state.success_attempt = int(record.get("attempt", 1))
                task_state.durations.append(float(record.get("duration", 0.0)))
                task_state.resumed = True
                self.results[task_id] = task_state.success_payload
                # metrics journaled with the success survive a resume, so
                # the rollup equals an uninterrupted run's (exact merge)
                if record.get("metrics"):
                    self._merge_worker_metrics(record["metrics"], task_id)
                if record.get("trace"):
                    self._collect_worker_trace(record["trace"])
            elif ledger.quarantined:
                task_state.quarantined = True
                task_state.resumed = True
            # torn attempts (task_start without a terminal record) are
            # simply re-run: the attempt number restarts where it tore

    def _merge_worker_metrics(self, metrics_json: dict, task_id: str) -> None:
        """Fold one worker's shipped snapshot into the campaign rollup.

        A malformed snapshot costs telemetry fidelity, never the
        campaign — the result payload it rode beside is already safe."""
        try:
            self.worker_metrics = self.worker_metrics.merge(
                MetricsSnapshot.from_json(metrics_json)
            )
        except (KeyError, TypeError, ValueError):
            if obs.is_enabled():
                obs.counter("campaign.metrics_rejected").inc()

    def _collect_worker_trace(self, trace_json: Any) -> None:
        """Fold one worker's shipped span records into the campaign trace.

        Like metrics, a malformed trace costs fidelity, never the run."""
        if not isinstance(trace_json, dict):
            return
        spans = trace_json.get("spans")
        if isinstance(spans, list):
            self.worker_spans.extend(
                span for span in spans if isinstance(span, dict)
            )

    # ------------------------------------------------------------------
    # live telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> MetricsSnapshot:
        """What the scrape endpoint and flusher see: the worker rollup
        merged with this process's own registry (if telemetry is on).

        Read-only and allocation-fresh, so it is safe to call from the
        endpoint's serving thread while the supervision loop mutates
        ``worker_metrics`` (the attribute swap is atomic)."""
        snapshot = self.worker_metrics
        if obs.is_enabled():
            snapshot = snapshot.merge(obs.snapshot())
        return snapshot

    @property
    def last_alerts(self) -> list:
        """Drift alerts from the most recent SLO evaluation."""
        return list(self.drift_monitor.last_alerts)

    def _open_telemetry(self) -> None:
        if self.metrics_port is not None:
            self._endpoint = MetricsEndpoint(
                provider=self.telemetry_snapshot, port=self.metrics_port
            )
            self.metrics_address = self._endpoint.start_in_thread()
        if self.telemetry_path is not None:
            self._flusher = TelemetryFlusher(
                self.telemetry_path,
                interval=self.telemetry_interval,
                monitor=self.drift_monitor,
                source=self.telemetry_snapshot,
            )

    def _close_telemetry(self) -> None:
        if self._flusher is not None:
            self._flusher.close()
            self._flusher = None
        if self._endpoint is not None:
            self._endpoint.stop_in_thread()
            self._endpoint = None
            self.metrics_address = None

    # ------------------------------------------------------------------
    # journal plumbing
    # ------------------------------------------------------------------
    def _journal(self, record: dict) -> None:
        if self._writer is not None:
            self._writer.append(record)

    def _open_journal(self) -> None:
        if self.journal_path is None:
            return
        fresh = (
            not self.journal_path.exists()
            or self.journal_path.stat().st_size == 0
        )
        if fresh and self._resuming:
            raise ValueError(
                f"resume requested but journal {self.journal_path} is empty"
            )
        if not fresh and not self._resuming:
            raise ValueError(
                f"journal {self.journal_path} already has records; "
                f"resume from it or pick a new path"
            )
        self._writer = JournalWriter(self.journal_path)
        if fresh:
            self._journal(
                {
                    "type": "campaign_start",
                    "campaign_id": self.campaign_id,
                    "seed": self.seed,
                    "jobs": self.jobs,
                    "timeout": self.timeout,
                    "retry": self.retry.to_json(),
                    "capture_metrics": self.capture_metrics,
                    "tasks": [task.to_json() for task in self.tasks],
                }
            )
        else:
            self._journal(
                {"type": "campaign_resume", "campaign_id": self.campaign_id}
            )

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        started_wall = time.monotonic()
        self._open_journal()
        self._open_telemetry()
        ctx = multiprocessing.get_context("spawn")
        running: list[_Running] = []
        pending = [
            state for state in self._states.values() if not state.complete
        ]
        try:
            while pending or running:
                now = time.monotonic()
                # launch everything eligible while worker slots are free
                for state in sorted(pending, key=lambda s: s.eligible_at):
                    if len(running) >= self.jobs:
                        break
                    if state.eligible_at > now:
                        continue
                    pending.remove(state)
                    running.append(self._launch(ctx, state, now))
                self._wait(running, pending, now)
                now = time.monotonic()
                self._escalate(running, now)
                for done in self._reap(running):
                    running.remove(done)
                    self._settle(done, pending)
                if self._flusher is not None:
                    self._flusher.maybe_flush()
        finally:
            for leftover in running:
                leftover.proc.kill()
                leftover.proc.join()
                leftover.conn.close()
            self._close_telemetry()
            self._close_journal()
        if self.drift_monitor.slos:
            # final verdict over the complete rollup, flusher or not
            self.drift_monitor.evaluate(self.telemetry_snapshot())
        return self._build_report(time.monotonic() - started_wall)

    def _close_journal(self) -> None:
        if self._writer is None:
            return
        if all(state.complete for state in self._states.values()):
            quarantined = sorted(
                task_id
                for task_id, state in self._states.items()
                if state.quarantined
            )
            self._journal(
                {
                    "type": "campaign_end",
                    "status": "degraded" if quarantined else "ok",
                    "quarantined": quarantined,
                }
            )
        self._writer.close()
        self._writer = None

    def _launch(
        self, ctx, state: _TaskState, now: float
    ) -> _Running:
        attempt = state.failed_attempts + 1
        # deterministic per-attempt trace id: resume re-mints the same one
        trace_id = mint_trace_id(
            "campaign", self.campaign_id, state.task.task_id, attempt
        )
        self._journal(
            {
                "type": "task_start",
                "task": state.task.task_id,
                "attempt": attempt,
                "seed": state.task.seed,
                "trace": trace_id,
            }
        )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                state.task.to_json(),
                self.capture_metrics,
                trace_id if self.capture_metrics else None,
            ),
            name=f"campaign-{state.task.task_id}-a{attempt}",
        )
        proc.start()
        child_conn.close()
        budget = state.task.timeout or self.timeout
        return _Running(
            state=state,
            attempt=attempt,
            proc=proc,
            conn=parent_conn,
            started=now,
            deadline=now + budget,
        )

    def _wait(
        self,
        running: list[_Running],
        pending: list[_TaskState],
        now: float,
    ) -> None:
        """Block until a worker speaks/dies, a deadline passes, or a
        backoff delay expires — whichever is soonest."""
        horizons = [run.deadline for run in running]
        horizons.extend(
            run.term_sent_at + self.term_grace
            for run in running
            if run.term_sent_at is not None
        )
        if len(running) < self.jobs:
            horizons.extend(state.eligible_at for state in pending)
        wait = max(0.0, min(horizons, default=now + 0.1) - now)
        if not running:
            if wait:
                time.sleep(min(wait, 0.5))
            return
        # wait on result pipes AND process sentinels: a worker whose
        # result exceeds the pipe buffer blocks in send() until we recv,
        # so the pipe must be able to wake us while the process lives
        handles = [run.conn for run in running]
        handles.extend(run.proc.sentinel for run in running)
        mp_connection.wait(handles, timeout=min(wait, 0.5) if wait else 0.05)

    def _escalate(self, running: list[_Running], now: float) -> None:
        """SIGTERM at the deadline, SIGKILL ``term_grace`` later."""
        for run in running:
            if not run.proc.is_alive():
                continue
            if run.term_sent_at is None:
                if now >= run.deadline:
                    run.timed_out = True
                    run.term_sent_at = now
                    run.proc.terminate()
            elif now >= run.term_sent_at + self.term_grace:
                run.killed = True
                run.proc.kill()

    def _reap(self, running: list[_Running]) -> list[_Running]:
        """Workers that finished: sent their message or died trying."""
        done = []
        for run in running:
            if run.conn.poll() or not run.proc.is_alive():
                done.append(run)
        return done

    def _settle(self, run: _Running, pending: list[_TaskState]) -> None:
        """Classify one finished attempt and journal the outcome."""
        message = None
        try:
            if run.conn.poll():
                message = run.conn.recv()
        except (EOFError, OSError):
            message = None
        except Exception as exc:  # unpicklable/foreign exception payload
            message = ("error", RuntimeError(f"undecodable worker error: {exc}"))
        run.proc.join(timeout=5.0)
        if run.proc.is_alive():  # pragma: no cover - send/exit race backstop
            run.proc.kill()
            run.proc.join()
        run.conn.close()
        duration = time.monotonic() - run.started
        state = run.state
        state.durations.append(duration)

        if message is not None and message[0] == "ok":
            # a result that squeaked in just as the deadline hit still
            # counts: the work is done and journaled
            payload = message[1]
            # telemetry (capture_metrics) arrives as a third element; it
            # rides beside the payload in the journal record, outside the
            # digest, so result digests stay metric-independent
            metrics_json = message[2] if len(message) > 2 else None
            trace_json = message[3] if len(message) > 3 else None
            try:
                digest = payload_digest(payload)
            except (TypeError, ValueError):
                # a payload the canonical encoding rejects (worker-side
                # serialize_result should have degraded it already) must
                # cost this record its fidelity, never the campaign
                payload = {"type": "repr", "data": repr(payload)}
                digest = payload_digest(payload)
            record = {
                "type": "task_success",
                "task": state.task.task_id,
                "attempt": run.attempt,
                "duration": duration,
                "result": payload,
                "digest": digest,
            }
            if metrics_json is not None:
                record["metrics"] = metrics_json
            if trace_json is not None:
                # beside the payload, outside the digest, like metrics
                record["trace"] = trace_json
            self._journal(record)
            state.success_payload = payload
            state.success_digest = digest
            state.success_attempt = run.attempt
            self.results[state.task.task_id] = payload
            if metrics_json is not None:
                self._merge_worker_metrics(metrics_json, state.task.task_id)
            if trace_json is not None:
                self._collect_worker_trace(trace_json)
            self._observe_settle("ok", duration, run)
            return

        # ---- failure paths ------------------------------------------
        if message is not None and message[0] == "error":
            exc = message[1]
            kind = "error"
            error_json = (
                exc.to_json()
                if isinstance(exc, TransferError)
                else {
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "report": None,
                }
            )
        elif run.timed_out:
            kind = "timeout"
            budget = state.task.timeout or self.timeout
            error_json = {
                "error_type": "TaskTimeout",
                "message": (
                    f"attempt exceeded {budget:g}s wall clock "
                    f"(SIGTERM{' -> SIGKILL' if run.killed else ''})"
                ),
                "report": None,
            }
        else:
            kind = "crash"
            error_json = {
                "error_type": "WorkerCrashed",
                "message": (
                    f"worker exited with code {run.proc.exitcode} "
                    f"before reporting a result"
                ),
                "report": None,
            }
        state.failed_attempts += 1
        state.failure_kinds.append(kind)
        state.last_error = (
            error_json["error_type"],
            error_json["message"],
        )
        will_retry = state.failed_attempts < self.retry.max_attempts
        delay = 0.0
        if will_retry:
            delay = self.retry.delay(
                state.failed_attempts, self._retry_rng(state)
            )
        self._journal(
            {
                "type": "task_failure",
                "task": state.task.task_id,
                "attempt": run.attempt,
                "duration": duration,
                "failure": {
                    "kind": kind,
                    "error": error_json,
                    "exitcode": run.proc.exitcode,
                },
                "will_retry": will_retry,
                "retry_delay": delay,
            }
        )
        self._observe_settle(kind, duration, run, retried=will_retry)
        if will_retry:
            state.eligible_at = time.monotonic() + delay
            pending.append(state)
        else:
            self._journal(
                {
                    "type": "task_quarantined",
                    "task": state.task.task_id,
                    "attempts": state.failed_attempts,
                }
            )
            state.quarantined = True

    def _observe_settle(
        self,
        status: str,
        duration: float,
        run: _Running,
        retried: bool = False,
    ) -> None:
        """Supervisor-side instruments for one settled attempt (no-op
        unless telemetry is enabled in this process)."""
        if not obs.is_enabled():
            return
        obs.counter("campaign.attempts", status=status).inc()
        obs.histogram("campaign.task_seconds", status=status).observe(duration)
        if retried:
            obs.counter("campaign.retries").inc()
        if run.timed_out:
            obs.counter(
                "campaign.escalations",
                signal="SIGKILL" if run.killed else "SIGTERM",
            ).inc()

    def _retry_rng(self, state: _TaskState) -> np.random.Generator:
        """Jitter rng seeded by (campaign, task, attempt): replayable."""
        return np.random.default_rng(
            [
                self.seed & 0xFFFFFFFF,
                zlib.crc32(state.task.task_id.encode()),
                state.failed_attempts,
            ]
        )

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    def _build_report(self, wall_clock: float) -> CampaignReport:
        outcomes = []
        for task in self.tasks:
            state = self._states[task.task_id]
            if state.success_payload is not None:
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status="ok",
                        attempts=state.success_attempt,
                        duration=sum(state.durations),
                        seed=task.seed,
                        result_digest=state.success_digest,
                        failure_kinds=tuple(state.failure_kinds),
                    )
                )
            else:
                error_type, error_message = state.last_error or (None, None)
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status="quarantined",
                        attempts=state.failed_attempts,
                        duration=sum(state.durations),
                        seed=task.seed,
                        failure_kinds=tuple(state.failure_kinds),
                        error_type=error_type,
                        error_message=error_message,
                    )
                )
        return CampaignReport(
            campaign_id=self.campaign_id,
            outcomes=outcomes,
            wall_clock=wall_clock,
            resumed_tasks=sum(
                1 for state in self._states.values() if state.resumed
            ),
        )


def run_campaign(
    tasks: Sequence[CampaignTask], **kwargs: Any
) -> CampaignReport:
    """One-call convenience wrapper: build a runner and run it."""
    return CampaignRunner(tasks, **kwargs).run()
