"""Bounded retry with exponential backoff + jitter for campaign tasks.

Deliberately the same policy *shape* as the NAK watchdog in
:class:`repro.protocols.np_protocol.NPConfig` (base interval, multiplicative
backoff >= 1, interval cap, jitter as a fraction of the interval, bounded
budget): one retry vocabulary across the transfer layer and the campaign
layer.  The jitter draw is seeded per ``(campaign seed, task id, attempt)``
by the supervisor, so a re-run of the same campaign schedules identical
delays — retries are part of the reproducible record, not operational
noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed task is re-run.

    ``retries`` is the budget *after* the first attempt: a task is run at
    most ``retries + 1`` times before quarantine.
    """

    retries: int = 1
    base_delay: float = 0.5
    backoff: float = 2.0
    max_delay: float = 30.0
    #: fraction of each interval randomized away (0 disables jitter);
    #: like the watchdog, jitter only ever *shortens* the wait, so
    #: ``max_delay`` stays a hard ceiling
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Seconds to wait before re-running after failed ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        if self.base_delay == 0:
            return 0.0
        interval = self.base_delay * self.backoff ** (attempt - 1)
        if self.max_delay:
            interval = min(interval, self.max_delay)
        if self.jitter:
            interval *= 1.0 - self.jitter * float(rng.random())
        return interval

    def to_json(self) -> dict:
        return {
            "retries": self.retries,
            "base_delay": self.base_delay,
            "backoff": self.backoff,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RetryPolicy":
        return cls(
            retries=int(data.get("retries", 1)),
            base_delay=float(data.get("base_delay", 0.5)),
            backoff=float(data.get("backoff", 2.0)),
            max_delay=float(data.get("max_delay", 30.0)),
            jitter=float(data.get("jitter", 0.25)),
        )
