"""Event-driven reliable-multicast protocol implementations.

* :mod:`repro.protocols.np_protocol` — protocol **NP**, the paper's hybrid
  ARQ with parity retransmission and per-TG NAKs (Section 5.1);
* :mod:`repro.protocols.n2` — the no-FEC baseline **N2**;
* :mod:`repro.protocols.layered` — FEC layer beneath a retransmitting RM
  layer (Section 3.1);
* :mod:`repro.protocols.fec1` — **Integrated FEC 1**, the feedback-free
  parity-tail scheme with receiver departure (Section 4.2);
* :mod:`repro.protocols.adaptive` — adaptive proactive redundancy on top
  of NP (the paper's Equation-6 ``a``, driven by observed feedback);
* :mod:`repro.protocols.harness` — end-to-end transfer runner + metrics.
"""

from repro.protocols.adaptive import AdaptiveNPSender, AdaptiveParityController
from repro.protocols.fec1 import Fec1Receiver, Fec1Sender, GroupMembership
from repro.protocols.feedback import NakSlotter, SlotterStats
from repro.protocols.harness import PROTOCOLS, TransferReport, run_transfer
from repro.protocols.layered import LayeredReceiver, LayeredSender
from repro.protocols.n2 import N2Receiver, N2Sender
from repro.protocols.np_protocol import (
    NPConfig,
    NPReceiver,
    NPSender,
    ParityExhaustedError,
    RoundLimitExceeded,
)
from repro.protocols.packets import (
    DataPacket,
    GroupAbort,
    Nak,
    ParityPacket,
    Poll,
    Retransmission,
    SelectiveNak,
    checksum_of,
    payload_intact,
)

__all__ = [
    "NPConfig",
    "NPSender",
    "NPReceiver",
    "ParityExhaustedError",
    "RoundLimitExceeded",
    "N2Sender",
    "N2Receiver",
    "LayeredSender",
    "LayeredReceiver",
    "Fec1Sender",
    "Fec1Receiver",
    "GroupMembership",
    "AdaptiveNPSender",
    "AdaptiveParityController",
    "NakSlotter",
    "SlotterStats",
    "run_transfer",
    "TransferReport",
    "PROTOCOLS",
    "DataPacket",
    "ParityPacket",
    "Poll",
    "Nak",
    "SelectiveNak",
    "Retransmission",
    "GroupAbort",
    "checksum_of",
    "payload_intact",
]
