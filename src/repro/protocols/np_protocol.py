"""Protocol NP — reliable multicast with parity retransmission (Section 5.1).

The paper's hybrid-ARQ protocol, implemented as event-driven sender and
receiver state machines on :class:`repro.sim.MulticastNetwork`:

* The sender streams the ``k`` data packets of each transmission group at
  ``Delta`` spacing, follows each group with ``POLL(i, k)`` and moves on to
  the next group.
* A receiver answering ``POLL(i, s)`` while still ``l`` packets short
  schedules ``NAK(i, l)`` in slot ``s - l`` (needier receivers answer
  first) and suppresses it if it overhears a NAK asking for at least as
  much — :class:`repro.protocols.feedback.NakSlotter`.
* On ``NAK(i, l)`` the sender *interrupts* the group it is currently
  sending, multicasts ``l`` fresh parities for group ``i`` followed by
  ``POLL(i, l)``, then resumes — parity repair packets benefit every
  receiver missing *any* packet of the group, which is the paper's central
  efficiency argument.
* A receiver reconstructs a group as soon as it holds any ``k`` of its
  packets (systematic RSE decode, cost proportional to losses).

Deviations from the paper, all documented in DESIGN.md: when the ``h``
available parities are exhausted the sender falls back to cycling the
original data packets (the paper assumes ``h`` large enough or ejects
receivers; both behaviours are configurable), and an optional watchdog
timer re-sends NAKs to survive feedback loss (the paper assumes lossless
feedback).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.fec.block import BlockDecoder, BlockEncoder
from repro.fec.rse import RSECodec
from repro.protocols.feedback import NakSlotter
from repro.protocols.packets import DataPacket, Nak, ParityPacket, Poll
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import MulticastNetwork

__all__ = ["NPConfig", "NPSender", "NPReceiver", "ParityExhaustedError"]


class ParityExhaustedError(RuntimeError):
    """Raised when parities run out under the ``error`` exhaustion policy."""


@dataclass(frozen=True)
class NPConfig:
    """Protocol parameters.

    ``k``/``h`` are the TG size and per-group parity budget; the paper's
    appendix assumes ``h`` large enough that the sender never runs out.
    ``exhaustion_policy`` picks the fallback otherwise: ``"arq"`` cycles
    original data packets (a new "generation" of the group), ``"error"``
    raises.  ``packet_interval`` is the paper's ``Delta``, ``slot_time`` the
    NAK slot ``Ts``.  ``nak_watchdog`` (seconds, 0 disables) re-sends an
    unanswered NAK — only needed when the feedback channel is lossy.
    """

    k: int = 7
    h: int = 32
    packet_size: int = 1024
    packet_interval: float = 0.040
    slot_time: float = 0.050
    nak_watchdog: float = 0.0
    exhaustion_policy: str = "arq"
    pre_encode: bool = False
    interleave_depth: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.h < 0:
            raise ValueError(f"h must be >= 0, got {self.h}")
        if self.packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if self.exhaustion_policy not in ("arq", "error"):
            raise ValueError(
                f"unknown exhaustion policy {self.exhaustion_policy!r}; "
                f"expected 'arq' or 'error'"
            )
        if self.interleave_depth < 1:
            raise ValueError("interleave_depth must be >= 1")


@dataclass
class SenderStats:
    """Sender-side accounting used for E[M] and throughput metrics."""

    data_sent: int = 0
    parity_sent: int = 0
    retransmissions_sent: int = 0
    polls_sent: int = 0
    naks_received: int = 0
    naks_stale: int = 0
    rounds_served: int = 0
    parities_encoded: int = 0

    @property
    def total_payload_sent(self) -> int:
        return self.data_sent + self.parity_sent + self.retransmissions_sent


class NPSender:
    """Sender state machine for protocol NP."""

    def __init__(
        self,
        sim: Simulator,
        network: MulticastNetwork,
        data: bytes,
        config: NPConfig = NPConfig(),
        codec: RSECodec | None = None,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.codec = codec if codec is not None else RSECodec(config.k, config.h)
        self.encoder = BlockEncoder(
            data,
            config.k,
            config.h,
            config.packet_size,
            codec=self.codec,
            pre_encode=config.pre_encode,
        )
        self.stats = SenderStats()
        network.attach_sender(self.on_feedback)

        self._repair_queue: deque = deque()  # NAK-triggered, high priority
        self._data_queue: deque = deque()  # initial group transmissions
        self._next_parity: dict[int, int] = {}
        self._fallback_cursor: dict[int, int] = {}
        self._current_round: dict[int, int] = {}
        self._pump_handle: EventHandle | None = None
        self._next_tx_time = 0.0

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.encoder)

    @property
    def total_data_packets(self) -> int:
        return self.n_groups * self.config.k

    def start(self) -> None:
        """Enqueue every transmission group and begin pumping packets."""
        for tg in range(self.n_groups):
            for index in range(self.config.k):
                self._data_queue.append(("data", tg, index, 0))
            self._current_round[tg] = 1
            self._data_queue.append(("poll", tg, self.config.k, 1))
            self._next_parity.setdefault(tg, 0)
            self._fallback_cursor.setdefault(tg, 0)
        self._arm_pump()

    @property
    def idle(self) -> bool:
        return not self._repair_queue and not self._data_queue

    # ------------------------------------------------------------------
    # transmit pipeline
    # ------------------------------------------------------------------
    def _arm_pump(self) -> None:
        if self._pump_handle is not None or self.idle:
            return
        delay = max(0.0, self._next_tx_time - self.sim.now)
        self._pump_handle = self.sim.schedule(delay, self._pump)

    def _pump(self) -> None:
        self._pump_handle = None
        sent_payload = False
        while not sent_payload:
            item = self._pop_item()
            if item is None:
                return
            kind = item[0]
            if kind == "poll":
                _, tg, sent, round_index = item
                self.network.multicast_control(Poll(tg, sent, round_index), kind="poll")
                self.stats.polls_sent += 1
                self._on_poll_sent(tg, sent, round_index)
                continue  # polls don't occupy a transmission slot
            sent_payload = True
            if kind == "data":
                _, tg, index, generation = item
                payload = self.encoder.data_packet(tg, index)
                wire_kind = "data" if generation == 0 else "retransmission"
                self.network.multicast(
                    DataPacket(tg, index, payload, generation), kind=wire_kind
                )
                if generation == 0:
                    self.stats.data_sent += 1
                else:
                    self.stats.retransmissions_sent += 1
            elif kind == "parity":
                _, tg, index = item
                payload = self.encoder.parity_packet(tg, index - self.config.k)
                self.network.multicast(ParityPacket(tg, index, payload), kind="parity")
                self.stats.parity_sent += 1
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown queue item {item!r}")
        self._next_tx_time = self.sim.now + self.config.packet_interval
        self._arm_pump()

    def _pop_item(self):
        if self._repair_queue:
            return self._repair_queue.popleft()
        if self._data_queue:
            return self._data_queue.popleft()
        return None

    def _on_poll_sent(self, tg: int, sent: int, round_index: int) -> None:
        """Hook: a POLL just went out (subclasses observe feedback timing)."""

    # ------------------------------------------------------------------
    # feedback handling
    # ------------------------------------------------------------------
    def on_feedback(self, packet) -> None:
        if not isinstance(packet, Nak):
            return
        self.stats.naks_received += 1
        tg, needed, round_index = packet.tg, packet.needed, packet.round
        if tg < 0 or tg >= self.n_groups or needed < 1:
            return
        current = self._current_round.get(tg, 1)
        if round_index != current:
            # Stale feedback (a suppression miss served moments ago, or a
            # watchdog retry after a lost poll).  Re-polling is cheap and
            # lets the receiver restate its need under the current round.
            self.stats.naks_stale += 1
            if not self._group_in_flight(tg):
                self._repair_queue.append(("poll", tg, 0, current))
                self._arm_pump()
            return
        self._serve(tg, needed)

    def _group_in_flight(self, tg: int) -> bool:
        return any(item[1] == tg for item in self._repair_queue)

    def _serve(self, tg: int, needed: int) -> None:
        """Queue ``needed`` repair packets for ``tg`` plus the next poll."""
        config = self.config
        items: list[tuple] = []
        cursor = self._next_parity[tg]
        take = min(needed, config.h - cursor)
        for offset in range(take):
            items.append(("parity", tg, config.k + cursor + offset))
        self._next_parity[tg] = cursor + take
        self.stats.parities_encoded += take if not config.pre_encode else 0

        shortfall = needed - take
        if shortfall > 0:
            if config.exhaustion_policy == "error":
                raise ParityExhaustedError(
                    f"group {tg} exhausted its {config.h} parities"
                )
            # ARQ fallback: cycle original packets as a new generation.
            generation = 1 + self._fallback_cursor[tg] // config.k
            for _ in range(shortfall):
                index = self._fallback_cursor[tg] % config.k
                items.append(("data", tg, index, generation))
                self._fallback_cursor[tg] += 1

        self._current_round[tg] = self._current_round[tg] + 1
        items.append(("poll", tg, needed, self._current_round[tg]))
        # Repairs interrupt the ongoing group: they jump the data queue.
        self._repair_queue.extend(items)
        self.stats.rounds_served += 1
        self._arm_pump()


@dataclass
class ReceiverStats:
    """Receiver-side accounting.

    ``peak_buffered_groups`` / ``peak_buffered_packets`` quantify the
    appendix's "the buffer at the receivers is sufficient" assumption: the
    most simultaneously-undecoded groups a receiver held, and the most
    packets buffered for them at that moment.
    """

    packets_received: int = 0
    duplicates: int = 0
    groups_decoded: int = 0
    packets_reconstructed: int = 0
    polls_received: int = 0
    completion_time: float | None = None
    peak_buffered_groups: int = 0
    peak_buffered_packets: int = 0


class NPReceiver:
    """Receiver state machine for protocol NP."""

    def __init__(
        self,
        sim: Simulator,
        network: MulticastNetwork,
        n_groups: int,
        config: NPConfig = NPConfig(),
        codec: RSECodec | None = None,
        rng: np.random.Generator | None = None,
        on_complete=None,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.n_groups = n_groups
        self.codec = codec if codec is not None else RSECodec(config.k, config.h)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.on_complete = on_complete
        self.stats = ReceiverStats()
        self.slotter = NakSlotter(sim, self.rng, config.slot_time)
        self.receiver_id = network.attach_receiver(self.on_packet)

        self._decoders: dict[int, BlockDecoder] = {}
        self._delivered: dict[int, list[bytes]] = {}
        self._watchdogs: dict[int, EventHandle] = {}
        self._last_round: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return len(self._delivered) == self.n_groups

    def delivered_data(self, total_length: int | None = None) -> bytes:
        """Reassembled byte stream (requires :attr:`complete`)."""
        if not self.complete:
            missing = sorted(set(range(self.n_groups)) - set(self._delivered))
            raise RuntimeError(f"transfer incomplete; missing groups {missing}")
        blob = b"".join(
            packet
            for tg in range(self.n_groups)
            for packet in self._delivered[tg]
        )
        return blob if total_length is None else blob[:total_length]

    def _decoder_for(self, tg: int) -> BlockDecoder:
        decoder = self._decoders.get(tg)
        if decoder is None:
            decoder = BlockDecoder(self.config.k, self.codec)
            self._decoders[tg] = decoder
        return decoder

    # ------------------------------------------------------------------
    # packet handling
    # ------------------------------------------------------------------
    def on_packet(self, packet) -> None:
        if isinstance(packet, (DataPacket, ParityPacket)):
            self._on_payload(packet)
        elif isinstance(packet, Poll):
            self._on_poll(packet)
        elif isinstance(packet, Nak):
            self.slotter.overheard(packet.tg, packet.round, packet.needed)

    def _on_payload(self, packet) -> None:
        self.stats.packets_received += 1
        tg = packet.tg
        self._feed_watchdog(tg)
        if tg in self._delivered:
            self.stats.duplicates += 1
            return
        decoder = self._decoder_for(tg)
        before = len(decoder.received)
        decoder.add(packet.index, packet.payload)
        if len(decoder.received) == before:
            self.stats.duplicates += 1
        if not decoder.decodable:
            # the group is known-incomplete: if the coming poll gets lost
            # (lossy control plane) this timer keeps us live by NAKing
            # spontaneously; any later packet or poll re-feeds it
            self._arm_watchdog(tg, decoder.missing, self._last_round.get(tg, 1))
            self.stats.peak_buffered_groups = max(
                self.stats.peak_buffered_groups, len(self._decoders)
            )
            self.stats.peak_buffered_packets = max(
                self.stats.peak_buffered_packets,
                sum(len(d.received) for d in self._decoders.values()),
            )
        if decoder.decodable:
            self.stats.packets_reconstructed += decoder.decoding_work()
            self._delivered[tg] = decoder.reconstruct()
            self.stats.groups_decoded += 1
            self.slotter.cancel_group(tg)
            self._cancel_watchdog(tg)
            del self._decoders[tg]
            if self.complete:
                self.stats.completion_time = self.sim.now
                if self.on_complete is not None:
                    self.on_complete(self.receiver_id)

    def _on_poll(self, poll: Poll) -> None:
        self.stats.polls_received += 1
        tg = poll.tg
        self._last_round[tg] = max(self._last_round.get(tg, 1), poll.round)
        self._feed_watchdog(tg)
        if tg in self._delivered:
            return
        needed = self._decoder_for(tg).missing
        if needed <= 0:
            return

        def fire(tg=tg, round_index=poll.round) -> None:
            # Recompute at slot time: repairs may have arrived meanwhile.
            if tg in self._delivered:
                return
            current = self._decoder_for(tg).missing
            if current > 0:
                self._send_nak(tg, current, round_index)

        self.slotter.schedule(tg, poll.round, poll.sent, needed, fire)

    def _send_nak(self, tg: int, needed: int, round_index: int) -> None:
        self.network.multicast_feedback(
            Nak(tg, needed, round_index), origin=self.receiver_id
        )
        self._arm_watchdog(tg, needed, round_index)

    # ------------------------------------------------------------------
    # watchdog (feedback-loss robustness; disabled by default)
    # ------------------------------------------------------------------
    def _arm_watchdog(self, tg: int, needed: int, round_index: int) -> None:
        if self.config.nak_watchdog <= 0:
            return
        self._cancel_watchdog(tg)
        self._watchdogs[tg] = self.sim.schedule(
            self.config.nak_watchdog,
            lambda: self._watchdog_fired(tg, round_index),
        )

    def _watchdog_fired(self, tg: int, round_index: int) -> None:
        self._watchdogs.pop(tg, None)
        if tg in self._delivered:
            return
        needed = self._decoder_for(tg).missing
        if needed > 0:
            self._send_nak(tg, needed, round_index)

    def _feed_watchdog(self, tg: int) -> None:
        # any sign of life for the group means the sender heard us
        self._cancel_watchdog(tg)

    def _cancel_watchdog(self, tg: int) -> None:
        handle = self._watchdogs.pop(tg, None)
        if handle is not None:
            handle.cancel()
