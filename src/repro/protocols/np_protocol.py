"""Protocol NP — reliable multicast with parity retransmission (Section 5.1).

The paper's hybrid-ARQ protocol, implemented as event-driven sender and
receiver state machines on :class:`repro.sim.MulticastNetwork`:

* The sender streams the ``k`` data packets of each transmission group at
  ``Delta`` spacing, follows each group with ``POLL(i, k)`` and moves on to
  the next group.
* A receiver answering ``POLL(i, s)`` while still ``l`` packets short
  schedules ``NAK(i, l)`` in slot ``s - l`` (needier receivers answer
  first) and suppresses it if it overhears a NAK asking for at least as
  much — :class:`repro.protocols.feedback.NakSlotter`.
* On ``NAK(i, l)`` the sender *interrupts* the group it is currently
  sending, multicasts ``l`` fresh parities for group ``i`` followed by
  ``POLL(i, l)``, then resumes — parity repair packets benefit every
  receiver missing *any* packet of the group, which is the paper's central
  efficiency argument.
* A receiver reconstructs a group as soon as it holds any ``k`` of its
  packets (systematic RSE decode, cost proportional to losses).

Deviations from the paper, all documented in DESIGN.md: when the ``h``
available parities are exhausted the sender falls back to cycling the
original data packets (the paper assumes ``h`` large enough or ejects
receivers; both behaviours are configurable), and an optional watchdog
timer re-sends NAKs to survive feedback loss (the paper assumes lossless
feedback).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.fec.block import BlockDecoder, BlockEncoder
from repro.fec.code import ErasureCode
from repro.fec.rse import RSECodec
from repro.protocols.feedback import NakSlotter
from repro.protocols.packets import (
    DataPacket,
    GroupAbort,
    Nak,
    ParityPacket,
    Poll,
    checksum_of,
    control_intact,
    payload_intact,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import MulticastNetwork

__all__ = [
    "NPConfig",
    "NPSender",
    "NPReceiver",
    "ParityExhaustedError",
    "RoundLimitExceeded",
]


class ParityExhaustedError(RuntimeError):
    """Raised when parities run out under the ``error`` exhaustion policy."""


class RoundLimitExceeded(RuntimeError):
    """A group hit ``max_rounds`` under the ``error`` degradation policy."""


@dataclass(frozen=True)
class NPConfig:
    """Protocol parameters.

    ``k``/``h`` are the TG size and per-group parity budget; the paper's
    appendix assumes ``h`` large enough that the sender never runs out.
    ``exhaustion_policy`` picks the fallback otherwise: ``"arq"`` cycles
    original data packets (a new "generation" of the group), ``"error"``
    raises.  ``packet_interval`` is the paper's ``Delta``, ``slot_time`` the
    NAK slot ``Ts``.

    Robustness knobs (the paper assumes lossless feedback and unlimited
    patience; these bound what happens without either):

    ``nak_watchdog`` (seconds, 0 disables) re-sends an unanswered NAK.
    Each consecutive retry for a group backs off exponentially by
    ``watchdog_backoff`` with ``watchdog_jitter`` randomisation (a fraction
    of the interval, desynchronising receivers), capped at
    ``watchdog_max_interval`` (0 means ``16 * nak_watchdog``); any sign of
    life for the group resets the schedule.  After
    ``watchdog_retry_limit`` consecutive unanswered retries (0 = unlimited)
    the receiver goes quiet and the stall is diagnosed by the harness.

    ``max_rounds`` (0 = unlimited) caps the repair rounds the sender grants
    any one group.  On exceedance, ``degradation_policy`` decides:
    ``"eject"`` abandons the group — the sender multicasts
    :class:`~repro.protocols.packets.GroupAbort` and the harness ejects the
    receivers that still needed it (the paper's own fallback), reporting
    partial delivery — while ``"error"`` raises :class:`RoundLimitExceeded`.
    """

    k: int = 7
    h: int = 32
    packet_size: int = 1024
    packet_interval: float = 0.040
    slot_time: float = 0.050
    nak_watchdog: float = 0.0
    exhaustion_policy: str = "arq"
    pre_encode: bool = False
    interleave_depth: int = 1
    watchdog_backoff: float = 2.0
    watchdog_jitter: float = 0.1
    watchdog_max_interval: float = 0.0
    watchdog_retry_limit: int = 30
    max_rounds: int = 0
    degradation_policy: str = "eject"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.h < 0:
            raise ValueError(f"h must be >= 0, got {self.h}")
        if self.packet_interval <= 0:
            raise ValueError("packet_interval must be positive")
        if self.exhaustion_policy not in ("arq", "error"):
            raise ValueError(
                f"unknown exhaustion policy {self.exhaustion_policy!r}; "
                f"expected 'arq' or 'error'"
            )
        if self.interleave_depth < 1:
            raise ValueError("interleave_depth must be >= 1")
        if self.watchdog_backoff < 1.0:
            raise ValueError(
                f"watchdog_backoff must be >= 1, got {self.watchdog_backoff}"
            )
        if self.watchdog_jitter < 0:
            raise ValueError(
                f"watchdog_jitter must be >= 0, got {self.watchdog_jitter}"
            )
        if self.watchdog_max_interval < 0:
            raise ValueError("watchdog_max_interval must be >= 0")
        if self.watchdog_retry_limit < 0:
            raise ValueError("watchdog_retry_limit must be >= 0")
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")
        if self.degradation_policy not in ("eject", "error"):
            raise ValueError(
                f"unknown degradation policy {self.degradation_policy!r}; "
                f"expected 'eject' or 'error'"
            )


@dataclass
class SenderStats:
    """Sender-side accounting used for E[M] and throughput metrics."""

    data_sent: int = 0
    parity_sent: int = 0
    retransmissions_sent: int = 0
    polls_sent: int = 0
    naks_received: int = 0
    naks_stale: int = 0
    rounds_served: int = 0
    parities_encoded: int = 0
    groups_abandoned: int = 0
    #: control packets (NAKs) dropped for a failed control checksum
    control_corrupt_discarded: int = 0

    @property
    def total_payload_sent(self) -> int:
        return self.data_sent + self.parity_sent + self.retransmissions_sent


class NPSender:
    """Sender state machine for protocol NP."""

    def __init__(
        self,
        sim: Simulator,
        network: MulticastNetwork,
        data: bytes,
        config: NPConfig = NPConfig(),
        codec: ErasureCode | None = None,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.codec = codec if codec is not None else RSECodec(config.k, config.h)
        self.encoder = BlockEncoder(
            data,
            config.k,
            config.h,
            config.packet_size,
            codec=self.codec,
            pre_encode=config.pre_encode,
        )
        self.stats = SenderStats()
        network.attach_sender(self.on_feedback)

        self._repair_queue: deque = deque()  # NAK-triggered, high priority
        self._data_queue: deque = deque()  # initial group transmissions
        self._next_parity: dict[int, int] = {}
        self._fallback_cursor: dict[int, int] = {}
        self._current_round: dict[int, int] = {}
        self._pump_handle: EventHandle | None = None
        self._next_tx_time = 0.0
        #: groups given up under the ``max_rounds`` cap ("eject" policy)
        self.abandoned_groups: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.encoder)

    @property
    def total_data_packets(self) -> int:
        return self.n_groups * self.config.k

    def start(self) -> None:
        """Enqueue every transmission group and begin pumping packets."""
        for tg in range(self.n_groups):
            for index in range(self.config.k):
                self._data_queue.append(("data", tg, index, 0))
            self._current_round[tg] = 1
            self._data_queue.append(("poll", tg, self.config.k, 1))
            self._next_parity.setdefault(tg, 0)
            self._fallback_cursor.setdefault(tg, 0)
        self._arm_pump()

    @property
    def idle(self) -> bool:
        return not self._repair_queue and not self._data_queue

    # ------------------------------------------------------------------
    # transmit pipeline
    # ------------------------------------------------------------------
    def _arm_pump(self) -> None:
        if self._pump_handle is not None or self.idle:
            return
        delay = max(0.0, self._next_tx_time - self.sim.now)
        self._pump_handle = self.sim.schedule(delay, self._pump)

    def _pump(self) -> None:
        self._pump_handle = None
        sent_payload = False
        while not sent_payload:
            item = self._pop_item()
            if item is None:
                return
            kind = item[0]
            if kind == "poll":
                _, tg, sent, round_index = item
                self.network.multicast_control(Poll(tg, sent, round_index), kind="poll")
                self.stats.polls_sent += 1
                self._on_poll_sent(tg, sent, round_index)
                continue  # polls don't occupy a transmission slot
            sent_payload = True
            if kind == "data":
                _, tg, index, generation = item
                payload = self.encoder.data_packet(tg, index)
                wire_kind = "data" if generation == 0 else "retransmission"
                self.network.multicast(
                    DataPacket(tg, index, payload, generation, checksum_of(payload)),
                    kind=wire_kind,
                )
                if generation == 0:
                    self.stats.data_sent += 1
                else:
                    self.stats.retransmissions_sent += 1
            elif kind == "parity":
                _, tg, index = item
                payload = self.encoder.parity_packet(tg, index - self.config.k)
                self.network.multicast(
                    ParityPacket(tg, index, payload, checksum_of(payload)),
                    kind="parity",
                )
                self.stats.parity_sent += 1
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown queue item {item!r}")
        self._next_tx_time = self.sim.now + self.config.packet_interval
        self._arm_pump()

    def _pop_item(self):
        if self._repair_queue:
            return self._repair_queue.popleft()
        if self._data_queue:
            return self._data_queue.popleft()
        return None

    def _on_poll_sent(self, tg: int, sent: int, round_index: int) -> None:
        """Hook: a POLL just went out (subclasses observe feedback timing)."""

    # ------------------------------------------------------------------
    # feedback handling
    # ------------------------------------------------------------------
    def on_feedback(self, packet) -> None:
        if not isinstance(packet, Nak):
            return
        if not control_intact(packet):
            # a corrupted NAK must be dropped, not acted on: its tg/needed
            # fields are untrustworthy (the watchdog keeps the real
            # solicitation alive)
            self.stats.control_corrupt_discarded += 1
            return
        self.stats.naks_received += 1
        tg, needed, round_index = packet.tg, packet.needed, packet.round
        if tg < 0 or tg >= self.n_groups or needed < 1:
            return
        if tg in self.abandoned_groups:
            return  # the group was ejected; its stragglers are on their own
        current = self._current_round.get(tg, 1)
        if round_index != current:
            # Stale feedback (a suppression miss served moments ago, or a
            # watchdog retry after a lost poll).  Re-polling is cheap and
            # lets the receiver restate its need under the current round.
            self.stats.naks_stale += 1
            if not self._group_in_flight(tg):
                self._repair_queue.append(("poll", tg, 0, current))
                self._arm_pump()
            return
        self._serve(tg, needed)

    def _group_in_flight(self, tg: int) -> bool:
        return any(item[1] == tg for item in self._repair_queue)

    def _serve(self, tg: int, needed: int) -> None:
        """Queue ``needed`` repair packets for ``tg`` plus the next poll."""
        config = self.config
        if config.max_rounds and self._current_round.get(tg, 1) >= config.max_rounds:
            self._abandon(tg)
            return
        items: list[tuple] = []
        cursor = self._next_parity[tg]
        take = min(needed, config.h - cursor)
        for offset in range(take):
            items.append(("parity", tg, config.k + cursor + offset))
        self._next_parity[tg] = cursor + take
        self.stats.parities_encoded += take if not config.pre_encode else 0

        shortfall = needed - take
        if shortfall > 0:
            if config.exhaustion_policy == "error":
                raise ParityExhaustedError(
                    f"group {tg} exhausted its {config.h} parities"
                )
            # ARQ fallback: cycle original packets as a new generation.
            generation = 1 + self._fallback_cursor[tg] // config.k
            for _ in range(shortfall):
                index = self._fallback_cursor[tg] % config.k
                items.append(("data", tg, index, generation))
                self._fallback_cursor[tg] += 1

        self._current_round[tg] = self._current_round[tg] + 1
        items.append(("poll", tg, needed, self._current_round[tg]))
        # Repairs interrupt the ongoing group: they jump the data queue.
        self._repair_queue.extend(items)
        self.stats.rounds_served += 1
        self._arm_pump()

    def _abandon(self, tg: int) -> None:
        """Give up on ``tg`` after ``max_rounds`` repair rounds.

        Under the ``"error"`` policy this is a hard failure; under
        ``"eject"`` the sender declares the group dead on the wire so
        receivers stop soliciting it and the harness can eject whoever is
        still short (reported as partial delivery).
        """
        if tg in self.abandoned_groups:
            return
        if self.config.degradation_policy == "error":
            raise RoundLimitExceeded(
                f"group {tg} exceeded the {self.config.max_rounds}-round cap"
            )
        self.abandoned_groups.add(tg)
        self.stats.groups_abandoned += 1
        self.network.multicast_control(
            GroupAbort(tg, self._current_round.get(tg, 1)), kind="abort"
        )


@dataclass
class ReceiverStats:
    """Receiver-side accounting.

    ``peak_buffered_groups`` / ``peak_buffered_packets`` quantify the
    appendix's "the buffer at the receivers is sufficient" assumption: the
    most simultaneously-undecoded groups a receiver held, and the most
    packets buffered for them at that moment.
    """

    packets_received: int = 0
    duplicates: int = 0
    groups_decoded: int = 0
    packets_reconstructed: int = 0
    polls_received: int = 0
    completion_time: float | None = None
    peak_buffered_groups: int = 0
    peak_buffered_packets: int = 0
    #: corrupted packets detected by checksum and demoted to erasures
    corrupt_discarded: int = 0
    #: NAK-watchdog retries fired (all groups; the backoff schedule is
    #: observable via ``watchdog_backoff_peak``)
    watchdog_retries: int = 0
    #: groups whose watchdog retry budget ran dry (receiver went quiet)
    watchdog_exhaustions: int = 0
    #: largest backoff interval any watchdog reached (seconds)
    watchdog_backoff_peak: float = 0.0
    #: crash/restart cycles this receiver went through
    crashes: int = 0
    #: groups the sender abandoned under its round cap
    groups_failed: int = 0
    #: control packets (polls, overheard NAKs, aborts) dropped for a
    #: failed control checksum
    control_corrupt_discarded: int = 0
    #: simulated time of the last accepted (new, intact) payload packet
    last_progress_time: float = 0.0


class NPReceiver:
    """Receiver state machine for protocol NP."""

    def __init__(
        self,
        sim: Simulator,
        network: MulticastNetwork,
        n_groups: int,
        config: NPConfig = NPConfig(),
        codec: ErasureCode | None = None,
        rng: np.random.Generator | None = None,
        on_complete=None,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.n_groups = n_groups
        self.codec = codec if codec is not None else RSECodec(config.k, config.h)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.on_complete = on_complete
        self.stats = ReceiverStats()
        self.slotter = NakSlotter(sim, self.rng, config.slot_time)
        self.receiver_id = network.attach_receiver(self.on_packet)

        self._decoders: dict[int, BlockDecoder] = {}
        self._delivered: dict[int, list[bytes]] = {}
        self._watchdogs: dict[int, EventHandle] = {}
        self._watchdog_retries: dict[int, int] = {}
        self._last_round: dict[int, int] = {}
        #: groups the sender declared dead (GroupAbort); never delivered
        self._failed: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return len(self._delivered) == self.n_groups

    @property
    def finished(self) -> bool:
        """Every group is either delivered or sender-abandoned."""
        return len(self._delivered) + len(self._failed) >= self.n_groups

    def missing_groups(self) -> tuple[int, ...]:
        """Groups not delivered (including sender-abandoned ones)."""
        return tuple(sorted(set(range(self.n_groups)) - set(self._delivered)))

    def failed_groups(self) -> tuple[int, ...]:
        """Groups the sender abandoned under its round cap."""
        return tuple(sorted(self._failed))

    def delivered_data(self, total_length: int | None = None) -> bytes:
        """Reassembled byte stream (requires :attr:`complete`)."""
        if not self.complete:
            missing = sorted(set(range(self.n_groups)) - set(self._delivered))
            raise RuntimeError(f"transfer incomplete; missing groups {missing}")
        blob = b"".join(
            packet
            for tg in range(self.n_groups)
            for packet in self._delivered[tg]
        )
        return blob if total_length is None else blob[:total_length]

    def _decoder_for(self, tg: int) -> BlockDecoder:
        decoder = self._decoders.get(tg)
        if decoder is None:
            decoder = BlockDecoder(self.config.k, self.codec)
            self._decoders[tg] = decoder
        return decoder

    # ------------------------------------------------------------------
    # packet handling
    # ------------------------------------------------------------------
    def on_packet(self, packet) -> None:
        if isinstance(packet, (DataPacket, ParityPacket)):
            self._on_payload(packet)
        elif isinstance(packet, (Poll, Nak, GroupAbort)):
            # control packets carry no payload to demote to an erasure: a
            # failed control checksum means the fields cannot be trusted
            # (acting on a corrupt GroupAbort would kill a healthy group),
            # so the packet is dropped outright
            if not control_intact(packet):
                self.stats.control_corrupt_discarded += 1
                return
            if isinstance(packet, Poll):
                self._on_poll(packet)
            elif isinstance(packet, Nak):
                self.slotter.overheard(packet.tg, packet.round, packet.needed)
            else:
                self._on_abort(packet)

    def _on_payload(self, packet) -> None:
        self.stats.packets_received += 1
        tg = packet.tg
        if not payload_intact(packet):
            # detected corruption is demoted to an erasure: drop the packet
            # but keep the group's solicitation alive (the sender clearly
            # is; the missing count is unchanged)
            self.stats.corrupt_discarded += 1
            if tg not in self._delivered and tg not in self._failed:
                self._arm_watchdog(
                    tg,
                    self._decoder_for(tg).missing,
                    self._last_round.get(tg, 1),
                )
            return
        self._feed_watchdog(tg)
        if tg in self._failed:
            return  # group was ejected; late repairs are void
        if tg in self._delivered:
            self.stats.duplicates += 1
            return
        decoder = self._decoder_for(tg)
        before = len(decoder.received)
        decoder.add(packet.index, packet.payload)
        if len(decoder.received) == before:
            self.stats.duplicates += 1
        else:
            self.stats.last_progress_time = self.sim.now
        if not decoder.decodable:
            # the group is known-incomplete: if the coming poll gets lost
            # (lossy control plane) this timer keeps us live by NAKing
            # spontaneously; any later packet or poll re-feeds it
            self._arm_watchdog(tg, decoder.missing, self._last_round.get(tg, 1))
            self.stats.peak_buffered_groups = max(
                self.stats.peak_buffered_groups, len(self._decoders)
            )
            self.stats.peak_buffered_packets = max(
                self.stats.peak_buffered_packets,
                sum(len(d.received) for d in self._decoders.values()),
            )
        if decoder.decodable:
            self.stats.packets_reconstructed += decoder.decoding_work()
            self._delivered[tg] = decoder.reconstruct()
            self.stats.groups_decoded += 1
            self.slotter.cancel_group(tg)
            self._cancel_watchdog(tg)
            del self._decoders[tg]
            if self.complete:
                self.stats.completion_time = self.sim.now
                if self.on_complete is not None:
                    self.on_complete(self.receiver_id)

    def _on_poll(self, poll: Poll) -> None:
        self.stats.polls_received += 1
        tg = poll.tg
        self._last_round[tg] = max(self._last_round.get(tg, 1), poll.round)
        self._feed_watchdog(tg)
        if tg in self._delivered or tg in self._failed:
            return
        needed = self._decoder_for(tg).missing
        if needed <= 0:
            return

        def fire(tg=tg, round_index=poll.round) -> None:
            # Recompute at slot time: repairs may have arrived meanwhile.
            if tg in self._delivered:
                return
            current = self._decoder_for(tg).missing
            if current > 0:
                self._send_nak(tg, current, round_index)

        self.slotter.schedule(tg, poll.round, poll.sent, needed, fire)

    def _send_nak(self, tg: int, needed: int, round_index: int) -> None:
        self.network.multicast_feedback(
            Nak(tg, needed, round_index), origin=self.receiver_id
        )
        self._arm_watchdog(tg, needed, round_index)

    def _on_abort(self, packet: GroupAbort) -> None:
        """Sender abandoned the group: stop soliciting, mark it failed."""
        tg = packet.tg
        if tg in self._delivered or tg in self._failed:
            return
        self._failed.add(tg)
        self.stats.groups_failed += 1
        self.slotter.cancel_group(tg)
        self._cancel_watchdog(tg)
        self._watchdog_retries.pop(tg, None)
        self._decoders.pop(tg, None)

    # ------------------------------------------------------------------
    # watchdog (feedback-loss robustness; disabled by default)
    # ------------------------------------------------------------------
    def _arm_watchdog(self, tg: int, needed: int, round_index: int) -> None:
        config = self.config
        if config.nak_watchdog <= 0 or tg in self._failed:
            return
        self._cancel_watchdog(tg)
        retries = self._watchdog_retries.get(tg, 0)
        if config.watchdog_retry_limit and retries >= config.watchdog_retry_limit:
            # retry budget dry: go quiet instead of spinning forever; the
            # harness diagnoses the stall (or the round cap ejects us)
            self.stats.watchdog_exhaustions += 1
            return
        interval = config.nak_watchdog * config.watchdog_backoff**retries
        cap = config.watchdog_max_interval or 16.0 * config.nak_watchdog
        interval = min(interval, cap)
        if config.watchdog_jitter > 0:
            interval *= 1.0 + config.watchdog_jitter * float(self.rng.random())
        self.stats.watchdog_backoff_peak = max(
            self.stats.watchdog_backoff_peak, interval
        )
        self._watchdogs[tg] = self.sim.schedule(
            interval,
            lambda: self._watchdog_fired(tg, round_index),
        )

    def _watchdog_fired(self, tg: int, round_index: int) -> None:
        self._watchdogs.pop(tg, None)
        if tg in self._delivered or tg in self._failed:
            return
        needed = self._decoder_for(tg).missing
        if needed > 0:
            self._watchdog_retries[tg] = self._watchdog_retries.get(tg, 0) + 1
            self.stats.watchdog_retries += 1
            self._send_nak(tg, needed, round_index)

    def _feed_watchdog(self, tg: int) -> None:
        # any sign of life for the group means the sender heard us: cancel
        # the timer and restart the backoff schedule from the base interval
        self._cancel_watchdog(tg)
        self._watchdog_retries.pop(tg, None)

    def _cancel_watchdog(self, tg: int) -> None:
        handle = self._watchdogs.pop(tg, None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # crash/restart (fault-injection hooks)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state: undecoded buffers, timers, round memory.

        Models a receiver process dying mid-transfer.  Delivered groups
        survive (they were handed to the application / stable storage);
        everything in flight is gone.
        """
        self.stats.crashes += 1
        self._decoders.clear()
        self._last_round.clear()
        self._watchdog_retries.clear()
        for handle in self._watchdogs.values():
            handle.cancel()
        self._watchdogs.clear()
        self.slotter.cancel_all()

    def rejoin(self) -> None:
        """Come back after a crash: re-solicit every unfinished group.

        Requires ``nak_watchdog > 0`` — a rejoining receiver has no pending
        polls, so only a spontaneous NAK can restart its repair stream.
        Without a watchdog it waits for whatever polls are still coming
        (and may stall, which the harness will diagnose).
        """
        if self.config.nak_watchdog <= 0:
            return
        for tg in range(self.n_groups):
            if tg in self._delivered or tg in self._failed:
                continue
            self._arm_watchdog(tg, self.config.k, self._last_round.get(tg, 1))
